// Corpus replay driver: the portable half of each fuzz harness.
//
// libFuzzer supplies its own main(); this one exists so the same
// LLVMFuzzerTestOneInput entry point runs as a plain ctest on every build
// flavor (gcc included, where -fsanitize=fuzzer does not exist). Each
// argument is a corpus file or a directory of corpus files; every input is
// fed to the harness once. Any decoder bug a past fuzz run found stays
// fixed: its crasher lives in the checked-in regression corpus and replays
// here under ASan/UBSan in the analysis matrix.
//
// Exit codes: 0 all inputs replayed, 1 usage/empty corpus (a miswired path
// must fail the test, not silently replay nothing). A recurrence of a
// crash aborts the process, which ctest reports as a failure.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open corpus input: %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 1;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> inputs;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
      // Deterministic order keeps crash reports reproducible run to run.
      std::sort(inputs.begin(), inputs.end());
      for (const auto& input : inputs) {
        if (!ReplayFile(input)) return 1;
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      if (!ReplayFile(arg)) return 1;
      ++replayed;
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", argv[i]);
      return 1;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "corpus is empty; refusing to pass vacuously\n");
    return 1;
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", replayed);
  return 0;
}
