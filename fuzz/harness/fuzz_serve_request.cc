// Fuzz target (e): the serve request parser, socket-free.
//
// Drives the same RequestFramer + QueryEngine pair the TCP server runs,
// via the HandleRequestBytes() seam — so the fuzzer explores line
// reassembly across chunk boundaries, the oversized-line bound, and every
// request verb, without a socket in the loop. The engine is configured
// with allow_reload=false: `reload` accepts file paths over the wire, and
// a fuzzer must never be in a position to touch the filesystem.

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/graph_builder.h"
#include "rank/ranker.h"
#include "util/logging.h"
#include "serve/query_engine.h"
#include "serve/request_framer.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"

namespace {

scholar::serve::SnapshotManager* Manager() {
  static scholar::serve::SnapshotManager* manager = [] {
    scholar::GraphBuilder builder;
    for (int i = 0; i < 5; ++i) {
      builder.AddNode(static_cast<scholar::Year>(2000 + i));
    }
    SCHOLAR_CHECK_OK(builder.AddEdge(1, 0));
    SCHOLAR_CHECK_OK(builder.AddEdge(2, 0));
    SCHOLAR_CHECK_OK(builder.AddEdge(3, 2));
    SCHOLAR_CHECK_OK(builder.AddEdge(4, 2));
    scholar::CitationGraph graph = std::move(builder).Build().value();

    scholar::RankingOutput ranking;
    ranking.scores = {0.30, 0.10, 0.25, 0.20, 0.15};
    ranking.ranks = scholar::ScoresToRanks(ranking.scores);
    ranking.percentiles = scholar::RankPercentiles(ranking.scores);

    scholar::serve::SnapshotMeta meta;
    meta.snapshot_id = 1;
    meta.ranker_name = "fuzz";
    meta.corpus_name = "fuzz";

    auto* m = new scholar::serve::SnapshotManager();
    m->Install(scholar::serve::ScoreSnapshot::Build(graph, ranking,
                                                    std::move(meta))
                   .value());
    return m;
  }();
  return manager;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInputBytes = size_t{1} << 18;
  if (size > kMaxInputBytes) return 0;

  scholar::serve::QueryEngineOptions options;
  options.allow_reload = false;  // no file paths accepted over the wire
  options.cache_entries = 8;
  scholar::serve::QueryEngine engine(Manager(), options);

  // A small line bound makes the protocol-abuse path reachable, and the
  // input's first byte picks the chunk split so mutation explores
  // carry-over across "reads" as well as whole-buffer delivery.
  scholar::serve::RequestFramer framer(&engine, /*max_line_bytes=*/512);
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const size_t split = size == 0 ? 0 : data[0] % size;
  std::string responses;
  if (framer.HandleRequestBytes(bytes.substr(0, split), &responses)) {
    framer.HandleRequestBytes(bytes.substr(split), &responses);
  }
  return 0;
}
