// Fuzz target (f): the EdgeBatch streaming-ingest parser.
//
// Streamed batches are the one input surface that arrives continuously in
// production, so the decoder must hold the same line as the other
// parsers: truncations, bit flips, absurd declared counts, implausible
// years, and unsorted edge lists all land in a typed Corruption — never
// UB or an unbounded allocation. Batches that *do* parse are then driven
// through StreamingGraph::Ingest against a tiny base graph, fuzzing the
// graph-relative validation (suffix-only sources, endpoint ranges,
// year-monotone arrival, sequence staging) behind the parse.

#include <cstdint>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"
#include "stream/edge_batch.h"
#include "stream/streaming_graph.h"

namespace {

scholar::CitationGraph TinyBase() {
  scholar::GraphBuilder builder;
  for (int i = 0; i < 3; ++i) {
    builder.AddNode(static_cast<scholar::Year>(2000 + i));
  }
  (void)builder.AddEdge(1, 0);
  (void)builder.AddEdge(2, 0);
  return std::move(builder).Build().value();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size > kMaxInputBytes) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes, std::ios::binary);
  scholar::stream::StreamingGraph graph(TinyBase());
  // Feed every decodable batch in the input to the ingest path; statuses
  // are the expected outcome for malformed data and are ignored.
  while (in.peek() != std::istringstream::traits_type::eof()) {
    scholar::Result<scholar::stream::EdgeBatch> batch =
        scholar::stream::ReadEdgeBatch(&in);
    if (!batch.ok()) break;
    (void)graph.Ingest(std::move(batch).value());
  }
  return 0;
}
