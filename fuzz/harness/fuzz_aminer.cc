// Fuzz target (c): the AMiner corpus reader.
//
// The richest untrusted decoder in the tree: a tagged record format with
// titles, author lists, venues, external ids, and cross-record reference
// resolution. Both the record scanner and the dense-id remapping must hold
// up under arbitrary bytes.

#include <cstdint>
#include <sstream>
#include <string>

#include "data/dataset.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size > kMaxInputBytes) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  auto corpus = scholar::ReadAMinerCorpus(&in, "fuzz");
  if (corpus.ok()) {
    // A corpus the reader accepts must satisfy its own invariants; a parse
    // that "succeeds" into an inconsistent corpus is as bad as a crash.
    scholar::Status check = corpus.value().ConsistencyCheck();
    if (!check.ok()) __builtin_trap();
  }
  return 0;
}
