// Fuzz target (d): the ScoreSnapshot deserializer.
//
// The serving path trusts a deserialized snapshot completely — scores,
// adjacency offsets, the top-k permutation — so the reader must establish
// every invariant itself: checksums per section, a declared-size-vs-file
// bound, permutation and CSR validation. Truncations, bit flips, and
// version skew all have to land in a typed Corruption.

#include <cstdint>
#include <sstream>
#include <string>

#include "serve/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size > kMaxInputBytes) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes, std::ios::binary);
  scholar::serve::ScoreSnapshot::Read(&in).status();
  return 0;
}
