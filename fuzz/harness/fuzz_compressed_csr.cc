// Fuzz target (g): the checked varint decoder of the compressed in-CSR.
//
// The iteration engine's hot path decodes rows it encoded itself, but the
// checked decoder (DecodeVarintRowChecked) is the boundary for bytes of
// unknown provenance — snapshot tooling, future wire formats — and the
// oracle the kernel tests pit against the trusted decoder. It must turn
// truncated streams, varints longer than 10 bytes, 64-bit overflow, and
// delta sums that escape [0, max_id) into typed Corruption statuses, never
// UB, and never read past data+size.
//
// Input framing: [count:2][max_id:4] little-endian, then row bytes.
// Whatever decodes cleanly is re-encoded with EncodeVarintRow and decoded
// again — the round trip must reproduce the ids exactly (the property the
// engine's bit-identity contract rests on).

#include <cstdint>
#include <cstring>
#include <vector>

#include "rank/kernel/compressed_csr.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kHeaderBytes = 6;
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size < kHeaderBytes || size > kMaxInputBytes) return 0;
  const size_t count = static_cast<size_t>(data[0]) |
                       (static_cast<size_t>(data[1]) << 8);
  uint32_t max_id = 0;
  std::memcpy(&max_id, data + 2, sizeof(max_id));
  // Cap the id space so the scratch vector stays small; the decoder's
  // range check is what is under test, not the allocator.
  max_id = 1u + (max_id & 0xFFFFFu);
  const uint8_t* row = data + kHeaderBytes;
  const size_t row_size = size - kHeaderBytes;
  if (count > row_size + 1) return 0;  // each varint costs >= 1 byte

  std::vector<scholar::NodeId> ids(count);
  size_t consumed = 0;
  // Validate-only pass (null out) must agree with the storing pass.
  const scholar::Status probe = scholar::kernel::DecodeVarintRowChecked(
      row, row_size, count, max_id, nullptr, &consumed);
  const scholar::Status stored = scholar::kernel::DecodeVarintRowChecked(
      row, row_size, count, max_id, ids.data(), &consumed);
  SCHOLAR_CHECK(probe.ok() == stored.ok());
  if (!stored.ok()) return 0;
  SCHOLAR_CHECK(consumed <= row_size);

  // Round trip: re-encode the decoded ids and decode again; ids must
  // survive exactly.
  std::vector<uint8_t> reencoded;
  scholar::kernel::EncodeVarintRow(ids.data(), count, &reencoded);
  std::vector<scholar::NodeId> again(count);
  size_t consumed2 = 0;
  SCHOLAR_CHECK_OK(scholar::kernel::DecodeVarintRowChecked(
      reencoded.data(), reencoded.size(), count, max_id, again.data(),
      &consumed2));
  SCHOLAR_CHECK(consumed2 == reencoded.size());
  SCHOLAR_CHECK(ids == again);
  return 0;
}
