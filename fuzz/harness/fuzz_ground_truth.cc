// Fuzz target (b): the ground-truth label parser.
//
// Labels arrive from outside the system (award lists, expert judgments),
// making this the least-trusted text input the eval layer consumes. Any
// byte sequence must come back as a label vector or a ParseError.

#include <cstdint>
#include <sstream>
#include <string>

#include "data/ground_truth.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size > kMaxInputBytes) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  scholar::ReadGroundTruthLabels(&in).status();
  return 0;
}
