// Fuzz target (a): the graph edge/metadata loaders.
//
// The same bytes are offered to both on-disk formats — the
// '#scholarrank-graph-v1' text format and the 'SRG1' binary CSR format —
// because an attacker controls the whole file, magic included. The
// contract under test: any input yields either a CitationGraph that passed
// every structural check or a Status; never UB, a crash, or an unbounded
// allocation.

#include <cstdint>
#include <sstream>
#include <string>

#include "graph/graph_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Bound per-input work so replay stays fast; libFuzzer mutation below
  // this cap still reaches every parser state.
  constexpr size_t kMaxInputBytes = size_t{1} << 20;
  if (size > kMaxInputBytes) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(bytes);
    scholar::ReadGraphText(&in).status();
  }
  {
    std::istringstream in(bytes, std::ios::binary);
    scholar::ReadGraphBinary(&in).status();
  }
  return 0;
}
