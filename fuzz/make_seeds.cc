// Regenerates the checked-in fuzz corpora under fuzz/corpus/.
//
//   build/fuzz/scholar_make_seeds fuzz/corpus
//
// Seeds are valid files produced by the real writers, so every corpus
// tracks the current format automatically; regression inputs are the
// malformed shapes the parsers must keep rejecting (truncations, bit
// flips, wraparound ids, inflated counts). Run after changing a format
// and commit the result — the replay tests and the fuzzers both start
// from these directories.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "rank/kernel/compressed_csr.h"
#include "rank/ranker.h"
#include "serve/snapshot.h"
#include "stream/edge_batch.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace {

using scholar::CitationGraph;
using scholar::GraphBuilder;
using scholar::RankingOutput;

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SCHOLAR_CHECK(static_cast<bool>(out));
}

CitationGraph TinyGraph() {
  GraphBuilder builder;
  for (int i = 0; i < 5; ++i) {
    builder.AddNode(static_cast<scholar::Year>(2000 + i));
  }
  SCHOLAR_CHECK_OK(builder.AddEdge(1, 0));
  SCHOLAR_CHECK_OK(builder.AddEdge(2, 0));
  SCHOLAR_CHECK_OK(builder.AddEdge(2, 1));
  SCHOLAR_CHECK_OK(builder.AddEdge(3, 2));
  SCHOLAR_CHECK_OK(builder.AddEdge(4, 2));
  SCHOLAR_CHECK_OK(builder.AddEdge(4, 3));
  return std::move(builder).Build().value();
}

void MakeGraphIoCorpus(const std::filesystem::path& root) {
  const CitationGraph graph = TinyGraph();
  std::stringstream text;
  SCHOLAR_CHECK_OK(scholar::WriteGraphText(graph, &text));
  WriteFile(root / "seed" / "tiny_text", text.str());

  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  SCHOLAR_CHECK_OK(scholar::WriteGraphBinary(graph, &binary));
  const std::string binary_bytes = binary.str();
  WriteFile(root / "seed" / "tiny_binary", binary_bytes);

  // Shapes the text parser must keep rejecting.
  WriteFile(root / "regression" / "wraparound_id",
            "#scholarrank-graph-v1\n2 1\n2000\n2001\n4294967297 0\n");
  WriteFile(root / "regression" / "self_loop",
            "#scholarrank-graph-v1\n2 1\n2000\n2001\n1 1\n");
  WriteFile(root / "regression" / "duplicate_edge",
            "#scholarrank-graph-v1\n2 2\n2000\n2001\n1 0\n1 0\n");
  WriteFile(root / "regression" / "implausible_year",
            "#scholarrank-graph-v1\n1 0\n99999999999\n");
  WriteFile(root / "regression" / "absurd_edge_count",
            "#scholarrank-graph-v1\n2 4611686018427387904\n2000\n2001\n");

  // And the binary shapes: truncation and a corrupt year payload.
  WriteFile(root / "regression" / "truncated_binary",
            binary_bytes.substr(0, binary_bytes.size() / 2));
  std::string bad_year = binary_bytes;
  const int32_t bogus = -123456;
  bad_year.replace(4 + 16, sizeof(bogus),
                   reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  WriteFile(root / "regression" / "bad_year_binary", bad_year);
}

void MakeGroundTruthCorpus(const std::filesystem::path& root) {
  std::stringstream labels;
  SCHOLAR_CHECK_OK(
      scholar::WriteGroundTruthLabels({0.5, 0.0, 3.25, 1.0}, &labels));
  WriteFile(root / "seed" / "tiny_labels", labels.str());
  WriteFile(root / "seed" / "sparse_labels",
            "#scholarrank-labels-v1\n# expert file\n4 2\n2 1.5\n0 0.5\n");

  WriteFile(root / "regression" / "duplicate_label",
            "#scholarrank-labels-v1\n3 2\n1 1.0\n1 2.0\n");
  WriteFile(root / "regression" / "out_of_range_id",
            "#scholarrank-labels-v1\n2 1\n4294967297 1.0\n");
  WriteFile(root / "regression" / "nan_impact",
            "#scholarrank-labels-v1\n3 1\n1 nan\n");
  WriteFile(root / "regression" / "absurd_article_count",
            "#scholarrank-labels-v1\n99999999999 0\n");
}

void MakeAMinerCorpus(const std::filesystem::path& root) {
  WriteFile(root / "seed" / "two_records",
            "#* Paper A\n#@ alice;bob\n#t 2000\n#c VLDB\n#index 10\n"
            "\n"
            "#* Paper B\n#@ carol\n#t 2001\n#c SIGMOD\n#index 11\n#% 10\n");
  WriteFile(root / "regression" / "dangling_reference",
            "#* Lonely\n#t 2003\n#index 5\n#% 99\n");
  WriteFile(root / "regression" / "duplicate_index",
            "#* A\n#t 2000\n#index 3\n\n#* B\n#t 2001\n#index 3\n");
  WriteFile(root / "regression" / "tags_without_record",
            "#% 1\n#t 2000\n#@ nobody\n");
}

void MakeSnapshotCorpus(const std::filesystem::path& root) {
  const CitationGraph graph = TinyGraph();
  RankingOutput ranking;
  ranking.scores = {0.30, 0.10, 0.25, 0.20, 0.15};
  ranking.ranks = scholar::ScoresToRanks(ranking.scores);
  ranking.percentiles = scholar::RankPercentiles(ranking.scores);
  scholar::serve::SnapshotMeta meta;
  meta.snapshot_id = 1;
  meta.created_unix = 1700000000;
  meta.ranker_name = "twpr";
  meta.corpus_name = "tiny";
  const scholar::serve::ScoreSnapshot snap =
      scholar::serve::ScoreSnapshot::Build(graph, ranking, std::move(meta))
          .value();
  std::ostringstream out(std::ios::binary);
  SCHOLAR_CHECK_OK(snap.WriteTo(&out));
  const std::string bytes = out.str();
  WriteFile(root / "seed" / "tiny_snapshot", bytes);

  WriteFile(root / "regression" / "truncated_header", bytes.substr(0, 10));
  WriteFile(root / "regression" / "truncated_payload",
            bytes.substr(0, bytes.size() - 7));
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteFile(root / "regression" / "bad_magic", bad_magic);
  std::string wrong_version = bytes;
  wrong_version[4] = 99;
  WriteFile(root / "regression" / "version_skew", wrong_version);
  std::string bit_flip = bytes;
  bit_flip[bit_flip.size() - 3] ^= 0x40;
  WriteFile(root / "regression" / "payload_bit_flip", bit_flip);
  // Inflate the first section header's payload_bytes: declared sections
  // must not be allowed to overflow the file size.
  std::string inflated = bytes;
  const uint64_t absurd = uint64_t{1} << 40;
  const size_t first_payload_bytes_offset = 40 + (4 + 4) + (4 + 4) + 4 + 4;
  inflated.replace(first_payload_bytes_offset, sizeof(absurd),
                   reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  WriteFile(root / "regression" / "inflated_section", inflated);
}

std::string EdgeBatchBytes(const scholar::stream::EdgeBatch& batch) {
  std::ostringstream out(std::ios::binary);
  SCHOLAR_CHECK_OK(scholar::stream::WriteEdgeBatch(batch, &out));
  return out.str();
}

/// Byte offsets inside one encoded batch: 28-byte header (magic, version,
/// sequence, counts), then years, then {src, dst} pairs, then the CRC.
constexpr size_t kBatchHeaderBytes = 28;

/// Re-stamps the trailing CRC after a payload byte patch, so regression
/// inputs exercise the *semantic* check they target instead of tripping
/// the checksum first.
void RestampCrc(std::string* bytes) {
  const size_t payload = bytes->size() - kBatchHeaderBytes - 4;
  const uint32_t crc =
      scholar::Crc32(bytes->data() + kBatchHeaderBytes, payload);
  bytes->replace(bytes->size() - 4, 4,
                 reinterpret_cast<const char*>(&crc), 4);
}

void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
  bytes->replace(offset, sizeof(value),
                 reinterpret_cast<const char*>(&value), sizeof(value));
}

void MakeEdgeBatchCorpus(const std::filesystem::path& root) {
  // Valid against the harness's 3-node base: batch 1 adds nodes 3..4,
  // batch 2 adds node 5. Concatenated, they seed the multi-batch path.
  scholar::stream::EdgeBatch b1;
  b1.sequence = 1;
  b1.node_years = {2005, 2005};
  b1.edges = {{3, 0}, {3, 2}, {4, 3}};
  scholar::stream::EdgeBatch b2;
  b2.sequence = 2;
  b2.node_years = {2006};
  b2.edges = {{5, 0}, {5, 4}};
  const std::string bytes1 = EdgeBatchBytes(b1);
  WriteFile(root / "seed" / "two_batches", bytes1 + EdgeBatchBytes(b2));
  scholar::stream::EdgeBatch heartbeat;
  heartbeat.sequence = 3;
  WriteFile(root / "seed" / "empty_batch", EdgeBatchBytes(heartbeat));
  // Out of order on purpose: the staging path is part of the surface.
  WriteFile(root / "seed" / "staged_batch", EdgeBatchBytes(b2));

  // Shapes the parser must keep rejecting. Offsets: years start at 28
  // (4 bytes each), edges follow (8 bytes each), CRC is the last 4.
  WriteFile(root / "regression" / "truncated_payload",
            bytes1.substr(0, bytes1.size() - 9));
  std::string bad_magic = bytes1;
  bad_magic[0] = 'X';
  WriteFile(root / "regression" / "bad_magic", bad_magic);
  std::string wrong_version = bytes1;
  PatchU32(&wrong_version, 4, 99);
  WriteFile(root / "regression" / "wrong_version", wrong_version);
  std::string crc_flip = bytes1;
  crc_flip[crc_flip.size() - 2] ^= 0x10;
  WriteFile(root / "regression" / "crc_flip", crc_flip);
  std::string absurd_edges = bytes1;
  PatchU32(&absurd_edges, 20, 0xFFFFFFFFu);  // low half of num_edges
  WriteFile(root / "regression" / "absurd_edge_count", absurd_edges);
  std::string bad_year = bytes1;
  PatchU32(&bad_year, kBatchHeaderBytes, 99999999u);
  RestampCrc(&bad_year);
  WriteFile(root / "regression" / "implausible_year", bad_year);
  std::string year_order = bytes1;
  PatchU32(&year_order, kBatchHeaderBytes + 4, 1999u);  // second year < first
  RestampCrc(&year_order);
  WriteFile(root / "regression" / "year_not_monotone", year_order);
  std::string self_loop = bytes1;
  PatchU32(&self_loop, kBatchHeaderBytes + 8 + 16, 3u);  // (4,3) -> (3,3)
  RestampCrc(&self_loop);
  WriteFile(root / "regression" / "self_loop", self_loop);
  std::string unsorted = bytes1;
  PatchU32(&unsorted, kBatchHeaderBytes + 8 + 8 + 4, 0u);  // (3,2) -> (3,0) dup
  RestampCrc(&unsorted);
  WriteFile(root / "regression" / "unsorted_edges", unsorted);
  std::string src_window = bytes1;
  PatchU32(&src_window, kBatchHeaderBytes + 8 + 16, 4000u);  // src far outside
  RestampCrc(&src_window);
  WriteFile(root / "regression" / "source_outside_window", src_window);
}

void MakeServeRequestCorpus(const std::filesystem::path& root) {
  WriteFile(root / "seed" / "command_mix",
            "ping\ninfo\ntop_k 3\ntop_k 2 1\nscore 0\nrank 4\n"
            "percentile 2\nneighbors 2 citers\nneighbors 2 refs 1\n");
  WriteFile(root / "seed" / "error_paths",
            "score banana\nrank 99\ntop_k 0\ntop_k -3\nneighbors 1 up\n"
            "reload /etc/passwd\nunknown_verb\n");
  // Pipelined batches: what the event loop actually receives from a deep
  // client pipeline — many requests in one recv, answered as one batch.
  WriteFile(root / "seed" / "pipelined_batch",
            "score 0\nscore 1\nscore 2\ntop_k 2\nrank 0\nping\n"
            "percentile 1\nneighbors 0 citers\nscore 3\ninfo\n");
  // Oversized pipeline of one-byte-ish requests: drives the per-drain
  // batch budget (max_batch_requests) and the BUSY shed path.
  std::string flood;
  for (int i = 0; i < 200; ++i) flood += "ping\n";
  WriteFile(root / "seed" / "pipelined_flood", flood);
  WriteFile(root / "regression" / "empty_lines", "\n\r\n\n");
  WriteFile(root / "regression" / "oversized_line",
            std::string(1000, 'a'));
  WriteFile(root / "regression" / "split_crlf", "ping\rping\r\nping\n\r");
  // Partial frames: a recv boundary can land anywhere, including between
  // the CR and LF of one terminator and mid-token. The framer must carry
  // the remainder, not answer or reject it early.
  WriteFile(root / "regression" / "partial_mid_token", "top_k 3\nsco");
  WriteFile(root / "regression" / "partial_mid_crlf", "score 1\r");
  WriteFile(root / "regression" / "pipelined_then_partial",
            "ping\r\nscore 0\nrank 2\ntop_k 5 1");
}

void MakeCompressedCsrCorpus(const std::filesystem::path& root) {
  // Framing understood by fuzz_compressed_csr: [count:2][max_id:4] little
  // endian, then the row's varint bytes (the harness clamps max_id to
  // 1 + (field & 0xFFFFF)).
  auto frame = [](size_t count, uint32_t max_id_field,
                  const std::string& row) {
    std::string bytes;
    bytes.push_back(static_cast<char>(count & 0xff));
    bytes.push_back(static_cast<char>((count >> 8) & 0xff));
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>((max_id_field >> (8 * i)) & 0xff));
    }
    return bytes + row;
  };
  auto encode = [](const std::vector<scholar::NodeId>& ids) {
    std::vector<uint8_t> enc;
    scholar::kernel::EncodeVarintRow(ids.data(), ids.size(), &enc);
    return std::string(enc.begin(), enc.end());
  };

  // Valid shapes: an ascending in-CSR row (small positive deltas) and a
  // hub-relabeled row (negative deltas exercise the zigzag path).
  const std::vector<scholar::NodeId> ascending = {0, 1, 5, 6, 100, 4000};
  WriteFile(root / "seed" / "ascending_row",
            frame(ascending.size(), 0xFFFFFu, encode(ascending)));
  const std::vector<scholar::NodeId> relabeled = {4000, 5, 900, 2, 2};
  WriteFile(root / "seed" / "hub_relabeled_row",
            frame(relabeled.size(), 0xFFFFFu, encode(relabeled)));
  WriteFile(root / "seed" / "empty_row", frame(0, 0xFFFFFu, ""));

  // Shapes the checked decoder must keep rejecting.
  const std::string row = encode(ascending);
  WriteFile(root / "regression" / "truncated_varint",
            frame(ascending.size(), 0xFFFFFu,
                  row.substr(0, row.size() - 1)));
  // Eleven continuation bytes: longer than any 64-bit varint can be.
  WriteFile(root / "regression" / "varint_too_long",
            frame(1, 0xFFFFFu, std::string(11, '\x80') + '\x01'));
  // A maximal 10-byte varint whose decoded delta lands the id far outside
  // [0, max_id) — the overflow guard on the running delta sum.
  WriteFile(
      root / "regression" / "overflowing_delta",
      frame(1, 0xFFFFFu,
            std::string("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01", 10)));
  // zigzag(-1) as the first delta: id -1, below the range floor.
  WriteFile(root / "regression" / "negative_first_id",
            frame(1, 0xFFFFFu, "\x01"));
  // Valid varints whose ids exceed a tiny max_id (field 0 -> max_id 1).
  WriteFile(root / "regression" / "id_out_of_range",
            frame(ascending.size(), 0, row));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root(argv[1]);
  MakeGraphIoCorpus(root / "graph_io");
  MakeGroundTruthCorpus(root / "ground_truth");
  MakeAMinerCorpus(root / "aminer");
  MakeSnapshotCorpus(root / "snapshot");
  MakeServeRequestCorpus(root / "serve_request");
  MakeEdgeBatchCorpus(root / "edge_batch");
  MakeCompressedCsrCorpus(root / "compressed_csr");
  std::fprintf(stderr, "corpora written under %s\n", root.c_str());
  return 0;
}
