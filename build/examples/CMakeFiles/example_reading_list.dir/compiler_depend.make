# Empty compiler generated dependencies file for example_reading_list.
# This may be replaced when dependencies are built.
