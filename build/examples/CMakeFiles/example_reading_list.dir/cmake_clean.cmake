file(REMOVE_RECURSE
  "CMakeFiles/example_reading_list.dir/reading_list.cpp.o"
  "CMakeFiles/example_reading_list.dir/reading_list.cpp.o.d"
  "example_reading_list"
  "example_reading_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reading_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
