# Empty dependencies file for example_format_tour.
# This may be replaced when dependencies are built.
