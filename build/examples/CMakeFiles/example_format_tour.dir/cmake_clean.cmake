file(REMOVE_RECURSE
  "CMakeFiles/example_format_tour.dir/format_tour.cpp.o"
  "CMakeFiles/example_format_tour.dir/format_tour.cpp.o.d"
  "example_format_tour"
  "example_format_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_format_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
