file(REMOVE_RECURSE
  "CMakeFiles/example_scholar_profiles.dir/scholar_profiles.cpp.o"
  "CMakeFiles/example_scholar_profiles.dir/scholar_profiles.cpp.o.d"
  "example_scholar_profiles"
  "example_scholar_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scholar_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
