# Empty dependencies file for example_scholar_profiles.
# This may be replaced when dependencies are built.
