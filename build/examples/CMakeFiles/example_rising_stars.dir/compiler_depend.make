# Empty compiler generated dependencies file for example_rising_stars.
# This may be replaced when dependencies are built.
