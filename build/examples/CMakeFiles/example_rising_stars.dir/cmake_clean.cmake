file(REMOVE_RECURSE
  "CMakeFiles/example_rising_stars.dir/rising_stars.cpp.o"
  "CMakeFiles/example_rising_stars.dir/rising_stars.cpp.o.d"
  "example_rising_stars"
  "example_rising_stars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rising_stars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
