file(REMOVE_RECURSE
  "../bench/fig1_decay_sweep"
  "../bench/fig1_decay_sweep.pdb"
  "CMakeFiles/fig1_decay_sweep.dir/fig1_decay_sweep.cc.o"
  "CMakeFiles/fig1_decay_sweep.dir/fig1_decay_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_decay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
