# Empty dependencies file for fig1_decay_sweep.
# This may be replaced when dependencies are built.
