file(REMOVE_RECURSE
  "../bench/fig4_scalability"
  "../bench/fig4_scalability.pdb"
  "CMakeFiles/fig4_scalability.dir/fig4_scalability.cc.o"
  "CMakeFiles/fig4_scalability.dir/fig4_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
