# Empty dependencies file for fig2_slices_sweep.
# This may be replaced when dependencies are built.
