file(REMOVE_RECURSE
  "../bench/fig2_slices_sweep"
  "../bench/fig2_slices_sweep.pdb"
  "CMakeFiles/fig2_slices_sweep.dir/fig2_slices_sweep.cc.o"
  "CMakeFiles/fig2_slices_sweep.dir/fig2_slices_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_slices_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
