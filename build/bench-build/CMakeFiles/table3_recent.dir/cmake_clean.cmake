file(REMOVE_RECURSE
  "../bench/table3_recent"
  "../bench/table3_recent.pdb"
  "CMakeFiles/table3_recent.dir/table3_recent.cc.o"
  "CMakeFiles/table3_recent.dir/table3_recent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_recent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
