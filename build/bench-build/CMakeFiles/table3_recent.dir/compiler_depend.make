# Empty compiler generated dependencies file for table3_recent.
# This may be replaced when dependencies are built.
