file(REMOVE_RECURSE
  "../bench/table4_ablation"
  "../bench/table4_ablation.pdb"
  "CMakeFiles/table4_ablation.dir/table4_ablation.cc.o"
  "CMakeFiles/table4_ablation.dir/table4_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
