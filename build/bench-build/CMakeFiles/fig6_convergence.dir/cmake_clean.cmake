file(REMOVE_RECURSE
  "../bench/fig6_convergence"
  "../bench/fig6_convergence.pdb"
  "CMakeFiles/fig6_convergence.dir/fig6_convergence.cc.o"
  "CMakeFiles/fig6_convergence.dir/fig6_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
