file(REMOVE_RECURSE
  "../bench/fig3_age_bias"
  "../bench/fig3_age_bias.pdb"
  "CMakeFiles/fig3_age_bias.dir/fig3_age_bias.cc.o"
  "CMakeFiles/fig3_age_bias.dir/fig3_age_bias.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_age_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
