# Empty compiler generated dependencies file for fig3_age_bias.
# This may be replaced when dependencies are built.
