# Empty compiler generated dependencies file for futurerank_test.
# This may be replaced when dependencies are built.
