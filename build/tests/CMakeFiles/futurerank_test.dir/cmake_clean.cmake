file(REMOVE_RECURSE
  "CMakeFiles/futurerank_test.dir/futurerank_test.cc.o"
  "CMakeFiles/futurerank_test.dir/futurerank_test.cc.o.d"
  "futurerank_test"
  "futurerank_test.pdb"
  "futurerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
