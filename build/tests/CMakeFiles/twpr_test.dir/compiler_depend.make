# Empty compiler generated dependencies file for twpr_test.
# This may be replaced when dependencies are built.
