file(REMOVE_RECURSE
  "CMakeFiles/twpr_test.dir/twpr_test.cc.o"
  "CMakeFiles/twpr_test.dir/twpr_test.cc.o.d"
  "twpr_test"
  "twpr_test.pdb"
  "twpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
