# Empty compiler generated dependencies file for citerank_test.
# This may be replaced when dependencies are built.
