file(REMOVE_RECURSE
  "CMakeFiles/citerank_test.dir/citerank_test.cc.o"
  "CMakeFiles/citerank_test.dir/citerank_test.cc.o.d"
  "citerank_test"
  "citerank_test.pdb"
  "citerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
