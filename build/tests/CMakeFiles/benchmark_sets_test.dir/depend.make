# Empty dependencies file for benchmark_sets_test.
# This may be replaced when dependencies are built.
