file(REMOVE_RECURSE
  "CMakeFiles/benchmark_sets_test.dir/benchmark_sets_test.cc.o"
  "CMakeFiles/benchmark_sets_test.dir/benchmark_sets_test.cc.o.d"
  "benchmark_sets_test"
  "benchmark_sets_test.pdb"
  "benchmark_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
