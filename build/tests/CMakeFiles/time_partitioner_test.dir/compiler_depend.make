# Empty compiler generated dependencies file for time_partitioner_test.
# This may be replaced when dependencies are built.
