file(REMOVE_RECURSE
  "CMakeFiles/time_partitioner_test.dir/time_partitioner_test.cc.o"
  "CMakeFiles/time_partitioner_test.dir/time_partitioner_test.cc.o.d"
  "time_partitioner_test"
  "time_partitioner_test.pdb"
  "time_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
