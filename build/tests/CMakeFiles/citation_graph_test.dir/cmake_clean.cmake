file(REMOVE_RECURSE
  "CMakeFiles/citation_graph_test.dir/citation_graph_test.cc.o"
  "CMakeFiles/citation_graph_test.dir/citation_graph_test.cc.o.d"
  "citation_graph_test"
  "citation_graph_test.pdb"
  "citation_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
