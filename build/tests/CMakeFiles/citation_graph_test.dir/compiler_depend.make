# Empty compiler generated dependencies file for citation_graph_test.
# This may be replaced when dependencies are built.
