file(REMOVE_RECURSE
  "CMakeFiles/ranker_utils_test.dir/ranker_utils_test.cc.o"
  "CMakeFiles/ranker_utils_test.dir/ranker_utils_test.cc.o.d"
  "ranker_utils_test"
  "ranker_utils_test.pdb"
  "ranker_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranker_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
