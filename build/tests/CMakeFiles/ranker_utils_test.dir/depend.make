# Empty dependencies file for ranker_utils_test.
# This may be replaced when dependencies are built.
