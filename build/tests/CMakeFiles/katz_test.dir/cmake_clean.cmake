file(REMOVE_RECURSE
  "CMakeFiles/katz_test.dir/katz_test.cc.o"
  "CMakeFiles/katz_test.dir/katz_test.cc.o.d"
  "katz_test"
  "katz_test.pdb"
  "katz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/katz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
