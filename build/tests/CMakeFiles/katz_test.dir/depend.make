# Empty dependencies file for katz_test.
# This may be replaced when dependencies are built.
