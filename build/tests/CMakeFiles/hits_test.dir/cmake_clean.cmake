file(REMOVE_RECURSE
  "CMakeFiles/hits_test.dir/hits_test.cc.o"
  "CMakeFiles/hits_test.dir/hits_test.cc.o.d"
  "hits_test"
  "hits_test.pdb"
  "hits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
