# Empty compiler generated dependencies file for hits_test.
# This may be replaced when dependencies are built.
