file(REMOVE_RECURSE
  "CMakeFiles/venue_rank_test.dir/venue_rank_test.cc.o"
  "CMakeFiles/venue_rank_test.dir/venue_rank_test.cc.o.d"
  "venue_rank_test"
  "venue_rank_test.pdb"
  "venue_rank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/venue_rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
