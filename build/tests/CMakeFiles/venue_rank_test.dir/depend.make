# Empty dependencies file for venue_rank_test.
# This may be replaced when dependencies are built.
