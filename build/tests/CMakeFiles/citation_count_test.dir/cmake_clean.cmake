file(REMOVE_RECURSE
  "CMakeFiles/citation_count_test.dir/citation_count_test.cc.o"
  "CMakeFiles/citation_count_test.dir/citation_count_test.cc.o.d"
  "citation_count_test"
  "citation_count_test.pdb"
  "citation_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
