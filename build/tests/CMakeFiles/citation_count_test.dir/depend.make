# Empty dependencies file for citation_count_test.
# This may be replaced when dependencies are built.
