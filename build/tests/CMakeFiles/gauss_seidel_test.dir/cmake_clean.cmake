file(REMOVE_RECURSE
  "CMakeFiles/gauss_seidel_test.dir/gauss_seidel_test.cc.o"
  "CMakeFiles/gauss_seidel_test.dir/gauss_seidel_test.cc.o.d"
  "gauss_seidel_test"
  "gauss_seidel_test.pdb"
  "gauss_seidel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_seidel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
