# Empty dependencies file for gauss_seidel_test.
# This may be replaced when dependencies are built.
