# Empty compiler generated dependencies file for ensemble_ranker_test.
# This may be replaced when dependencies are built.
