file(REMOVE_RECURSE
  "CMakeFiles/ensemble_ranker_test.dir/ensemble_ranker_test.cc.o"
  "CMakeFiles/ensemble_ranker_test.dir/ensemble_ranker_test.cc.o.d"
  "ensemble_ranker_test"
  "ensemble_ranker_test.pdb"
  "ensemble_ranker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_ranker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
