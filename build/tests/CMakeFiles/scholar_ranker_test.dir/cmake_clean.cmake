file(REMOVE_RECURSE
  "CMakeFiles/scholar_ranker_test.dir/scholar_ranker_test.cc.o"
  "CMakeFiles/scholar_ranker_test.dir/scholar_ranker_test.cc.o.d"
  "scholar_ranker_test"
  "scholar_ranker_test.pdb"
  "scholar_ranker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scholar_ranker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
