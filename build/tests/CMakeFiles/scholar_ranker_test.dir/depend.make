# Empty dependencies file for scholar_ranker_test.
# This may be replaced when dependencies are built.
