# Empty dependencies file for sceas_test.
# This may be replaced when dependencies are built.
