file(REMOVE_RECURSE
  "CMakeFiles/sceas_test.dir/sceas_test.cc.o"
  "CMakeFiles/sceas_test.dir/sceas_test.cc.o.d"
  "sceas_test"
  "sceas_test.pdb"
  "sceas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sceas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
