# Empty dependencies file for author_rank_test.
# This may be replaced when dependencies are built.
