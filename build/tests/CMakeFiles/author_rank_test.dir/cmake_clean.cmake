file(REMOVE_RECURSE
  "CMakeFiles/author_rank_test.dir/author_rank_test.cc.o"
  "CMakeFiles/author_rank_test.dir/author_rank_test.cc.o.d"
  "author_rank_test"
  "author_rank_test.pdb"
  "author_rank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/author_rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
