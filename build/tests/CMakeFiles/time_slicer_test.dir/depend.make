# Empty dependencies file for time_slicer_test.
# This may be replaced when dependencies are built.
