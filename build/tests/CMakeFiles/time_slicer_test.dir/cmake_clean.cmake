file(REMOVE_RECURSE
  "CMakeFiles/time_slicer_test.dir/time_slicer_test.cc.o"
  "CMakeFiles/time_slicer_test.dir/time_slicer_test.cc.o.d"
  "time_slicer_test"
  "time_slicer_test.pdb"
  "time_slicer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_slicer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
