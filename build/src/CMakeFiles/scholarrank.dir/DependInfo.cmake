
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/commands.cc" "src/CMakeFiles/scholarrank.dir/cli/commands.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/cli/commands.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/scholarrank.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/core/registry.cc.o.d"
  "/root/repo/src/core/scholar_ranker.cc" "src/CMakeFiles/scholarrank.dir/core/scholar_ranker.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/core/scholar_ranker.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/scholarrank.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/ground_truth.cc" "src/CMakeFiles/scholarrank.dir/data/ground_truth.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/data/ground_truth.cc.o.d"
  "/root/repo/src/data/profiles.cc" "src/CMakeFiles/scholarrank.dir/data/profiles.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/data/profiles.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/scholarrank.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/data/synthetic.cc.o.d"
  "/root/repo/src/ensemble/ensemble_ranker.cc" "src/CMakeFiles/scholarrank.dir/ensemble/ensemble_ranker.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/ensemble/ensemble_ranker.cc.o.d"
  "/root/repo/src/ensemble/normalizer.cc" "src/CMakeFiles/scholarrank.dir/ensemble/normalizer.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/ensemble/normalizer.cc.o.d"
  "/root/repo/src/ensemble/time_partitioner.cc" "src/CMakeFiles/scholarrank.dir/ensemble/time_partitioner.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/ensemble/time_partitioner.cc.o.d"
  "/root/repo/src/eval/benchmark_sets.cc" "src/CMakeFiles/scholarrank.dir/eval/benchmark_sets.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/eval/benchmark_sets.cc.o.d"
  "/root/repo/src/eval/cohort.cc" "src/CMakeFiles/scholarrank.dir/eval/cohort.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/eval/cohort.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/scholarrank.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/CMakeFiles/scholarrank.dir/eval/significance.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/eval/significance.cc.o.d"
  "/root/repo/src/graph/citation_graph.cc" "src/CMakeFiles/scholarrank.dir/graph/citation_graph.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/citation_graph.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/scholarrank.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/scholarrank.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/scholarrank.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/scholarrank.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/time_slicer.cc" "src/CMakeFiles/scholarrank.dir/graph/time_slicer.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/graph/time_slicer.cc.o.d"
  "/root/repo/src/rank/author_rank.cc" "src/CMakeFiles/scholarrank.dir/rank/author_rank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/author_rank.cc.o.d"
  "/root/repo/src/rank/citation_count.cc" "src/CMakeFiles/scholarrank.dir/rank/citation_count.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/citation_count.cc.o.d"
  "/root/repo/src/rank/citerank.cc" "src/CMakeFiles/scholarrank.dir/rank/citerank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/citerank.cc.o.d"
  "/root/repo/src/rank/futurerank.cc" "src/CMakeFiles/scholarrank.dir/rank/futurerank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/futurerank.cc.o.d"
  "/root/repo/src/rank/gauss_seidel.cc" "src/CMakeFiles/scholarrank.dir/rank/gauss_seidel.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/gauss_seidel.cc.o.d"
  "/root/repo/src/rank/hits.cc" "src/CMakeFiles/scholarrank.dir/rank/hits.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/hits.cc.o.d"
  "/root/repo/src/rank/katz.cc" "src/CMakeFiles/scholarrank.dir/rank/katz.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/katz.cc.o.d"
  "/root/repo/src/rank/monte_carlo.cc" "src/CMakeFiles/scholarrank.dir/rank/monte_carlo.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/monte_carlo.cc.o.d"
  "/root/repo/src/rank/pagerank.cc" "src/CMakeFiles/scholarrank.dir/rank/pagerank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/pagerank.cc.o.d"
  "/root/repo/src/rank/ranker.cc" "src/CMakeFiles/scholarrank.dir/rank/ranker.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/ranker.cc.o.d"
  "/root/repo/src/rank/sceas.cc" "src/CMakeFiles/scholarrank.dir/rank/sceas.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/sceas.cc.o.d"
  "/root/repo/src/rank/time_weighted_pagerank.cc" "src/CMakeFiles/scholarrank.dir/rank/time_weighted_pagerank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/time_weighted_pagerank.cc.o.d"
  "/root/repo/src/rank/venue_rank.cc" "src/CMakeFiles/scholarrank.dir/rank/venue_rank.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/rank/venue_rank.cc.o.d"
  "/root/repo/src/util/config.cc" "src/CMakeFiles/scholarrank.dir/util/config.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/config.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/scholarrank.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/scholarrank.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/scholarrank.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/scholarrank.dir/util/status.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/scholarrank.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/scholarrank.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
