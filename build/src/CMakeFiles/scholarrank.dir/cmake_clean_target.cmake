file(REMOVE_RECURSE
  "libscholarrank.a"
)
