# Empty compiler generated dependencies file for scholarrank.
# This may be replaced when dependencies are built.
