file(REMOVE_RECURSE
  "CMakeFiles/scholar_cli.dir/scholar_cli.cc.o"
  "CMakeFiles/scholar_cli.dir/scholar_cli.cc.o.d"
  "scholar_cli"
  "scholar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scholar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
