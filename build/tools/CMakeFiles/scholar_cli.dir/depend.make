# Empty dependencies file for scholar_cli.
# This may be replaced when dependencies are built.
