/// Figure 2 — sensitivity of the ensemble to the number of time slices k.
/// k = 1 degenerates to the (normalized) base ranker on the full network.
#include "bench_common.h"

#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Figure 2", "ensemble slice-count (k) sensitivity, aminer profile");
  Corpus corpus = MakeBenchCorpus("aminer", kAMinerArticles);
  EvalSuite suite = MakeBenchSuite(corpus);

  std::printf("%-6s %14s %14s %12s\n", "k", "ens overall", "ens recent",
              "iterations");
  std::string csv = "k,ens_overall,ens_recent,iterations\n";
  for (int k : {1, 2, 4, 6, 8, 10, 12, 16}) {
    Config config;
    config.SetInt("num_slices", k);
    RankerEvaluation ens = EvaluateByName("ens_twpr", corpus, suite, config);
    std::printf("%-6d %14.4f %14.4f %12d\n", k, ens.overall_accuracy,
                ens.recent_accuracy, ens.iterations);
    csv += std::to_string(k) + "," + FormatDouble(ens.overall_accuracy, 4) +
           "," + FormatDouble(ens.recent_accuracy, 4) + "," +
           std::to_string(ens.iterations) + "\n";
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
