/// Figure 6 — solver convergence: L1 residual per iteration for PageRank
/// and TWPR (Jacobi-style power iteration) and for the Gauss-Seidel solver,
/// on both profiles. Power iteration decays geometrically at ~damping;
/// Gauss-Seidel reaches the same fixed point in roughly half the sweeps
/// thanks to the chronological node ordering of citation graphs.
#include "bench_common.h"

#include "rank/gauss_seidel.h"
#include "rank/pagerank.h"
#include "rank/time_weighted_pagerank.h"
#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

/// Residual after exactly `iters` iterations (tolerance disabled).
double ResidualAt(const CitationGraph& g, double sigma, int iters) {
  TwprOptions o;
  o.sigma = sigma;
  o.power.max_iterations = iters;
  o.power.tolerance = 0.0;  // never converges early
  auto result = TimeWeightedPageRank(o).Rank(g);
  SCHOLAR_CHECK_OK(result.status());
  return result->final_residual;
}

double GsResidualAt(const CitationGraph& g, int iters) {
  PowerIterationOptions o;
  o.max_iterations = iters;
  o.tolerance = 0.0;
  auto result = GaussSeidelPageRank(g, {}, {}, o);
  SCHOLAR_CHECK_OK(result.status());
  return result->final_residual;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Figure 6", "solver residual vs iteration");
  Corpus aminer = MakeBenchCorpus("aminer", kAMinerArticles / 2);
  Corpus mag = MakeBenchCorpus("mag", kMagArticles / 2);

  std::printf("%-6s %13s %13s %13s %13s %13s %13s\n", "iter", "aminer-pr",
              "aminer-twpr", "aminer-gs", "mag-pr", "mag-twpr", "mag-gs");
  std::string csv =
      "iteration,aminer_pr,aminer_twpr,aminer_gs,mag_pr,mag_twpr,mag_gs\n";
  for (int iters : {1, 2, 4, 8, 16, 32, 64, 96, 128}) {
    double a_pr = ResidualAt(aminer.graph, 0.0, iters);
    double a_tw = ResidualAt(aminer.graph, 0.4, iters);
    double a_gs = GsResidualAt(aminer.graph, iters);
    double m_pr = ResidualAt(mag.graph, 0.0, iters);
    double m_tw = ResidualAt(mag.graph, 0.4, iters);
    double m_gs = GsResidualAt(mag.graph, iters);
    std::printf("%-6d %13.3e %13.3e %13.3e %13.3e %13.3e %13.3e\n", iters,
                a_pr, a_tw, a_gs, m_pr, m_tw, m_gs);
    char buf[240];
    std::snprintf(buf, sizeof(buf), "%d,%.6e,%.6e,%.6e,%.6e,%.6e,%.6e\n",
                  iters, a_pr, a_tw, a_gs, m_pr, m_tw, m_gs);
    csv += buf;
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
