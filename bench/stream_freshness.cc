/// Streaming freshness — how long a newly arrived citation batch takes to
/// become servable (ingest + warm re-rank + snapshot publish), as a
/// function of batch size, for both warm modes. Written to
/// BENCH_stream_freshness.json so the freshness trajectory is tracked
/// in-repo.
///
/// The replay splits an AMiner-profile corpus into a 50% base graph plus
/// year-ordered suffix batches of a fixed node count, then runs the epoch
/// loop exactly as `scholar_cli stream` does: StreamingGraph::Ingest,
/// IncrementalRanker::RankWarm (seeded from the previous epoch),
/// ScoreSnapshot::Build + SnapshotManager::Install. Freshness is the
/// wall-clock sum of those three stages for one epoch. The cold-rank
/// baseline (what a naive rebuild-per-batch deployment would pay) and the
/// end-of-replay drift against a cold oracle are recorded alongside.
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/graph_builder.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "stream/edge_batch.h"
#include "stream/epoch_pipeline.h"
#include "stream/incremental_ranker.h"
#include "stream/streaming_graph.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

struct Row {
  std::string mode;
  size_t batch_nodes = 0;
  size_t epochs = 0;
  size_t final_nodes = 0;
  size_t final_edges = 0;
  double mean_freshness_ms = 0.0;
  double max_freshness_ms = 0.0;
  double mean_rank_ms = 0.0;
  double cold_rank_ms = 0.0;  // rebuild-per-batch baseline, final graph
  int warm_iterations_total = 0;
  int cold_iterations = 0;
  double max_abs_drift = 0.0;
};

/// Base graph = the oldest `n_base` articles; every suffix window of
/// `batch_nodes` articles becomes one EdgeBatch. Edges whose target lands
/// in a later window cannot be replayed under the suffix-only contract and
/// are dropped from the stream (the oracle ranks the streamed graph, so
/// the drift comparison stays exact).
struct Replay {
  CitationGraph base;
  std::vector<stream::EdgeBatch> batches;
};

Replay PlanReplay(const CitationGraph& graph, size_t n_base,
                  size_t batch_nodes) {
  const size_t n = graph.num_nodes();
  const std::vector<Year>& years = graph.years();
  Replay replay;
  GraphBuilder builder;
  for (size_t i = 0; i < n_base; ++i) builder.AddNode(years[i]);
  for (NodeId u = 0; u < static_cast<NodeId>(n_base); ++u) {
    for (NodeId v : graph.References(u)) {
      if (v < static_cast<NodeId>(n_base)) {
        SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
      }
    }
  }
  replay.base = std::move(builder).Build().value();
  uint64_t sequence = 1;
  for (size_t start = n_base; start < n; start += batch_nodes) {
    const size_t end = std::min(n, start + batch_nodes);
    stream::EdgeBatch batch;
    batch.sequence = sequence++;
    batch.node_years.assign(years.begin() + start, years.begin() + end);
    for (NodeId u = static_cast<NodeId>(start); u < static_cast<NodeId>(end);
         ++u) {
      for (NodeId v : graph.References(u)) {
        if (v < static_cast<NodeId>(end)) batch.edges.push_back({u, v});
      }
    }
    replay.batches.push_back(std::move(batch));
  }
  return replay;
}

Row RunReplay(const CitationGraph& graph, size_t batch_nodes,
              const std::string& mode) {
  Row row;
  row.mode = mode;
  row.batch_nodes = batch_nodes;
  Replay replay = PlanReplay(graph, graph.num_nodes() / 2, batch_nodes);

  stream::IncrementalRankerOptions options;
  options.ranker = "pagerank";
  options.mode = mode;
  // At the default 1e-12 the frontier barely freezes anyone; 1e-9 is the
  // interesting operating point — the drift column shows what it costs.
  options.frontier_tolerance = 1e-9;
  auto ranker = stream::IncrementalRanker::Create(options).value();
  stream::StreamingGraph streaming(std::move(replay.base));
  serve::SnapshotManager manager;
  stream::EpochPublisher publisher =
      [&manager](const CitationGraph& g, const RankResult& r,
                 const stream::EpochStats& s) -> Status {
    RankingOutput ranking;
    ranking.ranks = ScoresToRanks(r.scores);
    ranking.percentiles = RankPercentiles(r.scores);
    ranking.scores = r.scores;
    serve::SnapshotMeta meta;
    meta.snapshot_id = s.epoch;
    meta.ranker_name = "pagerank";
    SCHOLAR_ASSIGN_OR_RETURN(
        serve::ScoreSnapshot snapshot,
        serve::ScoreSnapshot::Build(g, ranking, std::move(meta)));
    manager.Install(std::move(snapshot));
    return Status::OK();
  };
  stream::EpochPipeline pipeline(&streaming, &ranker, std::move(publisher));
  SCHOLAR_CHECK_OK(pipeline.Bootstrap());

  double total_ms = 0.0;
  double total_rank_ms = 0.0;
  for (stream::EdgeBatch& batch : replay.batches) {
    Result<stream::EpochStats> stats = pipeline.Step(std::move(batch));
    SCHOLAR_CHECK_OK(stats.status());
    const double freshness = stats->apply_ms + stats->rank_ms +
                             stats->publish_ms;
    total_ms += freshness;
    total_rank_ms += stats->rank_ms;
    row.max_freshness_ms = std::max(row.max_freshness_ms, freshness);
    ++row.epochs;
  }
  row.mean_freshness_ms = row.epochs == 0 ? 0.0 : total_ms / row.epochs;
  row.mean_rank_ms = row.epochs == 0 ? 0.0 : total_rank_ms / row.epochs;
  row.warm_iterations_total = pipeline.total_iterations();
  row.final_nodes = streaming.num_nodes();
  row.final_edges = streaming.num_edges();

  auto cold = stream::IncrementalRanker::Create(options).value();
  WallTimer timer;
  RankResult oracle = cold.RankCold(streaming.graph()).value();
  row.cold_rank_ms = timer.ElapsedMillis();
  row.cold_iterations = oracle.iterations;
  const std::vector<double>& warm = ranker.previous_scores();
  for (size_t i = 0; i < warm.size(); ++i) {
    row.max_abs_drift =
        std::max(row.max_abs_drift, std::fabs(warm[i] - oracle.scores[i]));
  }
  return row;
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  SCHOLAR_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"stream_freshness\",\n"
               "  \"ranker\": \"pagerank\",\n"
               "  \"profile\": \"aminer\",\n"
               "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  WriteHostJson(f);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"batch_nodes\": %zu, \"epochs\": %zu, "
        "\"final_nodes\": %zu, \"final_edges\": %zu, "
        "\"mean_freshness_ms\": %.3f, \"max_freshness_ms\": %.3f, "
        "\"mean_rank_ms\": %.3f, \"cold_rank_ms\": %.3f, "
        "\"warm_iterations_total\": %d, \"cold_iterations\": %d, "
        "\"max_abs_drift\": %.3e}%s\n",
        r.mode.c_str(), r.batch_nodes, r.epochs, r.final_nodes, r.final_edges,
        r.mean_freshness_ms, r.max_freshness_ms, r.mean_rank_ms,
        r.cold_rank_ms, r.warm_iterations_total, r.cold_iterations,
        r.max_abs_drift, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t articles = g_smoke ? 2000 : 60000;
  const std::vector<size_t> batch_sizes =
      g_smoke ? std::vector<size_t>{100, 400}
              : std::vector<size_t>{500, 2000, 8000};

  std::printf("generating aminer corpus, n=%zu ...\n", articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  std::printf("  graph: %zu nodes, %zu edges\n", corpus.graph.num_nodes(),
              corpus.graph.num_edges());

  std::vector<Row> rows;
  std::printf(
      "mode      batch_nodes  epochs  mean_ms  max_ms  rank_ms  cold_ms  "
      "warm_it  cold_it  drift\n");
  for (const std::string& mode : {std::string("full"),
                                  std::string("frontier")}) {
    for (size_t batch_nodes : batch_sizes) {
      Row row = RunReplay(corpus.graph, batch_nodes, mode);
      std::printf(
          "%-9s %11zu %7zu %8.2f %7.2f %8.2f %8.2f %8d %8d  %.2e\n",
          row.mode.c_str(), row.batch_nodes, row.epochs,
          row.mean_freshness_ms, row.max_freshness_ms, row.mean_rank_ms,
          row.cold_rank_ms, row.warm_iterations_total, row.cold_iterations,
          row.max_abs_drift);
      rows.push_back(std::move(row));
    }
  }
  WriteJson(rows, "BENCH_stream_freshness.json");
  return 0;
}
