/// Table 4 — ablation of the ensemble framework's design choices on the
/// AMiner-like corpus: base ranker swap, normalization scope, normalizer
/// kind, combiner, and the contemporary-window depth.
#include "bench_common.h"

#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

void Report(const char* what, const std::string& base, const Config& config,
            const Corpus& corpus, const EvalSuite& suite, std::string* csv) {
  RankerEvaluation e = EvaluateByName("ens_" + base, corpus, suite, config);
  std::printf("%-34s %10.4f %10.4f %10.4f %8d\n", what, e.overall_accuracy,
              e.recent_accuracy, e.spearman_truth, e.iterations);
  *csv += std::string(what) + "," + FormatDouble(e.overall_accuracy, 4) +
          "," + FormatDouble(e.recent_accuracy, 4) + "," +
          FormatDouble(e.spearman_truth, 4) + "," +
          std::to_string(e.iterations) + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Table 4", "ensemble ablation (aminer profile)");
  Corpus corpus = MakeBenchCorpus("aminer", kAMinerArticles);
  EvalSuite suite = MakeBenchSuite(corpus);
  std::string csv =
      "variant,overall_accuracy,recent_accuracy,spearman,iterations\n";

  std::printf("%-34s %10s %10s %10s %8s\n", "variant", "overall", "recent",
              "spearman", "iters");

  // Default configuration (the paper's full method).
  Report("default (twpr,year,pct,mean)", "twpr", Config(), corpus, suite,
         &csv);

  // Base ranker swap.
  Report("base: pagerank", "pagerank", Config(), corpus, suite, &csv);
  Report("base: citation count", "cc", Config(), corpus, suite, &csv);

  // Normalization scope: year generation (default) vs slice generation vs
  // whole snapshot.
  {
    Config c;
    c.Set("scope", "cohort");
    Report("scope: slice cohort", "twpr", c, corpus, suite, &csv);
  }
  {
    Config c;
    c.Set("scope", "snapshot");
    Report("scope: snapshot (no cohort)", "twpr", c, corpus, suite, &csv);
  }

  // k = 1: generation normalization without the temporal ensemble.
  {
    Config c;
    c.SetInt("num_slices", 1);
    Report("k=1 (year-norm, no ensemble)", "twpr", c, corpus, suite, &csv);
  }

  // Normalizer kind.
  for (const char* norm : {"max", "sum", "zscore"}) {
    Config c;
    c.Set("normalizer", norm);
    Report(("normalizer: " + std::string(norm)).c_str(), "twpr", c, corpus,
           suite, &csv);
  }

  // Combiner.
  {
    Config c;
    c.Set("combiner", "recency");
    c.SetDouble("ens_gamma", 0.7);
    Report("combiner: recency-weighted 0.7", "twpr", c, corpus, suite, &csv);
  }

  // Contemporary window depth.
  for (int w : {1, 2, 3}) {
    Config c;
    c.SetInt("window", w);
    Report(("window: " + std::to_string(w) + " snapshots").c_str(), "twpr",
           c, corpus, suite, &csv);
  }

  // Partition strategy.
  {
    Config c;
    c.Set("partition", "span");
    Report("partition: equal-span", "twpr", c, corpus, suite, &csv);
  }

  // Warm start off: identical quality, more power iterations.
  {
    Config c;
    c.SetBool("warm_start", false);
    Report("warm start: off", "twpr", c, corpus, suite, &csv);
  }

  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
