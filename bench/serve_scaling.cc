/// Serving-tier scale-out bench — end-to-end QPS and tail latency of the
/// epoll event-loop server across worker counts, written to
/// BENCH_serve_scaling.json so the serving perf trajectory is tracked
/// in-repo alongside the ranking benches.
///
/// Each row starts a real Server (SO_REUSEPORT listeners, per-worker
/// QueryEngine replicas over one shared SnapshotManager) on an ephemeral
/// loopback port and drives it with in-process client threads replaying a
/// Zipf-skewed query mix — the same protocol bytes tools/serve_loadgen
/// sends over the wire. Three workloads:
///
///   closed   per-worker-count rows: `connections` pipelined clients at
///            full tilt, with a mid-run snapshot hot-swap. Contracts:
///            zero errors, zero dropped responses across the swap.
///   open     fixed-arrival-rate (Poisson) rows at 1 and max workers:
///            latency from the scheduled send instant, the honest p99 at
///            a given offered load.
///   overload a deliberately tiny per-connection batch bound under a deep
///            pipeline: the server must shed with typed BUSY lines —
///            bounded queueing observable as shed_rate > 0, still zero
///            dropped.
///
/// Scaling contract (asserted only on hosts with >= 2 real cores, never in
/// smoke mode): closed-loop QPS at 2 workers must beat 1 worker while p99
/// stays within 2x the single-worker p99. A single-core runner writes
/// "single_core_untrusted": true instead and its scaling rows are
/// decoration, exactly like rank_scaling.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "rank/ranker.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

constexpr double kZipfSkew = 1.1;

struct LoadResult {
  std::vector<int64_t> latencies_ns;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t dropped = 0;
  double seconds = 0.0;
};

struct Row {
  std::string mode;  // "closed" | "open" | "overload"
  size_t workers = 0;
  size_t connections = 0;
  size_t pipeline = 0;
  double rate = 0.0;  // open-loop offered load, requests/s (0 = closed)
  size_t responses = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t dropped = 0;
  size_t swaps = 0;
};

/// Minimal blocking loopback client (the bench-side twin of the one in
/// tools/serve_loadgen.cc — kept separate so the bench stays buildable
/// without the tools tree).
class LineClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return false;
    }
    int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    return true;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }
  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = pending_.find('\n');
      if (nl != std::string::npos) {
        *line = pending_.substr(0, nl);
        pending_.erase(0, nl + 1);
        return true;
      }
      char buffer[64 * 1024];
      ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      pending_.append(buffer, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

/// Zipf-skewed request line: the head-heavy id popularity of real article
/// traffic, same mix shape as the loadgen default.
std::string MakeRequest(uint64_t num_nodes, Rng* rng) {
  const uint64_t id = rng->NextZipf(num_nodes, kZipfSkew);
  switch (rng->NextBounded(4)) {
    case 0:
      return "top_k 10 " + std::to_string(10 * rng->NextBounded(10));
    case 1:
      return "rank " + std::to_string(id);
    case 2:
      return "percentile " + std::to_string(id);
    default:
      return "score " + std::to_string(id);
  }
}

void CountResponse(const std::string& line, uint64_t* errors,
                   uint64_t* shed) {
  if (line.rfind("OK", 0) == 0) return;
  if (line == "BUSY") {
    ++*shed;
  } else {
    ++*errors;
  }
}

/// One closed-loop pipelined client; quota requests, then exit.
void ClosedLoopClient(uint16_t port, uint64_t num_nodes, size_t quota,
                      size_t pipeline, uint64_t seed, LoadResult* result,
                      std::atomic<bool>* connect_failed) {
  LineClient client;
  if (!client.Connect(port)) {
    connect_failed->store(true);
    return;
  }
  Rng rng(seed);
  result->latencies_ns.reserve(quota);
  std::string batch, line;
  size_t remaining = quota;
  while (remaining > 0) {
    const size_t burst = std::min(pipeline, remaining);
    batch.clear();
    for (size_t i = 0; i < burst; ++i) {
      batch += MakeRequest(num_nodes, &rng);
      batch += '\n';
    }
    const auto sent_at = std::chrono::steady_clock::now();
    if (!client.SendAll(batch)) {
      result->dropped += remaining;
      return;
    }
    for (size_t i = 0; i < burst; ++i) {
      if (!client.ReadLine(&line)) {
        result->dropped += remaining - i;
        return;
      }
      result->latencies_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - sent_at)
              .count());
      CountResponse(line, &result->errors, &result->shed);
    }
    remaining -= burst;
  }
}

/// One open-loop client: Poisson arrivals at `rate`, latency measured from
/// the scheduled send instant (offered load never self-throttles).
void OpenLoopClient(uint16_t port, uint64_t num_nodes, size_t quota,
                    double rate, uint64_t seed, LoadResult* result,
                    std::atomic<bool>* connect_failed) {
  LineClient client;
  if (!client.Connect(port)) {
    connect_failed->store(true);
    return;
  }
  Rng rng(seed);
  std::string line;
  auto next_send = std::chrono::steady_clock::now();
  // Requests are sent on schedule and the response read before the next
  // arrival is due; with per-request service time far under the arrival
  // gap this matches the paced-sender design of tools/serve_loadgen while
  // staying single-threaded per connection.
  for (size_t i = 0; i < quota; ++i) {
    next_send += std::chrono::nanoseconds(
        static_cast<int64_t>(rng.NextExponential(rate) * 1e9));
    std::string request = MakeRequest(num_nodes, &rng);
    request += '\n';
    std::this_thread::sleep_until(next_send);
    if (!client.SendAll(request)) {
      result->dropped += quota - i;
      return;
    }
    if (!client.ReadLine(&line)) {
      result->dropped += quota - i;
      return;
    }
    result->latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - next_send)
            .count());
    CountResponse(line, &result->errors, &result->shed);
  }
}

double PercentileMs(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return static_cast<double>((*latencies)[index]) / 1e6;
}

/// Builds the serving snapshot once: citation-count scores are enough for a
/// serving bench (the server never looks at how scores were computed).
serve::ScoreSnapshot MakeServingSnapshot(const Corpus& corpus, uint64_t id) {
  Config config;
  auto ranker = MakeRanker("cc", config).value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  Result<RankResult> result = ranker->Rank(ctx);
  SCHOLAR_CHECK_OK(result.status());
  RankingOutput ranking;
  ranking.scores = std::move(result->scores);
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  serve::SnapshotMeta meta;
  meta.snapshot_id = id;
  meta.ranker_name = "cc";
  meta.corpus_name = corpus.name;
  Result<serve::ScoreSnapshot> snapshot =
      serve::ScoreSnapshot::Build(corpus.graph, ranking, std::move(meta));
  SCHOLAR_CHECK_OK(snapshot.status());
  return std::move(snapshot).value();
}

/// Runs one load shape against a fresh server. `hot_swaps` snapshots are
/// installed mid-run (the swap path is part of the serving contract, not a
/// separate bench).
Row RunRow(const std::string& mode, const Corpus& corpus,
           const serve::ScoreSnapshot& base, size_t workers,
           size_t connections, size_t pipeline, double rate,
           size_t total_requests, size_t hot_swaps,
           size_t max_batch_requests) {
  serve::SnapshotManager manager;
  manager.Install(serve::ScoreSnapshot(base));

  serve::ServerOptions options;
  options.port = 0;
  options.num_workers = workers;
  if (max_batch_requests > 0) options.max_batch_requests = max_batch_requests;
  serve::QueryEngineOptions engine_options;
  serve::Server server(&manager, engine_options, options);
  SCHOLAR_CHECK_OK(server.Start());

  const uint64_t num_nodes = corpus.graph.num_nodes();
  std::vector<LoadResult> results(connections);
  std::atomic<bool> connect_failed{false};
  std::vector<std::thread> clients;
  const size_t per_connection = total_requests / connections;
  WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    const size_t quota =
        per_connection + (c == 0 ? total_requests % connections : 0);
    if (mode == "open") {
      clients.emplace_back(OpenLoopClient, server.port(), num_nodes, quota,
                           rate / static_cast<double>(connections),
                           1 + 1000 * c, &results[c], &connect_failed);
    } else {
      clients.emplace_back(ClosedLoopClient, server.port(), num_nodes, quota,
                           pipeline, 1 + 1000 * c, &results[c],
                           &connect_failed);
    }
  }
  // Mid-run hot swaps: the kernel of the freshness story — clients keep
  // their connections and must never see an error or a dropped response.
  for (size_t swap = 1; swap <= hot_swaps; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    manager.Install(MakeServingSnapshot(corpus, /*id=*/1 + swap));
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = timer.ElapsedSeconds();
  SCHOLAR_CHECK(!connect_failed.load()) << "client failed to connect";
  server.Stop();

  Row row;
  row.mode = mode;
  row.workers = workers;
  row.connections = connections;
  row.pipeline = mode == "open" ? 1 : pipeline;
  row.rate = rate;
  row.seconds = elapsed;
  row.swaps = hot_swaps;
  std::vector<int64_t> all;
  for (LoadResult& r : results) {
    row.errors += r.errors;
    row.shed += r.shed;
    row.dropped += r.dropped;
    all.insert(all.end(), r.latencies_ns.begin(), r.latencies_ns.end());
  }
  row.responses = all.size();
  row.qps = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  row.p99_ms = PercentileMs(&all, 0.99);
  row.p50_ms = PercentileMs(&all, 0.50);
  return row;
}

void PrintRow(const Row& r) {
  std::printf(
      "  %-8s workers=%zu conns=%zu pipeline=%-3zu rate=%-6.0f "
      "qps=%8.0f p50=%7.3fms p99=%7.3fms errors=%llu shed=%llu "
      "dropped=%llu swaps=%zu\n",
      r.mode.c_str(), r.workers, r.connections, r.pipeline, r.rate, r.qps,
      r.p50_ms, r.p99_ms, static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.dropped), r.swaps);
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  SCHOLAR_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve_scaling\",\n"
               "  \"zipf_skew\": %.2f,\n",
               kZipfSkew);
  WriteHostJson(f);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"workers\": %zu, \"connections\": %zu, "
        "\"pipeline\": %zu, \"rate\": %.0f, \"responses\": %zu, "
        "\"seconds\": %.3f, \"qps\": %.0f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"errors\": %llu, \"shed\": %llu, "
        "\"dropped\": %llu, \"hot_swaps\": %zu}%s\n",
        r.mode.c_str(), r.workers, r.connections, r.pipeline, r.rate,
        r.responses, r.seconds, r.qps, r.p50_ms, r.p99_ms,
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.dropped), r.swaps,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("serve_scaling",
         "event-loop serving tier: QPS and tail latency across worker "
         "counts, Zipf query mix, mid-run hot swaps, overload shedding");
  const unsigned hw = std::thread::hardware_concurrency();

  const size_t articles = g_smoke ? 2000 : 60000;
  const size_t requests = g_smoke ? 20000 : 200000;
  const size_t swaps = g_smoke ? 2 : 4;
  std::printf("generating aminer corpus, n=%zu ...\n", articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  const serve::ScoreSnapshot base = MakeServingSnapshot(corpus, /*id=*/1);

  std::vector<Row> rows;

  // Closed-loop worker sweep with mid-run hot swaps.
  double qps_1w = 0.0, p99_1w = 0.0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    Row row = RunRow("closed", corpus, base, workers,
                     /*connections=*/2 * workers, /*pipeline=*/32,
                     /*rate=*/0.0, requests, swaps,
                     /*max_batch_requests=*/0);
    PrintRow(row);
    SCHOLAR_CHECK(row.errors == 0) << row.errors << " errors at " << workers
                                   << " workers";
    SCHOLAR_CHECK(row.dropped == 0)
        << row.dropped << " dropped responses across " << row.swaps
        << " hot swaps at " << workers << " workers";
    if (workers == 1) {
      qps_1w = row.qps;
      p99_1w = row.p99_ms;
    } else if (workers == 2 && hw >= 2 && !g_smoke) {
      // The scale-out contract: more workers must buy throughput without
      // blowing the tail. Only meaningful with real parallelism under it.
      SCHOLAR_CHECK(row.qps > qps_1w)
          << "2 workers (" << row.qps << " QPS) did not beat 1 worker ("
          << qps_1w << " QPS) on a " << hw << "-core host";
      SCHOLAR_CHECK(row.p99_ms <= 2.0 * p99_1w)
          << "2-worker p99 " << row.p99_ms << "ms blew the budget (2x "
          << p99_1w << "ms)";
    }
    rows.push_back(std::move(row));
  }

  // Open-loop rows: p99 at a fixed offered load, 1 worker vs max workers.
  // The rate targets ~25% of the single-worker closed-loop capacity so
  // both shapes are uncongested on any host; the interesting number is the
  // tail, not the throughput.
  const double rate = std::max(1000.0, 0.25 * qps_1w);
  const size_t open_requests =
      std::min(requests / 4, static_cast<size_t>(rate * 2));
  for (size_t workers : {size_t{1}, size_t{4}}) {
    Row row = RunRow("open", corpus, base, workers,
                     /*connections=*/2 * workers, /*pipeline=*/1, rate,
                     open_requests, /*hot_swaps=*/1,
                     /*max_batch_requests=*/0);
    PrintRow(row);
    SCHOLAR_CHECK(row.errors == 0 && row.dropped == 0)
        << "open-loop row lost requests";
    rows.push_back(std::move(row));
  }

  // Overload row: a 4-deep batch bound under 64-deep pipelines. The server
  // must shed with BUSY (bounded queue), not queue without bound or drop.
  {
    Row row = RunRow("overload", corpus, base, /*workers=*/1,
                     /*connections=*/2, /*pipeline=*/64, /*rate=*/0.0,
                     std::min<size_t>(requests, 40000), /*hot_swaps=*/0,
                     /*max_batch_requests=*/4);
    PrintRow(row);
    const double shed_rate =
        row.responses > 0
            ? static_cast<double>(row.shed) / static_cast<double>(row.responses)
            : 0.0;
    std::printf("  overload shed_rate=%.3f (typed BUSY under pressure)\n",
                shed_rate);
    SCHOLAR_CHECK(row.shed > 0)
        << "64-deep pipelines against a 4-deep batch bound must shed";
    SCHOLAR_CHECK(row.errors == 0 && row.dropped == 0)
        << "overload must shed with BUSY, not break connections";
    rows.push_back(std::move(row));
  }

  WriteJson(rows, "BENCH_serve_scaling.json");
  return 0;
}
