/// Table 3 — ranking quality restricted to recently published articles (the
/// paper's motivating case: static metrics have had no time to accumulate
/// evidence for them). Reports pairwise accuracy over pairs where both
/// articles are from the last 5 years, and over same-publication-year pairs.
#include "bench_common.h"

#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Table 3", "quality on recent articles (last 5 years)");
  std::string csv =
      "dataset,ranker,recent_accuracy,same_year_accuracy,overall_accuracy\n";
  for (const auto& [profile, size] :
       {std::pair<std::string, size_t>{"aminer", kAMinerArticles},
        {"mag", kMagArticles}}) {
    Corpus corpus = MakeBenchCorpus(profile, size);
    EvalSuite suite = MakeBenchSuite(corpus);
    std::printf("\n--- %s (recent = %d onward) ---\n", profile.c_str(),
                suite.recent_cutoff);
    std::printf("%-14s %12s %12s %12s\n", "ranker", "recent-acc",
                "same-yr-acc", "overall-acc");
    for (const std::string& name : Roster()) {
      RankerEvaluation e = EvaluateByName(name, corpus, suite);
      std::printf("%-14s %12.4f %12.4f %12.4f\n", name.c_str(),
                  e.recent_accuracy, e.same_year_accuracy,
                  e.overall_accuracy);
      csv += profile + "," + name + "," + FormatDouble(e.recent_accuracy, 4) +
             "," + FormatDouble(e.same_year_accuracy, 4) + "," +
             FormatDouble(e.overall_accuracy, 4) + "\n";
    }
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
