/// Table 1 — dataset statistics of the two evaluation corpora (the
/// synthetic stand-ins for AMiner and MAG; see DESIGN.md substitutions).
#include "bench_common.h"

#include "graph/graph_stats.h"
#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Table 1", "dataset statistics");
  std::printf("%-10s %12s %12s %12s %8s %8s %10s %8s %8s\n", "dataset",
              "articles", "citations", "refs/art", "years", "venues",
              "max-cites", "gini", "alpha");
  std::string csv = "dataset,articles,citations,mean_refs,year_min,year_max,"
                    "venues,max_in_degree,gini,powerlaw_alpha\n";
  for (const auto& [profile, size] :
       {std::pair<std::string, size_t>{"aminer", kAMinerArticles},
        {"mag", kMagArticles}}) {
    Corpus corpus = MakeBenchCorpus(profile, size);
    GraphStats s = ComputeGraphStats(corpus.graph);
    std::printf("%-10s %12s %12s %12.2f %4d-%-4d %8zu %10zu %8.3f %8.2f\n",
                profile.c_str(),
                FormatWithCommas(static_cast<int64_t>(s.num_nodes)).c_str(),
                FormatWithCommas(static_cast<int64_t>(s.num_edges)).c_str(),
                s.mean_out_degree, s.min_year, s.max_year,
                corpus.venue_names.size(), s.max_in_degree, s.in_degree_gini,
                s.in_degree_powerlaw_alpha);
    csv += profile + "," + std::to_string(s.num_nodes) + "," +
           std::to_string(s.num_edges) + "," +
           FormatDouble(s.mean_out_degree, 2) + "," +
           std::to_string(s.min_year) + "," + std::to_string(s.max_year) +
           "," + std::to_string(corpus.venue_names.size()) + "," +
           std::to_string(s.max_in_degree) + "," +
           FormatDouble(s.in_degree_gini, 3) + "," +
           FormatDouble(s.in_degree_powerlaw_alpha, 2) + "\n";
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
