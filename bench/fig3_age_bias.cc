/// Figure 3 — the recency-bias picture: mean rank percentile per
/// publication-year cohort for CC, PageRank, TWPR and the full ensemble. A
/// fair ranker is flat near 0.5; static metrics slope steeply downward for
/// young cohorts.
#include "bench_common.h"

#include "eval/cohort.h"
#include "rank/ranker.h"
#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Figure 3", "mean rank percentile per publication-year cohort");
  Corpus corpus = MakeBenchCorpus("aminer", kAMinerArticles);
  RankContext ctx;
  ctx.graph = &corpus.graph;
  ctx.authors = &corpus.authors;

  const std::vector<std::string> methods = {"cc", "pagerank", "twpr",
                                            "ens_twpr"};
  std::vector<std::vector<CohortStats>> curves;
  for (const std::string& name : methods) {
    auto ranker = MakeRanker(name).value();
    auto result = ranker->Rank(ctx);
    SCHOLAR_CHECK_OK(result.status());
    curves.push_back(PercentilesByYear(corpus.graph, result->scores));
  }

  std::printf("%-6s %10s", "year", "articles");
  for (const std::string& name : methods) std::printf(" %10s", name.c_str());
  std::printf("\n");
  std::string csv = "year,articles";
  for (const std::string& name : methods) csv += "," + name;
  csv += "\n";
  for (size_t row = 0; row < curves[0].size(); ++row) {
    std::printf("%-6d %10zu", curves[0][row].year, curves[0][row].count);
    csv += std::to_string(curves[0][row].year) + "," +
           std::to_string(curves[0][row].count);
    for (const auto& curve : curves) {
      std::printf(" %10.4f", curve[row].mean_percentile);
      csv += "," + FormatDouble(curve[row].mean_percentile, 4);
    }
    std::printf("\n");
    csv += "\n";
  }

  std::printf("\nrecency-bias slope (0 = age-neutral):\n");
  for (size_t i = 0; i < methods.size(); ++i) {
    std::printf("  %-10s %+.5f\n", methods[i].c_str(),
                RecencyBiasSlope(curves[i]));
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
