/// Figure 5 — robustness to citation sparsity: keep a random fraction of
/// citations and measure (a) how stable each ranker's ordering is relative
/// to its full-graph ordering (Kendall tau), and (b) how much ground-truth
/// accuracy survives.
#include "bench_common.h"

#include "eval/metrics.h"
#include "graph/time_slicer.h"
#include "rank/ranker.h"
#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Figure 5", "robustness to citation sparsity (aminer profile)");
  Corpus corpus = MakeBenchCorpus("aminer", kAMinerArticles);
  EvalSuite suite = MakeBenchSuite(corpus);

  const std::vector<std::string> methods = {"cc", "pagerank", "twpr",
                                            "ens_twpr"};
  // Full-graph reference orderings.
  std::vector<std::vector<double>> reference;
  for (const std::string& name : methods) {
    auto ranker = MakeRanker(name).value();
    reference.push_back(ranker->Rank(corpus.graph).value().scores);
  }

  std::printf("%-10s", "kept");
  for (const std::string& name : methods) {
    std::printf(" %9s-t %9s-a", name.c_str(), name.c_str());
  }
  std::printf("   (t = Kendall tau vs full graph, a = pairwise accuracy)\n");
  std::string csv = "kept_fraction";
  for (const std::string& name : methods) {
    csv += "," + name + "_tau," + name + "_accuracy";
  }
  csv += "\n";

  for (double kept : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    CitationGraph sparse = SampleEdges(corpus.graph, kept, /*seed=*/7);
    std::printf("%-10.1f", kept);
    csv += FormatDouble(kept, 1);
    for (size_t i = 0; i < methods.size(); ++i) {
      auto ranker = MakeRanker(methods[i]).value();
      auto scores = ranker->Rank(sparse).value().scores;
      double tau = KendallTau(scores, reference[i]).value();
      double acc = PairwiseAccuracy(scores, suite.overall_pairs).value();
      std::printf(" %11.4f %11.4f", tau, acc);
      csv += "," + FormatDouble(tau, 4) + "," + FormatDouble(acc, 4);
    }
    std::printf("\n");
    csv += "\n";
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
