/// Figure 4 — scalability: wall time of graph construction and of each
/// ranker as the corpus grows. Rankers are linear in the edge count per
/// iteration; the ensemble pays roughly (number of snapshots)/2 extra
/// passes over accumulative subgraphs.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

/// Corpora are cached across benchmark registrations so generation cost is
/// paid once per size.
const Corpus& CachedCorpus(size_t articles) {
  static std::map<size_t, Corpus>* cache = new std::map<size_t, Corpus>();
  auto it = cache->find(articles);
  if (it == cache->end()) {
    it = cache->emplace(articles, MakeBenchCorpus("aminer", articles)).first;
  }
  return it->second;
}

void BM_GenerateCorpus(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SyntheticOptions options = AMinerLikeProfile(n);
  for (auto _ : state) {
    Result<Corpus> corpus = GenerateSyntheticCorpus(options, "scale");
    SCHOLAR_CHECK_OK(corpus.status());
    benchmark::DoNotOptimize(corpus->num_citations());
  }
  state.counters["articles"] = static_cast<double>(n);
}

void RunRanker(benchmark::State& state, const std::string& name) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Corpus& corpus = CachedCorpus(n);
  auto ranker = MakeRanker(name).value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  ctx.authors = &corpus.authors;
  int iterations = 0;
  for (auto _ : state) {
    auto result = ranker->Rank(ctx);
    SCHOLAR_CHECK_OK(result.status());
    iterations = result->iterations;
    benchmark::DoNotOptimize(result->scores.data());
  }
  state.counters["articles"] = static_cast<double>(n);
  state.counters["edges"] = static_cast<double>(corpus.num_citations());
  state.counters["power_iters"] = iterations;
}

void BM_CitationCount(benchmark::State& state) { RunRanker(state, "cc"); }
void BM_PageRank(benchmark::State& state) { RunRanker(state, "pagerank"); }
void BM_Twpr(benchmark::State& state) { RunRanker(state, "twpr"); }
void BM_FutureRank(benchmark::State& state) { RunRanker(state, "futurerank"); }
void BM_EnsTwpr(benchmark::State& state) { RunRanker(state, "ens_twpr"); }

constexpr int64_t kSizes[] = {10000, 20000, 40000, 80000, 160000};

void RegisterAll() {
  // Smoke mode: one toy size (MakeBenchCorpus clamps it to 2000 articles),
  // just enough to prove the harness still runs end to end.
  const std::vector<int64_t> sizes =
      g_smoke ? std::vector<int64_t>{2000}
              : std::vector<int64_t>(std::begin(kSizes), std::end(kSizes));
  for (int64_t n : sizes) {
    benchmark::RegisterBenchmark("BM_GenerateCorpus", BM_GenerateCorpus)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("BM_CitationCount", BM_CitationCount)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_PageRank", BM_PageRank)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("BM_Twpr", BM_Twpr)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("BM_FutureRank", BM_FutureRank)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("BM_EnsTwpr", BM_EnsTwpr)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  // Drop our flag so benchmark::Initialize doesn't reject it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--smoke") argv[kept++] = argv[i];
  }
  argc = kept;
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
