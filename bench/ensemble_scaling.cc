/// Ensemble-scaling baseline — cost of the ensemble's snapshot machinery
/// with zero-copy temporal views vs the legacy materialized path, written
/// to BENCH_ensemble_scaling.json so the perf trajectory is tracked
/// in-repo.
///
/// Two claims are measured on an AMiner-profile graph with k equal-count
/// slices:
///
///   setup  — building one TemporalCsr index + k O(1) views vs extracting
///            k materialized CitationGraph copies, and the bytes each
///            snapshot structure retains (the index is V+E+k shared by all
///            views; copies cost k·(V+E)).
///   rank   — full ens_twpr at 1/2/4/8 threads in both modes, fixed
///            iteration count (tolerance 0) so every row performs
///            identical arithmetic. Every view row must match the
///            materialized oracle AND the 1-thread run bit for bit — the
///            bench aborts otherwise.
///
/// Peak-RSS numbers (VmHWM around each setup phase, reset via
/// /proc/self/clear_refs) are informative only: the allocator and the
/// corpus dominate them; the retained-bytes accounting is the honest
/// memory claim.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ensemble/ensemble_ranker.h"
#include "ensemble/time_partitioner.h"
#include "graph/temporal_csr.h"
#include "graph/time_slicer.h"
#include "rank/time_weighted_pagerank.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

constexpr int kNumSlices = 8;
constexpr int kFixedIterations = 10;
constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct SetupStats {
  double view_build_ms = 0.0;
  double materialized_extract_ms = 0.0;
  double setup_speedup = 0.0;
  size_t view_bytes = 0;
  size_t materialized_bytes = 0;
  double memory_reduction = 0.0;
  size_t peak_rss_view_kb = 0;
  size_t peak_rss_materialized_kb = 0;
};

struct Row {
  int threads = 0;
  int iterations = 0;
  double view_wall_ms = 0.0;
  double materialized_wall_ms = 0.0;
  bool scores_match_materialized = false;
  bool scores_match_serial = false;
};

/// Heap bytes a CitationGraph retains (years + out/in CSR).
size_t GraphBytes(const CitationGraph& g) {
  const size_t n = g.num_nodes();
  const size_t m = g.num_edges();
  return n * sizeof(Year) + 2 * (n + 1) * sizeof(EdgeId) +
         2 * m * sizeof(NodeId);
}

size_t SnapshotBytes(const Snapshot& snap) {
  return GraphBytes(snap.graph) +
         (snap.to_parent.size() + snap.from_parent.size()) * sizeof(NodeId);
}

/// VmHWM from /proc/self/status, in kB; 0 when unavailable.
size_t ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// Resets the kernel's peak-RSS watermark to the current RSS so the next
/// ReadPeakRssKb reflects only what happened in between.
void ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

SetupStats MeasureSetup(const CitationGraph& g,
                        const std::vector<Year>& boundaries) {
  SetupStats stats;

  ResetPeakRss();
  WallTimer view_timer;
  TemporalCsr tcsr(g);
  std::vector<SnapshotView> views;
  views.reserve(boundaries.size());
  for (Year b : boundaries) views.push_back(tcsr.MakeView(b));
  stats.view_build_ms = view_timer.ElapsedMillis();
  stats.peak_rss_view_kb = ReadPeakRssKb();
  stats.view_bytes = tcsr.ApproxBytes() + views.size() * sizeof(SnapshotView);

  ResetPeakRss();
  WallTimer mat_timer;
  std::vector<Snapshot> snapshots;
  snapshots.reserve(boundaries.size());
  for (Year b : boundaries) snapshots.push_back(ExtractSnapshot(g, b));
  stats.materialized_extract_ms = mat_timer.ElapsedMillis();
  stats.peak_rss_materialized_kb = ReadPeakRssKb();
  for (const Snapshot& snap : snapshots) {
    stats.materialized_bytes += SnapshotBytes(snap);
  }

  stats.setup_speedup =
      stats.view_build_ms > 0.0
          ? stats.materialized_extract_ms / stats.view_build_ms
          : 0.0;
  stats.memory_reduction =
      stats.view_bytes > 0
          ? static_cast<double>(stats.materialized_bytes) /
                static_cast<double>(stats.view_bytes)
          : 0.0;
  return stats;
}

EnsembleRanker MakeEnsemble(int threads, bool materialize) {
  TwprOptions twpr;
  twpr.power.tolerance = 0.0;  // fixed work at every thread count
  twpr.power.max_iterations = kFixedIterations;
  EnsembleOptions o;
  o.num_slices = kNumSlices;
  o.warm_start = false;  // snapshots rank concurrently — the hard mode
  o.threads = threads;
  o.materialize_snapshots = materialize;
  return EnsembleRanker(std::make_shared<TimeWeightedPageRank>(twpr), o);
}

double TimeRank(const EnsembleRanker& ens, const CitationGraph& g,
                int repeats, RankResult* out) {
  RankContext ctx;
  ctx.graph = &g;
  double best_ms = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer timer;
    Result<RankResult> result = ens.Rank(ctx);
    const double ms = timer.ElapsedMillis();
    SCHOLAR_CHECK_OK(result.status());
    if (ms < best_ms) best_ms = ms;
    *out = std::move(result).value();
  }
  return best_ms;
}

void WriteJson(const CitationGraph& g, const SetupStats& setup,
               const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  SCHOLAR_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ensemble_scaling\",\n"
               "  \"ranker\": \"ens_twpr\",\n"
               "  \"profile\": \"aminer\",\n"
               "  \"nodes\": %zu,\n"
               "  \"edges\": %zu,\n"
               "  \"num_slices\": %d,\n"
               "  \"max_iterations\": %d,\n"
               "  \"hardware_concurrency\": %u,\n",
               g.num_nodes(), g.num_edges(), kNumSlices, kFixedIterations,
               std::thread::hardware_concurrency());
  WriteHostJson(f);
  std::fprintf(
      f,
      "  \"setup\": {\"view_build_ms\": %.3f, "
      "\"materialized_extract_ms\": %.3f, \"setup_speedup\": %.2f,\n"
      "            \"view_snapshot_bytes\": %zu, "
      "\"materialized_snapshot_bytes\": %zu, \"memory_reduction\": %.2f,\n"
      "            \"peak_rss_view_kb\": %zu, "
      "\"peak_rss_materialized_kb\": %zu},\n",
      setup.view_build_ms, setup.materialized_extract_ms,
      setup.setup_speedup, setup.view_bytes, setup.materialized_bytes,
      setup.memory_reduction, setup.peak_rss_view_kb,
      setup.peak_rss_materialized_kb);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"iterations\": %d, "
                 "\"view_wall_ms\": %.2f, \"materialized_wall_ms\": %.2f, "
                 "\"scores_match_materialized\": %s, "
                 "\"scores_match_serial\": %s}%s\n",
                 r.threads, r.iterations, r.view_wall_ms,
                 r.materialized_wall_ms,
                 r.scores_match_materialized ? "true" : "false",
                 r.scores_match_serial ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("ensemble_scaling",
         "zero-copy temporal views vs materialized snapshots (ens_twpr)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const size_t articles = g_smoke ? 2000 : quick ? 20000 : 1000000;
  const int repeats = g_smoke || quick ? 1 : 2;

  std::printf("generating aminer corpus, n=%zu ...\n", articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  const CitationGraph& g = corpus.graph;
  std::printf("  graph: %zu nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  Result<std::vector<Year>> boundaries =
      ComputeSliceBoundaries(g, kNumSlices, PartitionStrategy::kEqualCount);
  SCHOLAR_CHECK_OK(boundaries.status());

  const SetupStats setup = MeasureSetup(g, *boundaries);
  std::printf(
      "  setup: views %.1f ms vs materialized %.1f ms (%.1fx); "
      "retained %zu vs %zu bytes (%.1fx)\n",
      setup.view_build_ms, setup.materialized_extract_ms,
      setup.setup_speedup, setup.view_bytes, setup.materialized_bytes,
      setup.memory_reduction);

  std::vector<Row> rows;
  std::vector<double> serial_scores;
  for (int threads : kThreadCounts) {
    Row row;
    row.threads = threads;
    RankResult view_result;
    row.view_wall_ms =
        TimeRank(MakeEnsemble(threads, /*materialize=*/false), g, repeats,
                 &view_result);
    RankResult mat_result;
    row.materialized_wall_ms =
        TimeRank(MakeEnsemble(threads, /*materialize=*/true), g, repeats,
                 &mat_result);
    row.iterations = view_result.iterations;
    row.scores_match_materialized = view_result.scores == mat_result.scores;
    if (threads == 1) serial_scores = view_result.scores;
    row.scores_match_serial = view_result.scores == serial_scores;
    std::printf(
        "  threads=%d  view=%.1f ms  materialized=%.1f ms  "
        "oracle_match=%s  serial_match=%s\n",
        row.threads, row.view_wall_ms, row.materialized_wall_ms,
        row.scores_match_materialized ? "yes" : "NO",
        row.scores_match_serial ? "yes" : "NO");
    SCHOLAR_CHECK(row.scores_match_materialized)
        << "view scores diverged from the materialized oracle at "
        << threads << " threads";
    SCHOLAR_CHECK(row.scores_match_serial)
        << "view scores diverged from the 1-thread run at " << threads
        << " threads";
    rows.push_back(row);
  }

  WriteJson(g, setup, rows, "BENCH_ensemble_scaling.json");
  return 0;
}
