/// Figure 1 — sensitivity of TWPR (standalone and inside the ensemble) to
/// the citation-gap decay rate sigma. sigma = 0 is classic PageRank edge
/// weighting.
#include "bench_common.h"

#include "util/string_util.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Figure 1", "TWPR decay-rate (sigma) sensitivity, aminer profile");
  Corpus corpus = MakeBenchCorpus("aminer", kAMinerArticles);
  EvalSuite suite = MakeBenchSuite(corpus);

  std::printf("%-8s %14s %14s %14s %14s\n", "sigma", "twpr overall",
              "twpr recent", "ens overall", "ens recent");
  std::string csv =
      "sigma,twpr_overall,twpr_recent,ens_overall,ens_recent\n";
  for (double sigma : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    Config config;
    config.SetDouble("sigma", sigma);
    RankerEvaluation twpr = EvaluateByName("twpr", corpus, suite, config);
    RankerEvaluation ens = EvaluateByName("ens_twpr", corpus, suite, config);
    std::printf("%-8.2f %14.4f %14.4f %14.4f %14.4f\n", sigma,
                twpr.overall_accuracy, twpr.recent_accuracy,
                ens.overall_accuracy, ens.recent_accuracy);
    csv += FormatDouble(sigma, 2) + "," +
           FormatDouble(twpr.overall_accuracy, 4) + "," +
           FormatDouble(twpr.recent_accuracy, 4) + "," +
           FormatDouble(ens.overall_accuracy, 4) + "," +
           FormatDouble(ens.recent_accuracy, 4) + "\n";
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
