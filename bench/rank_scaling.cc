/// Rank-scaling baseline — wall time of the pull-based TWPR ranking across
/// the iteration-engine variant matrix (SIMD x precision x CSR layout x
/// weight codebook x convergence mode) and across 1/2/4/8 threads, written
/// to BENCH_rank_scaling.json so the perf trajectory is tracked in-repo.
///
/// Two workloads per corpus size:
///
///   fixed    tolerance 0, a constant 20 iterations — every fixed-sweep
///            variant performs identical arithmetic, so these rows isolate
///            the per-sweep cost of each layout/ISA/precision choice and
///            carry the identity/drift contracts;
///   converge tolerance 1e-12, run to convergence — the production shape.
///            Adaptive rows legitimately gather less as regions settle, so
///            this is where the campaign's time-to-solution claim lives.
///
/// Contracts asserted here, not just reported:
///
///   - scalar/avx2 double fixed variants (and every thread count)
///     reproduce the scalar single-thread scores bit for bit — codebook
///     and compressed rows included;
///   - float-precision fixed rows drift <= 1e-6 absolute from the double
///     scores;
///   - on the full 1M-node corpus, the best converge-workload variant
///     *within the 1e-6 drift budget* reaches the converged legacy scores
///     >= 2x faster than the legacy (PR-2) order does;
///   - parallel efficiency at 4 threads is >= 0.6 — checked only on hosts
///     with >= 4 real cores (a single-core runner writes
///     "single_core_untrusted": true instead, and every scaling row it
///     produces is decoration).
///
/// Any speedup_vs_1 < 1 at threads > 1 prints a WARNING line: adding
/// threads must never lose to serial on a multi-core host.
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "rank/kernel/kernel_options.h"
#include "rank/kernel/simd.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

constexpr int kFixedIterations = 20;
constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr double kFloatDriftBound = 1e-6;
// The converge workload's stopping tolerance (production shape: run until
// the per-iteration residual settles).
constexpr double kConvergeTolerance = 1e-12;
constexpr int kConvergeMaxIterations = 600;

struct Variant {
  const char* simd;         // "scalar" | "auto" (widest ISA) | "legacy"
  const char* precision;    // "double" | "float"
  const char* compression;  // "none" | "delta_varint"
  bool adaptive;
  // 0 = the engine's default freeze threshold (1e-13, near-exact).
  // > 0 = an explicit drift budget: rows freeze once no source moved more
  // than this per sweep, trading bounded score drift for skipped gathers.
  double adaptive_tol = 0.0;
  // Byte-code the TWPR weight stream (bit-identical; see kernel_options.h).
  bool codebook = false;
};

struct Row {
  size_t nodes = 0;
  size_t edges = 0;
  std::string workload = "fixed";  // "fixed" | "converge"
  std::string variant;
  std::string simd_resolved;
  int threads = 0;
  int iterations = 0;
  double wall_ms = 0.0;
  double speedup_vs_legacy = 0.0;  // single-thread variant rows
  double speedup_vs_1 = 0.0;       // thread-sweep rows
  bool bit_identical = false;      // vs the workload's reference scores
  double max_abs_diff = 0.0;       // ditto (0 when bit_identical)
};

std::string VariantLabel(const Variant& v) {
  std::string s = v.simd;
  s += v.precision[0] == 'f' && v.precision[1] == 'l' ? "/f32" : "/f64";
  s += v.compression[0] == 'n' ? "/plain" : "/compressed";
  if (v.codebook) s += "/codebook";
  s += v.adaptive ? "/adaptive" : "/fixed";
  if (v.adaptive && v.adaptive_tol > 0.0) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "@%.0e", v.adaptive_tol);
    s += buf;
  }
  return s;
}

Config TwprConfig(const Variant& v, int threads, bool converge) {
  Config config;
  if (converge) {
    config.SetDouble("tolerance", kConvergeTolerance);
    config.SetInt("max_iterations", kConvergeMaxIterations);
  } else {
    config.SetDouble("tolerance", 0.0);  // fixed work at every thread count
    config.SetInt("max_iterations", kFixedIterations);
  }
  config.SetInt("threads", threads);
  config.Set("simd", v.simd);
  config.Set("score_precision", v.precision);
  config.Set("csr_compression", v.compression);
  config.SetBool("weight_codebook", v.codebook);
  config.SetBool("adaptive", v.adaptive);
  if (v.adaptive && v.adaptive_tol > 0.0) {
    config.SetDouble("adaptive_tolerance", v.adaptive_tol);
  }
  return config;
}

/// Best-of-`repeats` wall time of one full TWPR rank under one variant.
Row RunOne(const Corpus& corpus, const Variant& v, int threads, int repeats,
           const std::vector<double>* oracle_scores,
           std::vector<double>* scores_out, bool converge = false) {
  auto ranker = MakeRanker("twpr", TwprConfig(v, threads, converge)).value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  Row row;
  row.nodes = corpus.graph.num_nodes();
  row.edges = corpus.graph.num_edges();
  row.workload = converge ? "converge" : "fixed";
  row.variant = VariantLabel(v);
  row.simd_resolved = std::string(v.simd) == "auto"
                          ? kernel::SimdIsaName()
                          : v.simd;
  row.threads = threads;
  row.wall_ms = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer timer;
    Result<RankResult> result = ranker->Rank(ctx);
    const double ms = timer.ElapsedMillis();
    SCHOLAR_CHECK_OK(result.status());
    row.iterations = result->iterations;
    if (ms < row.wall_ms) row.wall_ms = ms;
    if (oracle_scores != nullptr) {
      row.bit_identical = *oracle_scores == result->scores;
      row.max_abs_diff = 0.0;
      for (size_t i = 0; i < result->scores.size(); ++i) {
        row.max_abs_diff = std::max(
            row.max_abs_diff,
            std::fabs(result->scores[i] - (*oracle_scores)[i]));
      }
    }
    if (rep == repeats - 1 && scores_out != nullptr) {
      *scores_out = std::move(result->scores);
    }
  }
  return row;
}

void BenchSize(size_t articles, int repeats, std::vector<Row>* rows) {
  std::printf("generating aminer corpus, n=%zu ...\n", articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  std::printf("  graph: %zu nodes, %zu edges\n", corpus.graph.num_nodes(),
              corpus.graph.num_edges());
  const unsigned hw = std::thread::hardware_concurrency();

  // The PR-2 baseline: legacy sequential accumulation, double, plain CSR,
  // fixed sweeps, one thread. Every single-thread variant row reports its
  // speedup against this.
  const Variant legacy{"legacy", "double", "none", false};
  Row legacy_row = RunOne(corpus, legacy, /*threads=*/1, repeats,
                          /*oracle_scores=*/nullptr, /*scores_out=*/nullptr);
  legacy_row.speedup_vs_legacy = 1.0;
  legacy_row.speedup_vs_1 = 1.0;
  legacy_row.bit_identical = true;  // it is its own reference
  const double legacy_ms = legacy_row.wall_ms;
  std::printf("  baseline %-28s wall_ms=%9.1f  (PR-2 order)\n",
              legacy_row.variant.c_str(), legacy_ms);
  rows->push_back(legacy_row);

  // Bit-exactness oracle: scalar/double/plain/fixed at one thread.
  const Variant scalar_ref{"scalar", "double", "none", false};
  std::vector<double> oracle;
  Row oracle_row = RunOne(corpus, scalar_ref, /*threads=*/1, repeats,
                          /*oracle_scores=*/nullptr, &oracle);
  oracle_row.speedup_vs_legacy = legacy_ms / oracle_row.wall_ms;
  oracle_row.speedup_vs_1 = 1.0;
  oracle_row.bit_identical = true;
  rows->push_back(oracle_row);
  std::printf("  oracle   %-28s wall_ms=%9.1f  speedup_vs_legacy=%5.2fx\n",
              oracle_row.variant.c_str(), oracle_row.wall_ms,
              oracle_row.speedup_vs_legacy);

  // Single-thread variant matrix: {scalar, widest-ISA} x {double, float} x
  // {plain, compressed} x {fixed, adaptive}, skipping the oracle already
  // measured above.
  double best_speedup = oracle_row.speedup_vs_legacy;
  std::string best_variant = oracle_row.variant;
  for (const char* simd : {"scalar", "auto"}) {
    for (const char* precision : {"double", "float"}) {
      for (const char* compression : {"none", "delta_varint"}) {
        for (bool adaptive : {false, true}) {
          const Variant v{simd, precision, compression, adaptive};
          if (VariantLabel(v) == oracle_row.variant) continue;
          Row row =
              RunOne(corpus, v, /*threads=*/1, repeats, &oracle, nullptr);
          row.speedup_vs_legacy = legacy_ms / row.wall_ms;
          row.speedup_vs_1 = 1.0;
          const std::string accuracy =
              row.bit_identical
                  ? std::string("bit-identical")
                  : "max_abs_diff=" + std::to_string(row.max_abs_diff);
          std::printf(
              "  variant  %-28s wall_ms=%9.1f  speedup_vs_legacy=%5.2fx  "
              "%s\n",
              row.variant.c_str(), row.wall_ms, row.speedup_vs_legacy,
              accuracy.c_str());
          const bool is_double = std::string(precision) == "double";
          if (is_double && !adaptive) {
            SCHOLAR_CHECK(row.bit_identical)
                << row.variant
                << " must reproduce the scalar oracle bit for bit";
          } else if (!is_double && !adaptive) {
            SCHOLAR_CHECK(row.max_abs_diff <= kFloatDriftBound)
                << row.variant << " drifted " << row.max_abs_diff
                << " > " << kFloatDriftBound << " from the double scores";
          }
          if (row.speedup_vs_legacy > best_speedup) {
            best_speedup = row.speedup_vs_legacy;
            best_variant = row.variant;
          }
          rows->push_back(std::move(row));
        }
      }
    }
  }
  // Codebook rows: the weight stream as 1-byte codes into an L1 table.
  // The double row must stay bit-identical (the table round-trips the
  // exact weight bits); the float row inherits the mirror's drift bound.
  for (const Variant& v :
       {Variant{"auto", "double", "none", false, 0.0, true},
        Variant{"auto", "float", "none", false, 0.0, true}}) {
    Row row = RunOne(corpus, v, /*threads=*/1, repeats, &oracle, nullptr);
    row.speedup_vs_legacy = legacy_ms / row.wall_ms;
    row.speedup_vs_1 = 1.0;
    const bool is_double = std::string(v.precision) == "double";
    std::printf(
        "  variant  %-28s wall_ms=%9.1f  speedup_vs_legacy=%5.2fx  %s\n",
        row.variant.c_str(), row.wall_ms, row.speedup_vs_legacy,
        row.bit_identical
            ? "bit-identical"
            : ("max_abs_diff=" + std::to_string(row.max_abs_diff)).c_str());
    if (is_double) {
      SCHOLAR_CHECK(row.bit_identical)
          << row.variant << " must reproduce the scalar oracle bit for bit";
    } else {
      SCHOLAR_CHECK(row.max_abs_diff <= kFloatDriftBound)
          << row.variant << " drifted " << row.max_abs_diff;
    }
    if (row.speedup_vs_legacy > best_speedup) {
      best_speedup = row.speedup_vs_legacy;
      best_variant = row.variant;
    }
    rows->push_back(std::move(row));
  }
  // Drift-budget adaptive rows: the algorithmic half of the campaign.
  // With the default 1e-13 threshold almost no row freezes inside 20
  // sweeps; these rows spend an explicit per-source budget and report the
  // score drift they actually bought with it.
  for (const Variant& v : {Variant{"auto", "double", "none", true, 1e-10},
                           Variant{"auto", "double", "none", true, 1e-8},
                           Variant{"auto", "float", "none", true, 1e-8}}) {
    Row row = RunOne(corpus, v, /*threads=*/1, repeats, &oracle, nullptr);
    row.speedup_vs_legacy = legacy_ms / row.wall_ms;
    row.speedup_vs_1 = 1.0;
    std::printf(
        "  variant  %-28s wall_ms=%9.1f  speedup_vs_legacy=%5.2fx  "
        "max_abs_diff=%.3e\n",
        row.variant.c_str(), row.wall_ms, row.speedup_vs_legacy,
        row.max_abs_diff);
    if (row.max_abs_diff <= kFloatDriftBound &&
        row.speedup_vs_legacy > best_speedup) {
      best_speedup = row.speedup_vs_legacy;
      best_variant = row.variant;
    }
    rows->push_back(std::move(row));
  }
  std::printf(
      "  best fixed-work single-thread variant (within the %.0e drift "
      "budget): %s at %.2fx vs legacy\n",
      kFloatDriftBound, best_variant.c_str(), best_speedup);

  // Thread sweep of the headline variant (widest ISA, double, plain,
  // fixed): speedup_vs_1 plus bit-identity against the *scalar* oracle at
  // every thread count — one comparison proves both ISA- and
  // thread-invariance.
  const Variant sweep{"auto", "double", "none", false};
  double sweep_serial_ms = 0.0;
  for (int threads : kThreadCounts) {
    Row row = RunOne(corpus, sweep, threads, repeats, &oracle, nullptr);
    if (threads == 1) sweep_serial_ms = row.wall_ms;
    row.speedup_vs_legacy = legacy_ms / row.wall_ms;
    row.speedup_vs_1 = sweep_serial_ms / row.wall_ms;
    std::printf("  threads=%d %-27s wall_ms=%9.1f  speedup=%5.2fx  "
                "identical=%s\n",
                row.threads, row.variant.c_str(), row.wall_ms,
                row.speedup_vs_1, row.bit_identical ? "yes" : "NO");
    SCHOLAR_CHECK(row.bit_identical)
        << "scores diverged from the scalar oracle at " << threads
        << " threads";
    if (threads > 1 && row.speedup_vs_1 < 1.0) {
      std::printf(
          "  WARNING: speedup_vs_1=%.2f < 1 at threads=%d — adding threads "
          "lost to serial%s\n",
          row.speedup_vs_1, threads,
          hw <= 1 ? " (expected: single-core host)" : "");
    }
    if (threads == 4 && hw >= 4 && !g_smoke) {
      const double efficiency = row.speedup_vs_1 / 4.0;
      SCHOLAR_CHECK(efficiency >= 0.6)
          << "parallel efficiency " << efficiency
          << " at 4 threads below the 0.6 contract (" << hw
          << " cores available)";
    }
    rows->push_back(std::move(row));
  }
}

/// Time-to-solution workload: rank to tolerance 1e-12 and compare against
/// the converged legacy scores. This is where the campaign's >= 2x claim
/// is asserted — adaptive variants legitimately skip gathers as regions of
/// the graph settle, which fixed-sweep timing cannot show.
void BenchConverge(size_t articles, std::vector<Row>* rows) {
  std::printf("converge workload (tolerance %.0e), n=%zu ...\n",
              kConvergeTolerance, articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  const bool full_corpus = corpus.graph.num_nodes() >= 1000000;

  const Variant legacy{"legacy", "double", "none", false};
  std::vector<double> converged;
  Row legacy_row = RunOne(corpus, legacy, /*threads=*/1, /*repeats=*/1,
                          /*oracle_scores=*/nullptr, &converged,
                          /*converge=*/true);
  legacy_row.speedup_vs_legacy = 1.0;
  legacy_row.speedup_vs_1 = 1.0;
  legacy_row.bit_identical = true;  // it is its own reference
  const double legacy_ms = legacy_row.wall_ms;
  std::printf("  baseline %-32s wall_ms=%9.1f  iters=%3d\n",
              legacy_row.variant.c_str(), legacy_ms, legacy_row.iterations);
  rows->push_back(legacy_row);

  // The ladder from near-exact to the full drift budget. The @1e-12 /
  // @1e-11 freeze thresholds spend part of the 1e-6 budget on freezing
  // slow-moving rows earlier (measured drift stays 2-3 decades under it).
  const Variant converge_variants[] = {
      {"auto", "double", "none", false},                   // SIMD only
      {"auto", "double", "none", false, 0.0, true},        // + codebook
      {"auto", "double", "none", true},                    // near-exact
      {"auto", "double", "none", true, 0.0, true},
      {"auto", "float", "none", true, 1e-12, false},
      {"auto", "float", "none", true, 1e-12, true},
      {"auto", "float", "none", true, 1e-11, true},
  };
  double best_speedup = 0.0;
  std::string best_variant = "(none)";
  for (const Variant& v : converge_variants) {
    Row row = RunOne(corpus, v, /*threads=*/1, /*repeats=*/1, &converged,
                     nullptr, /*converge=*/true);
    row.speedup_vs_legacy = legacy_ms / row.wall_ms;
    row.speedup_vs_1 = 1.0;
    std::printf(
        "  variant  %-32s wall_ms=%9.1f  iters=%3d  time_to_solution=%5.2fx"
        "  max_abs_diff=%.3e\n",
        row.variant.c_str(), row.wall_ms, row.iterations,
        row.speedup_vs_legacy, row.max_abs_diff);
    SCHOLAR_CHECK(row.max_abs_diff <= kFloatDriftBound)
        << row.variant << " converged " << row.max_abs_diff
        << " away from the legacy fixed point (budget " << kFloatDriftBound
        << ")";
    if (row.speedup_vs_legacy > best_speedup) {
      best_speedup = row.speedup_vs_legacy;
      best_variant = row.variant;
    }
    rows->push_back(std::move(row));
  }
  std::printf(
      "  best time-to-solution: %s at %.2fx vs legacy (all variants within "
      "the %.0e budget)\n",
      best_variant.c_str(), best_speedup, kFloatDriftBound);
  if (full_corpus && !g_smoke) {
    SCHOLAR_CHECK(best_speedup >= 2.0)
        << "raw-speed regression: best converge variant " << best_variant
        << " reaches the legacy fixed point only " << best_speedup
        << "x faster on the full corpus (contract: >= 2x within "
        << kFloatDriftBound << ")";
  }
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  SCHOLAR_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"rank_scaling\",\n"
               "  \"ranker\": \"twpr\",\n"
               "  \"profile\": \"aminer\",\n"
               "  \"fixed_iterations\": %d,\n"
               "  \"converge_tolerance\": %.0e,\n"
               "  \"hardware_concurrency\": %u,\n",
               kFixedIterations, kConvergeTolerance,
               std::thread::hardware_concurrency());
  WriteHostJson(f);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"edges\": %zu, \"workload\": \"%s\", "
                 "\"variant\": \"%s\", "
                 "\"simd_resolved\": \"%s\", \"threads\": %d, "
                 "\"iterations\": %d, \"wall_ms\": %.2f, "
                 "\"speedup_vs_legacy\": %.3f, \"speedup_vs_1\": %.3f, "
                 "\"bit_identical\": %s, \"max_abs_diff\": %.3e}%s\n",
                 r.nodes, r.edges, r.workload.c_str(), r.variant.c_str(),
                 r.simd_resolved.c_str(), r.threads, r.iterations, r.wall_ms,
                 r.speedup_vs_legacy, r.speedup_vs_1,
                 r.bit_identical ? "true" : "false", r.max_abs_diff,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("rank_scaling",
         "TWPR wall time across engine variants and thread counts "
         "(fixed 20-iteration work + converge-to-1e-12 time-to-solution)");
  std::printf("widest gather ISA on this host: %s\n", kernel::SimdIsaName());
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::vector<Row> rows;
  if (g_smoke) {
    // CI harness check: toy graph, one repeat (MakeBenchCorpus clamps).
    BenchSize(2000, /*repeats=*/1, &rows);
    BenchConverge(2000, &rows);
  } else if (quick) {
    BenchSize(20000, /*repeats=*/1, &rows);
    BenchConverge(20000, &rows);
  } else {
    BenchSize(100000, /*repeats=*/3, &rows);
    BenchSize(1000000, /*repeats=*/2, &rows);
    BenchConverge(100000, &rows);
    BenchConverge(1000000, &rows);
  }
  WriteJson(rows, "BENCH_rank_scaling.json");
  return 0;
}
