/// Rank-scaling baseline — wall time of the pull-based TWPR ranking at
/// 1/2/4/8 threads on AMiner-profile graphs, written to
/// BENCH_rank_scaling.json so the perf trajectory is tracked in-repo.
///
/// The work is fixed (tolerance 0, a constant iteration count) so every
/// thread count performs identical arithmetic, and the solver guarantees
/// bit-identical scores at any thread count — the bench asserts that too.
/// Speedups are only meaningful relative to the recorded
/// hardware_concurrency of the machine that produced the file: on a
/// single-core runner every thread count necessarily lands near 1x.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

namespace {

constexpr int kFixedIterations = 20;
constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Row {
  size_t nodes = 0;
  size_t edges = 0;
  int threads = 0;
  int iterations = 0;
  double wall_ms = 0.0;
  double speedup_vs_1 = 0.0;
  bool scores_match_serial = false;
};

Config TwprConfig(int threads) {
  Config config;
  config.SetDouble("tolerance", 0.0);  // fixed work at every thread count
  config.SetInt("max_iterations", kFixedIterations);
  config.SetInt("threads", threads);
  return config;
}

/// Best-of-`repeats` wall time of one full TWPR rank.
Row RunOne(const Corpus& corpus, int threads, int repeats,
           const std::vector<double>* serial_scores,
           std::vector<double>* scores_out) {
  auto ranker = MakeRanker("twpr", TwprConfig(threads)).value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  Row row;
  row.nodes = corpus.graph.num_nodes();
  row.edges = corpus.graph.num_edges();
  row.threads = threads;
  row.wall_ms = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer timer;
    Result<RankResult> result = ranker->Rank(ctx);
    const double ms = timer.ElapsedMillis();
    SCHOLAR_CHECK_OK(result.status());
    row.iterations = result->iterations;
    if (ms < row.wall_ms) row.wall_ms = ms;
    row.scores_match_serial =
        serial_scores == nullptr || *serial_scores == result->scores;
    if (rep == repeats - 1 && scores_out != nullptr) {
      *scores_out = std::move(result->scores);
    }
  }
  return row;
}

void BenchSize(size_t articles, int repeats, std::vector<Row>* rows) {
  std::printf("generating aminer corpus, n=%zu ...\n", articles);
  const Corpus corpus = MakeBenchCorpus("aminer", articles);
  std::printf("  graph: %zu nodes, %zu edges\n", corpus.graph.num_nodes(),
              corpus.graph.num_edges());
  std::vector<double> serial_scores;
  double serial_ms = 0.0;
  for (int threads : kThreadCounts) {
    Row row = RunOne(corpus, threads,
                     repeats, threads == 1 ? nullptr : &serial_scores,
                     threads == 1 ? &serial_scores : nullptr);
    if (threads == 1) {
      serial_ms = row.wall_ms;
      row.scores_match_serial = true;
    }
    row.speedup_vs_1 = serial_ms / row.wall_ms;
    std::printf("  threads=%d  wall_ms=%.1f  speedup=%.2fx  identical=%s\n",
                row.threads, row.wall_ms, row.speedup_vs_1,
                row.scores_match_serial ? "yes" : "NO");
    SCHOLAR_CHECK(row.scores_match_serial)
        << "scores diverged at " << threads << " threads";
    rows->push_back(row);
  }
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  SCHOLAR_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"rank_scaling\",\n"
               "  \"ranker\": \"twpr\",\n"
               "  \"profile\": \"aminer\",\n"
               "  \"max_iterations\": %d,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"results\": [\n",
               kFixedIterations, std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"edges\": %zu, \"threads\": %d, "
                 "\"iterations\": %d, \"wall_ms\": %.2f, "
                 "\"speedup_vs_1\": %.3f, \"scores_match_serial\": %s}%s\n",
                 r.nodes, r.edges, r.threads, r.iterations, r.wall_ms,
                 r.speedup_vs_1, r.scores_match_serial ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("rank_scaling",
         "TWPR wall time vs thread count (fixed 20-iteration work)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::vector<Row> rows;
  if (g_smoke) {
    // CI harness check: toy graph, one repeat (MakeBenchCorpus clamps).
    BenchSize(2000, /*repeats=*/1, &rows);
  } else if (quick) {
    BenchSize(20000, /*repeats=*/1, &rows);
  } else {
    BenchSize(100000, /*repeats=*/3, &rows);
    BenchSize(1000000, /*repeats=*/2, &rows);
  }
  WriteJson(rows, "BENCH_rank_scaling.json");
  return 0;
}
