/// Serving-path microbenchmarks: what one core pays per query once scores
/// are precomputed. Covers the snapshot's O(k) top-k slice against the
/// offline partial sort it replaces, and QueryEngine request handling for
/// the common wire commands (parse + lookup + render).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/scholar_ranker.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "rank/ranker.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace scholar;
using namespace scholar::serve;

constexpr size_t kArticles = 20000;

const Corpus& BenchCorpus() {
  // MakeBenchCorpus clamps the size in --smoke mode.
  static const Corpus& corpus =
      *new Corpus(bench::MakeBenchCorpus("aminer", kArticles));
  return corpus;
}

const RankingOutput& BenchRanking() {
  static const RankingOutput& ranking = *new RankingOutput([] {
    // Citation count: instant, and score distribution shape is irrelevant
    // to serving cost.
    Config config;
    config.Set("ranker", "cc");
    Result<ScholarRanker> ranker = ScholarRanker::Create(config);
    SCHOLAR_CHECK_OK(ranker.status());
    Result<RankingOutput> out = ranker->RankCorpus(BenchCorpus());
    SCHOLAR_CHECK_OK(out.status());
    return std::move(out).value();
  }());
  return ranking;
}

SnapshotManager& BenchManager() {
  static SnapshotManager& manager = *new SnapshotManager();
  if (manager.Current() == nullptr) {
    SnapshotMeta meta;
    meta.ranker_name = "cc";
    meta.corpus_name = "serve-bench";
    Result<ScoreSnapshot> snap =
        ScoreSnapshot::Build(BenchCorpus().graph, BenchRanking(), meta);
    SCHOLAR_CHECK_OK(snap.status());
    manager.Install(std::move(snap).value());
  }
  return manager;
}

void BM_OfflineTopK(benchmark::State& state) {
  const RankingOutput& ranking = BenchRanking();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ranking.Top(k));
  }
}
BENCHMARK(BM_OfflineTopK)->Arg(10)->Arg(100)->Arg(1000);

void BM_SnapshotTopK(benchmark::State& state) {
  SnapshotManager& manager = BenchManager();
  auto live = manager.Current();
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(live->snapshot.Top(k));
  }
}
BENCHMARK(BM_SnapshotTopK)->Arg(10)->Arg(100)->Arg(1000);

void BM_EngineScore(benchmark::State& state) {
  QueryEngine engine(&BenchManager());
  Rng rng(7);
  for (auto _ : state) {
    const std::string request =
        "score " + std::to_string(rng.NextBounded(kArticles));
    benchmark::DoNotOptimize(engine.Execute(request));
  }
}
BENCHMARK(BM_EngineScore);

void BM_EngineTopKCached(benchmark::State& state) {
  QueryEngine engine(&BenchManager());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute("top_k 10"));
  }
}
BENCHMARK(BM_EngineTopKCached);

void BM_EngineTopKUncached(benchmark::State& state) {
  QueryEngineOptions options;
  options.cache_entries = 0;
  QueryEngine engine(&BenchManager(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute("top_k 10"));
  }
}
BENCHMARK(BM_EngineTopKUncached);

void BM_EngineNeighbors(benchmark::State& state) {
  QueryEngine engine(&BenchManager());
  Rng rng(7);
  for (auto _ : state) {
    const std::string request =
        "neighbors " + std::to_string(rng.NextBounded(kArticles)) +
        " citers 10";
    benchmark::DoNotOptimize(engine.Execute(request));
  }
}
BENCHMARK(BM_EngineNeighbors);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared --smoke flag works here too.
int main(int argc, char** argv) {
  scholar::bench::InitBench(argc, argv);
  // Drop our flag so benchmark::Initialize doesn't reject it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--smoke") argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
