#ifndef SCHOLARRANK_BENCH_BENCH_COMMON_H_
#define SCHOLARRANK_BENCH_BENCH_COMMON_H_

/// Shared plumbing for the experiment harnesses. Every bench binary
/// regenerates one table or figure of the reconstructed evaluation
/// (DESIGN.md, per-experiment index) and prints both a human-readable table
/// and, below it, the same data as CSV for plotting.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/dataset.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/benchmark_sets.h"
#include "util/logging.h"

namespace scholar {
namespace bench {

/// Smoke mode: toy corpora (<= 2000 articles) and 2 solver iterations, so
/// every bench binary finishes in seconds. Used by the `bench_smoke` ctest
/// label to keep the harnesses themselves from rotting; the numbers it
/// produces are meaningless as measurements.
inline bool g_smoke = false;

/// Parses the shared bench flags (--smoke) and prints the host-parallelism
/// banner every measurement depends on. Call first in every bench main().
inline void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") g_smoke = true;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u%s\n", hw,
              g_smoke ? "  [SMOKE MODE: toy sizes, capped iterations — "
                        "numbers are not measurements]"
                      : "");
  if (hw <= 1) {
    std::printf(
        "WARNING: single-core host — every thread count necessarily lands "
        "near 1x; scaling numbers from this machine are meaningless.\n");
  }
}

/// Dataset sizes used throughout the evaluation. Chosen so the full bench
/// suite finishes in minutes on one core while keeping >10^6 citations per
/// corpus (large enough for stable power-law structure).
inline constexpr size_t kAMinerArticles = 60000;
inline constexpr size_t kMagArticles = 80000;

/// The ranker roster of the main quality tables, in presentation order.
/// The last entry is the paper's full method.
inline const std::vector<std::string>& Roster() {
  // Intentionally leaked: avoids a static non-trivial destructor.
  static const std::vector<std::string>& roster = *new std::vector<std::string>{
      "cc",     "age_cc",     "pagerank",  "hits",
      "katz",   "sceas",      "venuerank", "citerank",
      "futurerank", "twpr",   "ens_pagerank", "ens_twpr"};
  return roster;
}

/// Builds the evaluation corpus for one profile ("aminer" or "mag").
inline Corpus MakeBenchCorpus(const std::string& profile, size_t articles) {
  if (g_smoke) articles = std::min<size_t>(articles, 2000);
  Result<SyntheticOptions> options =
      ProfileByName(profile, articles, /*seed=*/20180416);
  SCHOLAR_CHECK_OK(options.status());
  Result<Corpus> corpus = GenerateSyntheticCorpus(*options, profile);
  SCHOLAR_CHECK_OK(corpus.status());
  return std::move(corpus).value();
}

/// Standard evaluation suite (200k ground-truth pairs, 5-year recency
/// window, 2% award fraction).
inline EvalSuite MakeBenchSuite(const Corpus& corpus) {
  EvalSuiteOptions options;
  options.num_pairs = g_smoke ? 2000 : 200000;
  Result<EvalSuite> suite = BuildEvalSuite(corpus, options);
  SCHOLAR_CHECK_OK(suite.status());
  return std::move(suite).value();
}

/// Runs one registry ranker against a corpus + suite.
inline RankerEvaluation EvaluateByName(const std::string& name,
                                       const Corpus& corpus,
                                       const EvalSuite& suite,
                                       const Config& config = Config()) {
  Config effective = config;
  if (g_smoke && !effective.Has("max_iterations")) {
    effective.SetInt("max_iterations", 2);
  }
  Result<std::shared_ptr<const Ranker>> ranker = MakeRanker(name, effective);
  SCHOLAR_CHECK_OK(ranker.status());
  Result<RankerEvaluation> eval = EvaluateRanker(corpus, **ranker, suite);
  SCHOLAR_CHECK_OK(eval.status());
  return std::move(eval).value();
}

/// Prints the experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================="
              "=\n%s — %s\n"
              "================================================================"
              "\n",
              experiment, description);
}

}  // namespace bench
}  // namespace scholar

#endif  // SCHOLARRANK_BENCH_BENCH_COMMON_H_
