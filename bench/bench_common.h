#ifndef SCHOLARRANK_BENCH_BENCH_COMMON_H_
#define SCHOLARRANK_BENCH_BENCH_COMMON_H_

/// Shared plumbing for the experiment harnesses. Every bench binary
/// regenerates one table or figure of the reconstructed evaluation
/// (DESIGN.md, per-experiment index) and prints both a human-readable table
/// and, below it, the same data as CSV for plotting.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/dataset.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/benchmark_sets.h"
#include "rank/kernel/simd.h"
#include "util/logging.h"

namespace scholar {
namespace bench {

/// Smoke mode: toy corpora (<= 2000 articles) and 2 solver iterations, so
/// every bench binary finishes in seconds. Used by the `bench_smoke` ctest
/// label to keep the harnesses themselves from rotting; the numbers it
/// produces are meaningless as measurements.
inline bool g_smoke = false;

/// Parses the shared bench flags (--smoke) and prints the host-parallelism
/// banner every measurement depends on. Call first in every bench main().
inline void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") g_smoke = true;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u%s\n", hw,
              g_smoke ? "  [SMOKE MODE: toy sizes, capped iterations — "
                        "numbers are not measurements]"
                      : "");
  if (hw <= 1) {
    std::printf(
        "WARNING: single-core host — every thread count necessarily lands "
        "near 1x; scaling numbers from this machine are meaningless and "
        "the JSON this run writes is stamped \"single_core_untrusted\": "
        "true.\n");
  }
}

/// What machine produced a BENCH_*.json file. Perf numbers are
/// uninterpretable without this: a "speedup" row only means something
/// relative to the recorded core count, cache sizes, and the gather ISA the
/// engine actually dispatched to.
struct HostInfo {
  std::string cpu_model;       // /proc/cpuinfo "model name", or "unknown"
  long l1d_cache_bytes = 0;    // 0 = the platform would not say
  long l2_cache_bytes = 0;
  long l3_cache_bytes = 0;
  std::string simd_isa;        // widest gather ISA the engine can dispatch
  unsigned hardware_concurrency = 0;
  /// True on a <=1-core host: every thread count necessarily lands near
  /// 1x there, so scaling rows in the same file are NOT measurements.
  bool single_core_untrusted = false;
};

inline HostInfo QueryHostInfo() {
  HostInfo h;
  h.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos ||
        line.compare(0, 10, "model name") != 0) {
      continue;
    }
    size_t b = line.find_first_not_of(" \t", colon + 1);
    if (b != std::string::npos) h.cpu_model = line.substr(b);
    break;
  }
  // JSON-proof the model string (vendor strings are plain ASCII, but a
  // stray quote or backslash must not corrupt the file).
  for (char& c : h.cpu_model) {
    if (c == '"' || c == '\\') c = ' ';
  }
#ifdef _SC_LEVEL1_DCACHE_SIZE
  h.l1d_cache_bytes = std::max(0L, sysconf(_SC_LEVEL1_DCACHE_SIZE));
  h.l2_cache_bytes = std::max(0L, sysconf(_SC_LEVEL2_CACHE_SIZE));
  h.l3_cache_bytes = std::max(0L, sysconf(_SC_LEVEL3_CACHE_SIZE));
#endif
  h.simd_isa = kernel::SimdIsaName();
  h.hardware_concurrency = std::thread::hardware_concurrency();
  h.single_core_untrusted = h.hardware_concurrency <= 1;
  return h;
}

/// Writes the shared `"host": {...},` JSON header line every BENCH_*.json
/// carries. Call inside the writer, after the opening fields.
inline void WriteHostJson(std::FILE* f) {
  const HostInfo h = QueryHostInfo();
  std::fprintf(
      f,
      "  \"host\": {\"cpu_model\": \"%s\", \"l1d_cache_bytes\": %ld, "
      "\"l2_cache_bytes\": %ld, \"l3_cache_bytes\": %ld, "
      "\"simd_isa\": \"%s\", \"hardware_concurrency\": %u, "
      "\"single_core_untrusted\": %s},\n",
      h.cpu_model.c_str(), h.l1d_cache_bytes, h.l2_cache_bytes,
      h.l3_cache_bytes, h.simd_isa.c_str(), h.hardware_concurrency,
      h.single_core_untrusted ? "true" : "false");
}

/// Dataset sizes used throughout the evaluation. Chosen so the full bench
/// suite finishes in minutes on one core while keeping >10^6 citations per
/// corpus (large enough for stable power-law structure).
inline constexpr size_t kAMinerArticles = 60000;
inline constexpr size_t kMagArticles = 80000;

/// The ranker roster of the main quality tables, in presentation order.
/// The last entry is the paper's full method.
inline const std::vector<std::string>& Roster() {
  // Intentionally leaked: avoids a static non-trivial destructor.
  static const std::vector<std::string>& roster = *new std::vector<std::string>{
      "cc",     "age_cc",     "pagerank",  "hits",
      "katz",   "sceas",      "venuerank", "citerank",
      "futurerank", "twpr",   "ens_pagerank", "ens_twpr"};
  return roster;
}

/// Builds the evaluation corpus for one profile ("aminer" or "mag").
inline Corpus MakeBenchCorpus(const std::string& profile, size_t articles) {
  if (g_smoke) articles = std::min<size_t>(articles, 2000);
  Result<SyntheticOptions> options =
      ProfileByName(profile, articles, /*seed=*/20180416);
  SCHOLAR_CHECK_OK(options.status());
  Result<Corpus> corpus = GenerateSyntheticCorpus(*options, profile);
  SCHOLAR_CHECK_OK(corpus.status());
  return std::move(corpus).value();
}

/// Standard evaluation suite (200k ground-truth pairs, 5-year recency
/// window, 2% award fraction).
inline EvalSuite MakeBenchSuite(const Corpus& corpus) {
  EvalSuiteOptions options;
  options.num_pairs = g_smoke ? 2000 : 200000;
  Result<EvalSuite> suite = BuildEvalSuite(corpus, options);
  SCHOLAR_CHECK_OK(suite.status());
  return std::move(suite).value();
}

/// Runs one registry ranker against a corpus + suite.
inline RankerEvaluation EvaluateByName(const std::string& name,
                                       const Corpus& corpus,
                                       const EvalSuite& suite,
                                       const Config& config = Config()) {
  Config effective = config;
  if (g_smoke && !effective.Has("max_iterations")) {
    effective.SetInt("max_iterations", 2);
  }
  Result<std::shared_ptr<const Ranker>> ranker = MakeRanker(name, effective);
  SCHOLAR_CHECK_OK(ranker.status());
  Result<RankerEvaluation> eval = EvaluateRanker(corpus, **ranker, suite);
  SCHOLAR_CHECK_OK(eval.status());
  return std::move(eval).value();
}

/// Prints the experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================="
              "=\n%s — %s\n"
              "================================================================"
              "\n",
              experiment, description);
}

}  // namespace bench
}  // namespace scholar

#endif  // SCHOLARRANK_BENCH_BENCH_COMMON_H_
