/// Table 2 — the main result: query-independent ranking quality of every
/// method on both datasets. Pairwise accuracy (with a 95% bootstrap CI)
/// against ground truth is the headline metric; NDCG@100 / MAP against the
/// award benchmark and Spearman against latent impact are reported
/// alongside, plus a paired sign-test p-value against the paper's full
/// method (ens_twpr).
#include "bench_common.h"

#include "eval/significance.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace scholar;
using namespace scholar::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  Banner("Table 2", "overall ranking quality (pairwise accuracy & friends)");
  std::string csv =
      "dataset,ranker,pairwise_accuracy,ci_lo,ci_hi,ndcg_awards_100,"
      "map_awards,spearman_truth,p_vs_ens_twpr,iterations,seconds\n";
  for (const auto& [profile, size] :
       {std::pair<std::string, size_t>{"aminer", kAMinerArticles},
        {"mag", kMagArticles}}) {
    Corpus corpus = MakeBenchCorpus(profile, size);
    EvalSuite suite = MakeBenchSuite(corpus);
    RankContext ctx;
    ctx.graph = &corpus.graph;
    ctx.authors = &corpus.authors;
    ctx.venues = &corpus.venues;

    // Rank everything once, keeping raw scores for the significance tests.
    std::vector<std::vector<double>> all_scores;
    std::vector<RankerEvaluation> evals;
    for (const std::string& name : Roster()) {
      auto ranker = MakeRanker(name).value();
      WallTimer timer;
      auto result = ranker->Rank(ctx);
      SCHOLAR_CHECK_OK(result.status());
      auto eval =
          EvaluateScores(corpus, name, result->scores, suite).value();
      eval.iterations = result->iterations;
      eval.seconds = timer.ElapsedSeconds();
      evals.push_back(eval);
      all_scores.push_back(std::move(result->scores));
    }
    const std::vector<double>& full_method = all_scores.back();

    std::printf("\n--- %s (%zu articles, %zu citations) ---\n",
                profile.c_str(), corpus.num_articles(),
                corpus.num_citations());
    std::printf("%-14s %9s %17s %9s %8s %9s %12s %6s %7s\n", "ranker",
                "pair-acc", "95% CI", "ndcg@100", "map", "spearman",
                "p(vs ens)", "iters", "sec");
    for (size_t i = 0; i < evals.size(); ++i) {
      const RankerEvaluation& e = evals[i];
      BootstrapInterval ci =
          BootstrapPairwiseAccuracy(all_scores[i], suite.overall_pairs)
              .value();
      double p = 1.0;
      if (i + 1 < evals.size()) {
        p = ComparePairwise(full_method, all_scores[i], suite.overall_pairs)
                .value()
                .p_value;
      }
      std::printf("%-14s %9.4f  [%6.4f, %6.4f] %9.4f %8.4f %9.4f %12.2e "
                  "%6d %7.2f\n",
                  e.ranker.c_str(), e.overall_accuracy, ci.lo, ci.hi,
                  e.ndcg_awards_100, e.map_awards, e.spearman_truth, p,
                  e.iterations, e.seconds);
      csv += profile + "," + e.ranker + "," +
             FormatDouble(e.overall_accuracy, 4) + "," +
             FormatDouble(ci.lo, 4) + "," + FormatDouble(ci.hi, 4) + "," +
             FormatDouble(e.ndcg_awards_100, 4) + "," +
             FormatDouble(e.map_awards, 4) + "," +
             FormatDouble(e.spearman_truth, 4) + "," +
             FormatDouble(p, 6) + "," + std::to_string(e.iterations) + "," +
             FormatDouble(e.seconds, 3) + "\n";
    }
  }
  std::printf("\n[csv]\n%s", csv.c_str());
  return 0;
}
