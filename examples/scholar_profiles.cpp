/// Scholar profiles: fold the query-independent article ranking up to
/// author level (the "ranking scholars" companion application) and compare
/// aggregation policies.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/registry.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "rank/author_rank.h"
#include "rank/ranker.h"
#include "util/logging.h"

using namespace scholar;

int main() {
  Corpus corpus =
      GenerateSyntheticCorpus(AMinerLikeProfile(20000), "profiles").value();
  std::printf("corpus: %zu articles by %zu authors\n\n",
              corpus.num_articles(), corpus.authors.num_authors());

  auto ranker = MakeRanker("ens_twpr").value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  ctx.authors = &corpus.authors;
  std::vector<double> article_scores = ranker->Rank(ctx).value().scores;

  auto fractional = RankAuthors(corpus.authors, article_scores,
                                AuthorAggregation::kFractionalSum)
                        .value();
  auto mean =
      RankAuthors(corpus.authors, article_scores, AuthorAggregation::kMean)
          .value();
  auto total =
      RankAuthors(corpus.authors, article_scores, AuthorAggregation::kSum)
          .value();

  std::printf("top scholars by fractional article score "
              "(coauthor-split sum):\n");
  std::printf("%-10s %-8s %-12s %-12s %-12s\n", "author", "papers",
              "frac-sum", "mean", "sum");
  std::vector<AuthorId> order(corpus.authors.num_authors());
  for (AuthorId a = 0; a < order.size(); ++a) order[a] = a;
  std::sort(order.begin(), order.end(), [&](AuthorId x, AuthorId y) {
    if (fractional[x] != fractional[y]) return fractional[x] > fractional[y];
    return x < y;
  });
  for (size_t i = 0; i < 15 && i < order.size(); ++i) {
    AuthorId a = order[i];
    std::printf("author_%-3u %-8zu %-12.5f %-12.5f %-12.5f\n", a,
                corpus.authors.PaperCount(a), fractional[a], mean[a],
                total[a]);
  }

  // How much do the policies disagree? Volume-heavy authors rise under
  // kSum, one-hit wonders under kMean.
  size_t agree = 0;
  std::vector<AuthorId> by_sum = order;
  std::sort(by_sum.begin(), by_sum.end(), [&](AuthorId x, AuthorId y) {
    if (total[x] != total[y]) return total[x] > total[y];
    return x < y;
  });
  for (size_t i = 0; i < 100 && i < order.size(); ++i) {
    if (std::find(by_sum.begin(), by_sum.begin() + 100, order[i]) !=
        by_sum.begin() + 100) {
      ++agree;
    }
  }
  std::printf("\noverlap of top-100 under fractional vs plain sum: %zu/100\n",
              agree);
  return 0;
}
