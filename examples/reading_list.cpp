/// Reading-list builder — the paper's motivating application: a newcomer to
/// a field asks "which articles should I read?", a query-independent
/// question that citation counts answer badly for anything recent.
///
/// Compares the GLOBAL top-k under citation counting vs the time-aware
/// ensemble: counting fills the list with old classics; the ensemble
/// produces a list that spans eras while picking articles that are
/// top-of-their-generation.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/registry.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "rank/ranker.h"
#include "util/logging.h"

using namespace scholar;

namespace {

/// Percentile of each article's true impact within its own publication
/// year — the era-fair quality yardstick.
std::vector<double> WithinYearTruth(const Corpus& corpus) {
  std::map<Year, std::vector<NodeId>> by_year;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    by_year[corpus.graph.year(v)].push_back(v);
  }
  std::vector<double> pct(corpus.num_articles(), 0.0);
  for (auto& [year, cohort] : by_year) {
    std::vector<double> q;
    q.reserve(cohort.size());
    for (NodeId v : cohort) q.push_back(corpus.true_impact[v]);
    std::vector<double> p = MidrankPercentiles(q);
    for (size_t i = 0; i < cohort.size(); ++i) pct[cohort[i]] = p[i];
  }
  return pct;
}

void DescribeList(const char* label, const Corpus& corpus,
                  const std::vector<NodeId>& picks,
                  const std::vector<double>& truth_pct) {
  Year newest = corpus.graph.min_year(), oldest = corpus.graph.max_year();
  double quality = 0.0;
  size_t recent = 0;
  const Year cutoff = corpus.graph.max_year() - 9;
  for (NodeId v : picks) {
    newest = std::max(newest, corpus.graph.year(v));
    oldest = std::min(oldest, corpus.graph.year(v));
    quality += truth_pct[v];
    if (corpus.graph.year(v) >= cutoff) ++recent;
  }
  std::printf("%-22s years %d-%d, %2zu/%zu from the last decade, "
              "mean within-era quality %.1f%%\n",
              label, oldest, newest, recent, picks.size(),
              100.0 * quality / picks.size());
}

}  // namespace

int main() {
  Corpus corpus =
      GenerateSyntheticCorpus(AMinerLikeProfile(30000), "library").value();

  auto ens_twpr = MakeRanker("ens_twpr").value();
  auto cc = MakeRanker("cc").value();
  RankContext ctx;
  ctx.graph = &corpus.graph;
  ctx.authors = &corpus.authors;
  std::vector<double> ens_scores = ens_twpr->Rank(ctx).value().scores;
  std::vector<double> cc_scores = cc->Rank(ctx).value().scores;
  std::vector<double> truth_pct = WithinYearTruth(corpus);

  constexpr size_t kListSize = 30;
  std::vector<NodeId> ens_list = TopK(ens_scores, kListSize);
  std::vector<NodeId> cc_list = TopK(cc_scores, kListSize);

  std::printf("Global top-%zu reading list (%zu-article corpus, %d-%d)\n\n",
              kListSize, corpus.num_articles(), corpus.graph.min_year(),
              corpus.graph.max_year());
  DescribeList("citation count:", corpus, cc_list, truth_pct);
  DescribeList("ens_twpr (paper):", corpus, ens_list, truth_pct);

  std::printf("\nens_twpr's picks, newest first "
              "(within-era true-impact percentile in brackets):\n");
  std::vector<NodeId> by_year = ens_list;
  std::sort(by_year.begin(), by_year.end(), [&](NodeId a, NodeId b) {
    if (corpus.graph.year(a) != corpus.graph.year(b)) {
      return corpus.graph.year(a) > corpus.graph.year(b);
    }
    return a < b;
  });
  for (NodeId v : by_year) {
    std::printf("  #%-6u %d  %4zu citations  [%5.1f%%]\n", v,
                corpus.graph.year(v), corpus.graph.InDegree(v),
                100.0 * truth_pct[v]);
  }
  std::printf("\nThe counting list never leaves the corpus's early decades; "
              "the ensemble list\ncovers every era and still picks "
              "top-of-generation articles.\n");
  return 0;
}
