/// Quickstart: generate a small scholarly corpus, rank it with the paper's
/// full method (ensemble-enabled time-weighted PageRank), and print the
/// top articles.
///
/// Build & run:  ./build/examples/example_quickstart [key=value ...]
#include <cstdio>

#include "core/scholar_ranker.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "graph/graph_stats.h"
#include "util/logging.h"

using namespace scholar;  // Example code; library code never does this.

int main(int argc, char** argv) {
  // Any key=value argument overrides the defaults, e.g. ranker=pagerank
  // sigma=0.2 num_slices=12.
  Result<Config> config = Config::FromArgs(argc - 1, argv + 1);
  if (!config.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }

  // 1. A corpus. Here: a synthetic AMiner-like citation network; swap in
  //    ReadAMinerCorpusFile(path) for the real dataset.
  const int64_t n = config->GetIntOr("articles", 20000);
  Result<Corpus> corpus = GenerateSyntheticCorpus(
      AMinerLikeProfile(static_cast<size_t>(n)), "quickstart");
  SCHOLAR_CHECK_OK(corpus.status());
  std::printf("Corpus '%s'\n%s\n", corpus->name.c_str(),
              ToString(ComputeGraphStats(corpus->graph)).c_str());

  // 2. A ranker, fully configured from key=value pairs.
  Result<ScholarRanker> ranker = ScholarRanker::Create(*config);
  SCHOLAR_CHECK_OK(ranker.status());
  std::printf("Ranking with '%s'...\n", ranker->name().c_str());

  // 3. Rank.
  Result<RankingOutput> out = ranker->RankCorpus(*corpus);
  SCHOLAR_CHECK_OK(out.status());
  std::printf("power iterations: %d (converged: %s)\n\n", out->iterations,
              out->converged ? "yes" : "no");

  // 4. Inspect the result.
  std::printf("%-6s %-6s %-6s %-10s %-12s %s\n", "rank", "id", "year",
              "citations", "score", "venue");
  for (NodeId id : out->Top(15)) {
    std::printf("%-6u %-6u %-6d %-10zu %-12.6f %s\n", out->ranks[id], id,
                corpus->graph.year(id), corpus->graph.InDegree(id),
                out->scores[id],
                corpus->venues[id] >= 0
                    ? corpus->venue_names[corpus->venues[id]].c_str()
                    : "?");
  }
  return 0;
}
