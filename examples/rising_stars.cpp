/// Rising-star detection: how much exposure do recently published articles
/// get at the top of the ranking, and are the young articles the time-aware
/// method surfaces actually good? Static metrics structurally bury young
/// work; the ensemble gives every generation fair representation.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/registry.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/cohort.h"
#include "rank/ranker.h"
#include "util/logging.h"

using namespace scholar;

namespace {

/// True-impact percentile of each article within its publication year.
std::vector<double> WithinYearTruth(const Corpus& corpus) {
  std::map<Year, std::vector<NodeId>> by_year;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    by_year[corpus.graph.year(v)].push_back(v);
  }
  std::vector<double> pct(corpus.num_articles(), 0.0);
  for (auto& [year, cohort] : by_year) {
    std::vector<double> q;
    for (NodeId v : cohort) q.push_back(corpus.true_impact[v]);
    std::vector<double> p = MidrankPercentiles(q);
    for (size_t i = 0; i < cohort.size(); ++i) pct[cohort[i]] = p[i];
  }
  return pct;
}

}  // namespace

int main() {
  Corpus corpus =
      GenerateSyntheticCorpus(AMinerLikeProfile(30000), "stars").value();
  const Year now = corpus.graph.max_year();
  const Year recent_cutoff = now - 4;

  std::map<std::string, std::vector<double>> scores;
  for (const std::string name : {"cc", "pagerank", "ens_twpr"}) {
    auto ranker = MakeRanker(name).value();
    scores[name] = ranker->Rank(corpus.graph).value().scores;
  }
  std::vector<double> truth_pct = WithinYearTruth(corpus);

  // Exposure: how many of the global top-500 were published recently?
  constexpr size_t kTop = 500;
  std::printf("articles from %d-%d in the global top-%zu:\n", recent_cutoff,
              now, kTop);
  for (const auto& [name, s] : scores) {
    size_t recent = 0;
    double recent_quality = 0.0;
    for (NodeId v : TopK(s, kTop)) {
      if (corpus.graph.year(v) >= recent_cutoff) {
        ++recent;
        recent_quality += truth_pct[v];
      }
    }
    std::printf("  %-10s %4zu articles", name.c_str(), recent);
    if (recent > 0) {
      std::printf("  (mean within-era true-impact percentile %.1f%%)",
                  100.0 * recent_quality / recent);
    }
    std::printf("\n");
  }

  // The ensemble's young picks, concretely.
  std::printf("\nrising stars: the ensemble's highest-ranked articles "
              "published %d-%d:\n", recent_cutoff, now);
  std::printf("%-8s %-6s %-7s %-12s %s\n", "id", "year", "cites",
              "global rank", "within-era impact pct");
  const std::vector<double>& ens = scores["ens_twpr"];
  std::vector<uint32_t> ranks = ScoresToRanks(ens);
  size_t shown = 0;
  for (NodeId v : TopK(ens, corpus.num_articles())) {
    if (corpus.graph.year(v) < recent_cutoff) continue;
    std::printf("%-8u %-6d %-7zu %-12u %.1f%%\n", v, corpus.graph.year(v),
                corpus.graph.InDegree(v), ranks[v], 100.0 * truth_pct[v]);
    if (++shown == 12) break;
  }

  // Bias summary.
  std::printf("\nrecency-bias slope (0 = age-neutral): ");
  for (const auto& [name, s] : scores) {
    std::printf("%s %+.4f  ", name.c_str(),
                RecencyBiasSlope(PercentilesByYear(corpus.graph, s)));
  }
  std::printf("\n");
  return 0;
}
