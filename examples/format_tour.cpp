/// Tour of the I/O formats: writes one corpus in every supported format
/// (AMiner V8 text, articles/citations TSV, native graph text, compact
/// binary), reads each back, and verifies the round trip — the workflow for
/// plugging real datasets into the library.
#include <cstdio>
#include <filesystem>

#include "data/dataset.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "graph/graph_io.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace scholar;

namespace {

long FileSize(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? -1 : static_cast<long>(size);
}

}  // namespace

int main() {
  const std::string dir = std::filesystem::temp_directory_path() /
                          "scholarrank_format_tour";
  std::filesystem::create_directories(dir);

  Corpus corpus =
      GenerateSyntheticCorpus(AMinerLikeProfile(10000), "tour").value();
  std::printf("corpus: %zu articles, %zu citations\n\n",
              corpus.num_articles(), corpus.num_citations());

  // AMiner V8 text (full metadata: titles, authors, venues, references).
  {
    const std::string path = dir + "/corpus.aminer.txt";
    WallTimer timer;
    SCHOLAR_CHECK_OK(WriteAMinerCorpusFile(corpus, path));
    double write_ms = timer.ElapsedMillis();
    timer.Reset();
    Corpus back = ReadAMinerCorpusFile(path).value();
    SCHOLAR_CHECK(back.graph == corpus.graph) << "AMiner round trip changed "
                                                 "the citation network";
    std::printf("AMiner V8 text   %9ld bytes  write %6.1f ms  read %6.1f ms\n",
                FileSize(path), write_ms, timer.ElapsedMillis());
  }

  // TSV pair (articles.tsv + citations.tsv).
  {
    const std::string articles = dir + "/articles.tsv";
    const std::string citations = dir + "/citations.tsv";
    WallTimer timer;
    SCHOLAR_CHECK_OK(WriteTsvCorpusFiles(corpus, articles, citations));
    double write_ms = timer.ElapsedMillis();
    timer.Reset();
    Corpus back = ReadTsvCorpusFiles(articles, citations).value();
    SCHOLAR_CHECK(back.graph == corpus.graph);
    std::printf("TSV pair         %9ld bytes  write %6.1f ms  read %6.1f ms\n",
                FileSize(articles) + FileSize(citations), write_ms,
                timer.ElapsedMillis());
  }

  // Native graph text (structure only).
  {
    const std::string path = dir + "/graph.txt";
    WallTimer timer;
    SCHOLAR_CHECK_OK(WriteGraphTextFile(corpus.graph, path));
    double write_ms = timer.ElapsedMillis();
    timer.Reset();
    CitationGraph back = ReadGraphTextFile(path).value();
    SCHOLAR_CHECK(back == corpus.graph);
    std::printf("graph text       %9ld bytes  write %6.1f ms  read %6.1f ms\n",
                FileSize(path), write_ms, timer.ElapsedMillis());
  }

  // Compact binary (structure only; the fast path for experiments).
  {
    const std::string path = dir + "/graph.bin";
    WallTimer timer;
    SCHOLAR_CHECK_OK(WriteGraphBinaryFile(corpus.graph, path));
    double write_ms = timer.ElapsedMillis();
    timer.Reset();
    CitationGraph back = ReadGraphBinaryFile(path).value();
    SCHOLAR_CHECK(back == corpus.graph);
    std::printf("graph binary     %9ld bytes  write %6.1f ms  read %6.1f ms\n",
                FileSize(path), write_ms, timer.ElapsedMillis());
  }

  std::printf("\nall round trips verified; files under %s\n", dir.c_str());
  return 0;
}
