#ifndef SCHOLARRANK_RANK_CITERANK_H_
#define SCHOLARRANK_RANK_CITERANK_H_

#include <string>

#include "rank/pagerank.h"
#include "rank/ranker.h"

namespace scholar {

/// CiteRank (Walker, Xie, Yan & Maslov, 2007) — a time-aware PageRank
/// baseline: the walk restarts at article v with probability proportional to
/// exp(-(now - t(v)) / tau), modelling readers who start from recent papers
/// and follow references backwards. Edge weights are uniform.
struct CiteRankOptions {
  /// Characteristic decay time of the restart distribution, in years.
  /// Walker et al. report tau ≈ 2.6 years for physics.
  double tau = 2.6;
  PowerIterationOptions power = {};
};

class CiteRankRanker : public Ranker {
 public:
  explicit CiteRankRanker(CiteRankOptions options = {});

  std::string name() const override { return "citerank"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  const CiteRankOptions& options() const { return options_; }

 private:
  CiteRankOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_CITERANK_H_
