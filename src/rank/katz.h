#ifndef SCHOLARRANK_RANK_KATZ_H_
#define SCHOLARRANK_RANK_KATZ_H_

#include <string>

#include "rank/kernel/kernel_options.h"
#include "rank/ranker.h"

namespace scholar {

/// Katz centrality (Katz, 1953) on the citation digraph: an article's
/// importance is the attenuation-weighted count of all citation paths
/// ending at it,
///
///   s = Σ_{ℓ>=1} alpha^ℓ (A^T)^ℓ 1   ⇔   s <- alpha · A^T (s + 1)
///
/// where A[u][v] = 1 iff u cites v. Converges for alpha < 1/λ_max; the
/// implementation iterates the affine fixed point and L1-normalizes the
/// result. A classic structural baseline that, unlike PageRank, does not
/// split a citer's endorsement across its reference list.
struct KatzOptions {
  /// Attenuation per path hop. Must be in (0, 1); values above 1/λ_max of
  /// the citation matrix diverge — the implementation detects divergence
  /// and reports FailedPrecondition.
  double alpha = 0.05;
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// Worker threads for the gather passes: 0 = hardware concurrency,
  /// 1 = serial. Bit-identical results at every setting.
  int threads = 0;
  /// Iteration-engine variant knobs (SIMD / precision / CSR layout /
  /// adaptive convergence); see rank/kernel/kernel_options.h.
  kernel::KernelOptions kernel;
};

class KatzRanker : public Ranker {
 public:
  explicit KatzRanker(KatzOptions options = {});

  std::string name() const override { return "katz"; }
  bool SupportsSnapshotViews() const override { return true; }

  const KatzOptions& options() const { return options_; }

 private:
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  KatzOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_KATZ_H_
