#include "rank/author_rank.h"

#include <algorithm>
#include <string>

#include "rank/ranker.h"

namespace scholar {

Result<std::vector<double>> RankAuthors(
    const PaperAuthors& authors, const std::vector<double>& article_scores,
    AuthorAggregation aggregation) {
  if (article_scores.size() != authors.num_papers()) {
    return Status::InvalidArgument(
        "article_scores covers " + std::to_string(article_scores.size()) +
        " articles, author map covers " +
        std::to_string(authors.num_papers()));
  }
  std::vector<double> scores(authors.num_authors(), 0.0);

  switch (aggregation) {
    case AuthorAggregation::kSum:
      for (AuthorId a = 0; a < authors.num_authors(); ++a) {
        for (NodeId p : authors.PapersOf(a)) scores[a] += article_scores[p];
      }
      break;
    case AuthorAggregation::kMean:
      for (AuthorId a = 0; a < authors.num_authors(); ++a) {
        auto papers = authors.PapersOf(a);
        if (papers.empty()) continue;
        double sum = 0.0;
        for (NodeId p : papers) sum += article_scores[p];
        scores[a] = sum / static_cast<double>(papers.size());
      }
      break;
    case AuthorAggregation::kFractionalSum:
      for (NodeId p = 0; p < authors.num_papers(); ++p) {
        auto coauthors = authors.AuthorsOf(p);
        if (coauthors.empty()) continue;
        const double share =
            article_scores[p] / static_cast<double>(coauthors.size());
        for (AuthorId a : coauthors) scores[a] += share;
      }
      break;
    case AuthorAggregation::kHLike: {
      std::vector<double> percentiles = MidrankPercentiles(article_scores);
      // Hoisted out of the author loop so its capacity is reused; the
      // remaining growth calls amortize to zero allocations.
      std::vector<double> own;
      for (AuthorId a = 0; a < authors.num_authors(); ++a) {
        auto papers = authors.PapersOf(a);
        own.clear();
        own.reserve(papers.size());  // NOLINT(hot-loop-alloc): amortized, capacity reused across authors in this one-shot aggregation
        for (NodeId p : papers) own.push_back(percentiles[p]);  // NOLINT(hot-loop-alloc): within reserved capacity
        std::sort(own.rbegin(), own.rend());
        size_t h = 0;
        while (h < own.size() &&
               own[h] >= 1.0 - static_cast<double>(h + 1) / 1000.0) {
          ++h;
        }
        scores[a] = static_cast<double>(h);
      }
      break;
    }
  }
  return scores;
}

}  // namespace scholar
