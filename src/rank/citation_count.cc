#include "rank/citation_count.h"

#include <algorithm>

namespace scholar {

Result<RankResult> CitationCountRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  const CitationGraph& g = *ctx.graph;
  RankResult result;
  result.scores.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.scores[v] = static_cast<double>(g.InDegree(v));
  }
  return result;
}

Result<RankResult> AgeNormalizedCitationCountRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  const CitationGraph& g = *ctx.graph;
  const Year now = ctx.EffectiveNow();
  RankResult result;
  result.scores.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Age is clamped below at 1 year so same-year articles are not divided
    // by zero (and future-dated articles, which occur in dirty data, do not
    // get a negative divisor).
    double age = std::max(1, now - g.year(v) + 1);
    result.scores[v] = static_cast<double>(g.InDegree(v)) / age;
  }
  return result;
}

}  // namespace scholar
