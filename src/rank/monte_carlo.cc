#include "rank/monte_carlo.h"

#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace scholar {

MonteCarloPageRankRanker::MonteCarloPageRankRanker(MonteCarloOptions options)
    : options_(options) {}

Result<RankResult> MonteCarloPageRankRanker::RankImpl(
    const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.walks_per_node <= 0) {
    return Status::InvalidArgument("walks_per_node must be positive");
  }
  if (options_.damping < 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  const CitationGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  if (n == 0) return RankResult{};

  Rng rng(options_.seed);
  std::vector<uint64_t> visits(n, 0);
  uint64_t total_visits = 0;
  for (int r = 0; r < options_.walks_per_node; ++r) {
    for (NodeId start = 0; start < n; ++start) {
      NodeId current = start;
      while (true) {
        ++visits[current];
        ++total_visits;
        auto refs = g.References(current);
        if (refs.empty() || !rng.NextBernoulli(options_.damping)) break;
        current = refs[rng.NextBounded(refs.size())];
      }
    }
  }

  RankResult result;
  result.scores.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.scores[v] =
        static_cast<double>(visits[v]) / static_cast<double>(total_visits);
  }
  // One pass, no iteration loop; report the number of walk batches.
  result.iterations = options_.walks_per_node;
  return result;
}

}  // namespace scholar
