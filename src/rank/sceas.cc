#include "rank/sceas.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_access.h"
#include "rank/kernel/gather_engine.h"
#include "util/parallel_for.h"

namespace scholar {
namespace {

/// Chunk size of the per-node loops; fixed so the chunked residual
/// reduction is thread-count independent.
constexpr size_t kNodeGrain = 2048;

}  // namespace

SceasRanker::SceasRanker(SceasOptions options) : options_(options) {}

Result<RankResult> SceasRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false,
                                        /*requires_venues=*/false,
                                        /*accepts_views=*/true));
  if (options_.a <= 1.0) {
    return Status::InvalidArgument(
        "a must be > 1 for the SceasRank iteration to contract, got " +
        std::to_string(options_.a));
  }
  if (options_.b < 0.0) {
    return Status::InvalidArgument("b must be >= 0");
  }
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = ctx.NumNodes();
  if (n == 0) return RankResult{};

  const size_t workers = EffectiveThreads(options_.threads, ctx);
  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();
  ViewRowEnds rows;
  const GraphAccess g = ctx.view != nullptr ? AccessOf(*ctx.view, &rows, pool)
                                            : AccessOf(*ctx.graph);

  // s(v) = Σ_{u cites v} (s(u) + b) / (a · outdeg(u)), evaluated as a pull
  // over the in-CSR with the per-source share hoisted into share[] — no
  // write ever leaves v's slot.
  //
  // A warm-start seed replaces the zero start; with a > 1 the iteration
  // contracts to a unique fixed point, so the seed only affects the round
  // count. Seeds taken from a previous RankResult should be rescaled by
  // its score_mass to recover the iteration's natural magnitude.
  std::vector<double> scores(n, 0.0);
  if (ctx.initial_scores != nullptr && !ctx.initial_scores->empty()) {
    scores = *ctx.initial_scores;
  }
  std::vector<double> share(n);
  const size_t chunks = ChunkCount(n, kNodeGrain);
  std::vector<double> partial(chunks, 0.0);
  kernel::GatherEngine engine;
  SCHOLAR_RETURN_NOT_OK(
      engine.Init(g, kernel::GatherDirection::kInEdges, options_.kernel, pool));
  RankResult result;
  result.converged = false;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        const size_t degree = g.OutDegree(u);
        share[u] = degree == 0
                       ? 0.0
                       : (scores[u] + options_.b) /
                             (options_.a * static_cast<double>(degree));
      }
    });
    const double* gathered = engine.Gather(share.data(), nullptr);
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double residual_part = 0.0;
      for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
        const double acc = gathered[v];
        residual_part += std::abs(acc - scores[v]);
        scores[v] = acc;
      }
      partial[chunk] = residual_part;
    });
    double residual = 0.0;
    for (size_t c = 0; c < chunks; ++c) residual += partial[c];
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  double total = 0.0;
  for (double v : scores) total += v;
  if (total > 0.0) {
    for (double& v : scores) v /= total;
    result.score_mass = total;
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
