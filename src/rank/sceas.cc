#include "rank/sceas.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace scholar {

SceasRanker::SceasRanker(SceasOptions options) : options_(options) {}

Result<RankResult> SceasRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.a <= 1.0) {
    return Status::InvalidArgument(
        "a must be > 1 for the SceasRank iteration to contract, got " +
        std::to_string(options_.a));
  }
  if (options_.b < 0.0) {
    return Status::InvalidArgument("b must be >= 0");
  }
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const CitationGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  if (n == 0) return RankResult{};

  std::vector<double> scores(n, 0.0);
  std::vector<double> next(n);
  RankResult result;
  result.converged = false;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      auto refs = g.References(u);
      if (refs.empty()) continue;
      const double share = (scores[u] + options_.b) /
                           (options_.a * static_cast<double>(refs.size()));
      for (NodeId v : refs) next[v] += share;
    }
    double residual = 0.0;
    for (NodeId v = 0; v < n; ++v) residual += std::abs(next[v] - scores[v]);
    scores.swap(next);
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  double total = 0.0;
  for (double s : scores) total += s;
  if (total > 0.0) {
    for (double& s : scores) s /= total;
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
