#ifndef SCHOLARRANK_RANK_HITS_H_
#define SCHOLARRANK_RANK_HITS_H_

#include <string>

#include "graph/graph_access.h"
#include "rank/kernel/kernel_options.h"
#include "rank/ranker.h"

namespace scholar {

/// HITS (Kleinberg, 1999) on the citation digraph. Authority of an article
/// is the sum of the hub scores of its citers; hub of an article is the sum
/// of the authorities it cites. Scores are L2-normalized each round. The
/// ranker reports authority scores (the natural notion of article
/// importance).
struct HitsOptions {
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// Worker threads for the gather passes: 0 = hardware concurrency,
  /// 1 = serial. Bit-identical results at every setting.
  int threads = 0;
  /// Iteration-engine variant knobs (SIMD / precision / CSR layout /
  /// adaptive convergence), applied to both gather orientations; see
  /// rank/kernel/kernel_options.h.
  kernel::KernelOptions kernel;
};

class HitsRanker : public Ranker {
 public:
  explicit HitsRanker(HitsOptions options = {});

  std::string name() const override { return "hits"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;
  bool SupportsSnapshotViews() const override { return true; }

  /// Full output including hub scores, for callers that want both sides.
  struct HubsAndAuthorities {
    std::vector<double> authorities;
    std::vector<double> hubs;
    int iterations = 0;
    bool converged = true;
  };
  /// `max_threads` caps options().threads for this call (0 = no cap); the
  /// ensemble uses the cap when it already parallelizes across snapshots.
  Result<HubsAndAuthorities> RankBoth(const CitationGraph& graph,
                                      int max_threads = 0) const;

 private:
  /// The iteration, written against GraphAccess so full graphs and
  /// zero-copy snapshot views share one code path. `initial_authorities`
  /// (optional) warm-starts the alternation: the authority vector is
  /// seeded from it and the hub vector from one out-CSR gather over it,
  /// so both sides start near the previous fixed point. The principal
  /// eigenvector the power method converges to is unchanged.
  Result<HubsAndAuthorities> RankBothOnAccess(
      const GraphAccess& a, size_t workers,
      const std::vector<double>* initial_authorities = nullptr) const;

  HitsOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_HITS_H_
