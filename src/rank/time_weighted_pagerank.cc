#include "rank/time_weighted_pagerank.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace scholar {

TimeWeightedPageRank::TimeWeightedPageRank(TwprOptions options)
    : options_(options) {}

std::vector<double> TimeWeightedPageRank::ComputeEdgeWeights(
    const CitationGraph& graph, double sigma) {
  std::vector<double> weights(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const Year tu = graph.year(u);
    const EdgeId begin = graph.out_offsets()[u];
    const EdgeId end = graph.out_offsets()[u + 1];
    for (EdgeId e = begin; e < end; ++e) {
      const Year tv = graph.year(graph.out_neighbors()[e]);
      const double gap = std::max(0, tu - tv);
      weights[e] = std::exp(-sigma * gap);
    }
  }
  return weights;
}

std::vector<double> TimeWeightedPageRank::ComputeRecencyJump(
    const CitationGraph& graph, double rho, Year now) {
  const size_t n = graph.num_nodes();
  std::vector<double> jump(n);
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const double age = std::max(0, now - graph.year(v));
    jump[v] = std::exp(-rho * age);
    total += jump[v];
  }
  if (total > 0.0) {
    for (double& j : jump) j /= total;
  }
  return jump;
}

Result<RankResult> TimeWeightedPageRank::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0, got " +
                                   std::to_string(options_.sigma));
  }
  if (options_.recency_jump && options_.rho < 0.0) {
    return Status::InvalidArgument("rho must be >= 0, got " +
                                   std::to_string(options_.rho));
  }
  const CitationGraph& g = *ctx.graph;
  std::vector<double> weights = ComputeEdgeWeights(g, options_.sigma);
  std::vector<double> jump;
  if (options_.recency_jump && g.num_nodes() > 0) {
    jump = ComputeRecencyJump(g, options_.rho, ctx.EffectiveNow());
  }
  const std::vector<double> no_initial;
  return WeightedPowerIteration(
      g, weights, jump, options_.power,
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial);
}

}  // namespace scholar
