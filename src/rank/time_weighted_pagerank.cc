#include "rank/time_weighted_pagerank.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/parallel_for.h"

namespace scholar {

namespace {

/// Chunk size of the per-node sweeps; fixed so chunked reductions are
/// thread-count independent (see util/parallel_for.h).
constexpr size_t kNodeGrain = 2048;

}  // namespace

TimeWeightedPageRank::TimeWeightedPageRank(TwprOptions options)
    : options_(options) {}

std::vector<double> TimeWeightedPageRank::ComputeEdgeWeights(
    const CitationGraph& graph, double sigma, ThreadPool* pool) {
  std::vector<double> weights(graph.num_edges());
  ParallelFor(pool, graph.num_nodes(), kNodeGrain,
              [&](size_t begin, size_t end) {
    for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
      const Year tu = graph.year(u);
      const EdgeId first = graph.out_offsets()[u];
      const EdgeId last = graph.out_offsets()[u + 1];
      for (EdgeId e = first; e < last; ++e) {
        const Year tv = graph.year(graph.out_neighbors()[e]);
        const double gap = std::max(0, tu - tv);
        weights[e] = std::exp(-sigma * gap);
      }
    }
  });
  return weights;
}

std::vector<double> TimeWeightedPageRank::ComputeRecencyJump(
    const CitationGraph& graph, double rho, Year now, ThreadPool* pool) {
  const size_t n = graph.num_nodes();
  std::vector<double> jump(n);
  const size_t chunks = ChunkCount(n, kNodeGrain);
  std::vector<double> partial(chunks, 0.0);
  ParallelForChunks(pool, n, kNodeGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double part = 0.0;
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      const double age = std::max(0, now - graph.year(v));
      jump[v] = std::exp(-rho * age);
      part += jump[v];
    }
    partial[chunk] = part;
  });
  double total = 0.0;
  for (size_t c = 0; c < chunks; ++c) total += partial[c];
  if (total > 0.0) {
    const double inv_total = 1.0 / total;
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
        jump[v] *= inv_total;
      }
    });
  }
  return jump;
}

Result<RankResult> TimeWeightedPageRank::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0, got " +
                                   std::to_string(options_.sigma));
  }
  if (options_.recency_jump && options_.rho < 0.0) {
    return Status::InvalidArgument("rho must be >= 0, got " +
                                   std::to_string(options_.rho));
  }
  const CitationGraph& g = *ctx.graph;
  PowerIterationOptions power = options_.power;
  power.threads = static_cast<int>(EffectiveThreads(power.threads, ctx));

  // The weight pipeline and the solver share one scratch (and therefore
  // one worker pool): either the caller's or a call-local one.
  PowerIterationScratch local_scratch;
  PowerIterationScratch* scratch =
      ctx.scratch != nullptr ? ctx.scratch : &local_scratch;
  ThreadPool* pool = scratch->PoolFor(static_cast<size_t>(power.threads));

  std::vector<double> weights = ComputeEdgeWeights(g, options_.sigma, pool);
  std::vector<double> jump;
  if (options_.recency_jump && g.num_nodes() > 0) {
    jump = ComputeRecencyJump(g, options_.rho, ctx.EffectiveNow(), pool);
  }
  const std::vector<double> no_initial;
  return WeightedPowerIteration(
      g, weights, jump, power,
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial,
      scratch);
}

}  // namespace scholar
