#include "rank/time_weighted_pagerank.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/temporal_csr.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace scholar {

namespace {

/// Chunk size of the per-node sweeps; fixed so chunked reductions are
/// thread-count independent (see util/parallel_for.h).
constexpr size_t kNodeGrain = 2048;

}  // namespace

TimeWeightedPageRank::TimeWeightedPageRank(TwprOptions options)
    : options_(options) {}

std::vector<double> TimeWeightedPageRank::ComputeEdgeWeights(
    const CitationGraph& graph, double sigma, ThreadPool* pool) {
  std::vector<double> weights(graph.num_edges());
  ParallelFor(pool, graph.num_nodes(), kNodeGrain,
              [&](size_t begin, size_t end) {
    for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
      const Year tu = graph.year(u);
      const EdgeId first = graph.out_offsets()[u];
      const EdgeId last = graph.out_offsets()[u + 1];
      for (EdgeId e = first; e < last; ++e) {
        const Year tv = graph.year(graph.out_neighbors()[e]);
        const double gap = std::max(0, tu - tv);
        weights[e] = std::exp(-sigma * gap);
      }
    }
  });
  return weights;
}

std::vector<double> TimeWeightedPageRank::ComputeInEdgeWeights(
    const CitationGraph& graph, double sigma, ThreadPool* pool) {
  std::vector<double> weights(graph.num_edges());
  ParallelFor(pool, graph.num_nodes(), kNodeGrain,
              [&](size_t begin, size_t end) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      const Year tv = graph.year(v);
      const EdgeId first = graph.in_offsets()[v];
      const EdgeId last = graph.in_offsets()[v + 1];
      for (EdgeId p = first; p < last; ++p) {
        const Year tu = graph.year(graph.in_neighbors()[p]);
        const double gap = std::max(0, tu - tv);
        weights[p] = std::exp(-sigma * gap);
      }
    }
  });
  return weights;
}

std::vector<double> TimeWeightedPageRank::ComputeRecencyJump(
    const CitationGraph& graph, double rho, Year now, ThreadPool* pool) {
  return ComputeRecencyJump(graph.years().data(), graph.num_nodes(), rho, now,
                            pool);
}

std::vector<double> TimeWeightedPageRank::ComputeRecencyJump(
    const Year* years, size_t n, double rho, Year now, ThreadPool* pool) {
  std::vector<double> jump(n);
  const size_t chunks = ChunkCount(n, kNodeGrain);
  std::vector<double> partial(chunks, 0.0);
  ParallelForChunks(pool, n, kNodeGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double part = 0.0;
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      const double age = std::max(0, now - years[v]);
      jump[v] = std::exp(-rho * age);
      part += jump[v];
    }
    partial[chunk] = part;
  });
  double total = 0.0;
  for (size_t c = 0; c < chunks; ++c) total += partial[c];
  if (total > 0.0) {
    const double inv_total = 1.0 / total;
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
        jump[v] *= inv_total;
      }
    });
  }
  return jump;
}

const TwprWeightCache::Weights& TwprWeightCache::GetOrCompute(
    const CitationGraph& graph, double sigma, ThreadPool* pool) {
  MutexLock lock(mu_);
  if (!ready_) {
    weights_.out_order =
        TimeWeightedPageRank::ComputeEdgeWeights(graph, sigma, pool);
    weights_.in_order =
        TimeWeightedPageRank::ComputeInEdgeWeights(graph, sigma, pool);
    graph_ = &graph;
    sigma_ = sigma;
    ready_ = true;
  } else {
    // One cache serves one (graph, sigma) pair; exact compare is the
    // contract (same double every call).  NOLINT(float-compare)
    SCHOLAR_CHECK(graph_ == &graph && sigma_ == sigma);  // NOLINT(float-compare)
  }
  return weights_;
}

Result<RankResult> TimeWeightedPageRank::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false,
                                        /*requires_venues=*/false,
                                        /*accepts_views=*/true));
  if (options_.sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0, got " +
                                   std::to_string(options_.sigma));
  }
  if (options_.recency_jump && options_.rho < 0.0) {
    return Status::InvalidArgument("rho must be >= 0, got " +
                                   std::to_string(options_.rho));
  }
  PowerIterationOptions power = options_.power;
  power.threads = static_cast<int>(EffectiveThreads(power.threads, ctx));

  // The weight pipeline and the solver share one scratch (and therefore
  // one worker pool): either the caller's or a call-local one.
  PowerIterationScratch local_scratch;
  PowerIterationScratch* scratch =
      ctx.scratch != nullptr ? ctx.scratch : &local_scratch;
  ThreadPool* pool = scratch->PoolFor(static_cast<size_t>(power.threads));
  const std::vector<double> no_initial;
  const std::vector<double>& initial =
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial;

  if (ctx.view != nullptr) {
    const SnapshotView& view = *ctx.view;
    if (view.num_nodes() == 0) return RankResult{};
    // Decay weights depend only on year gaps, so the full-parent arrays are
    // valid for every snapshot: fetch them from the shared cache (computed
    // at most once per ensemble) or compute locally for a one-off call.
    TwprWeightCache local_cache;
    TwprWeightCache& cache =
        ctx.twpr_cache != nullptr ? *ctx.twpr_cache : local_cache;
    const TwprWeightCache::Weights& weights = cache.GetOrCompute(
        view.temporal_csr()->sorted_graph(), options_.sigma, pool);
    std::vector<double> jump;
    if (options_.recency_jump) {
      jump = ComputeRecencyJump(view.parent_years().data(), view.num_nodes(),
                                options_.rho, ctx.EffectiveNow(), pool);
    }
    return WeightedPowerIterationOnView(view, weights.out_order,
                                        weights.in_order, jump, power, initial,
                                        scratch);
  }

  const CitationGraph& g = *ctx.graph;
  std::vector<double> weights = ComputeEdgeWeights(g, options_.sigma, pool);
  std::vector<double> jump;
  if (options_.recency_jump && g.num_nodes() > 0) {
    jump = ComputeRecencyJump(g, options_.rho, ctx.EffectiveNow(), pool);
  }
  return WeightedPowerIteration(g, weights, jump, power, initial, scratch);
}

}  // namespace scholar
