#ifndef SCHOLARRANK_RANK_MONTE_CARLO_H_
#define SCHOLARRANK_RANK_MONTE_CARLO_H_

#include <cstdint>
#include <string>

#include "rank/ranker.h"

namespace scholar {

/// Monte Carlo PageRank (Avrachenkov et al., 2007, "Monte Carlo methods in
/// PageRank computation"): launch R random walks from every article; each
/// step follows a uniformly random reference with probability d and
/// terminates otherwise (dangling articles always terminate). The visit
/// frequency of every node estimates its PageRank up to normalization.
///
/// Why it is here: a single pass over R·n short walks approximates the
/// ranking without any convergence loop, walks parallelize trivially, and
/// accuracy degrades gracefully with R — the standard cheap-refresh path
/// for web-scale graphs. Top ranks converge first (high-score nodes are
/// visited most), so small R already orders the head of the ranking well.
struct MonteCarloOptions {
  /// Walks started per article. Estimation error of a node's score scales
  /// ~1/sqrt(R·n·score).
  int walks_per_node = 10;
  /// Continuation probability (PageRank damping).
  double damping = 0.85;
  uint64_t seed = 99;
};

class MonteCarloPageRankRanker : public Ranker {
 public:
  explicit MonteCarloPageRankRanker(MonteCarloOptions options = {});

  std::string name() const override { return "pagerank_mc"; }

  const MonteCarloOptions& options() const { return options_; }

 private:
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  MonteCarloOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_MONTE_CARLO_H_
