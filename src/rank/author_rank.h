#ifndef SCHOLARRANK_RANK_AUTHOR_RANK_H_
#define SCHOLARRANK_RANK_AUTHOR_RANK_H_

#include <vector>

#include "graph/bipartite.h"
#include "util/status.h"

namespace scholar {

/// How a scholar's article scores are folded into one author score.
enum class AuthorAggregation {
  /// Sum of article scores (rewards volume and impact).
  kSum,
  /// Mean of article scores (pure per-article quality).
  kMean,
  /// Sum of per-article shares: each article's score is split equally among
  /// its coauthors first. Avoids double-counting heavily coauthored work;
  /// the default.
  kFractionalSum,
  /// h-index-style: the largest h such that the author has h articles with
  /// score-percentile >= 1 - h/1000 (a smooth stand-in for citation counts
  /// in percentile space).
  kHLike,
};

/// Derives author-level scores from article-level scores — the "ranking
/// scholars" companion application of article ranking. `article_scores`
/// must cover authors.num_papers() articles. Returns one score per author
/// id (authors with no papers score 0).
Result<std::vector<double>> RankAuthors(const PaperAuthors& authors,
                                        const std::vector<double>& article_scores,
                                        AuthorAggregation aggregation);

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_AUTHOR_RANK_H_
