#include "rank/ranker.h"

#include <algorithm>
#include <numeric>

#include "graph/temporal_csr.h"
#include "util/parallel_for.h"

namespace scholar {

size_t RankContext::NumNodes() const {
  if (graph != nullptr) return graph->num_nodes();
  return view != nullptr ? view->num_nodes() : 0;
}

Year RankContext::EffectiveNow() const {
  if (now_year != kUnknownYear) return now_year;
  return graph != nullptr ? graph->max_year() : view->max_year();
}

Ranker::~Ranker() = default;

namespace {

/// Node ids sorted by descending score, ties by ascending id.
std::vector<NodeId> SortedByScore(const std::vector<double>& scores) {
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

std::vector<uint32_t> ScoresToRanks(const std::vector<double>& scores) {
  std::vector<NodeId> order = SortedByScore(scores);
  std::vector<uint32_t> ranks(scores.size());
  for (uint32_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

std::vector<double> RankPercentiles(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<double> pct(n, 0.0);
  if (n == 0) return pct;
  std::vector<NodeId> order = SortedByScore(scores);
  for (size_t r = 0; r < n; ++r) {
    pct[order[r]] = static_cast<double>(n - r) / static_cast<double>(n);
  }
  return pct;
}

std::vector<double> MidrankPercentiles(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<double> pct(n, 0.0);
  if (n == 0) return pct;
  std::vector<NodeId> order = SortedByScore(scores);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    // Exact equality is the contract here: scores are bit-identical at any
    // thread count, so ties are exact ties.  NOLINT(float-compare)
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;  // NOLINT(float-compare)
    // 1-based positions i+1 .. j+1 share their average position.
    const double mid_pos = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const double shared = (static_cast<double>(n) - mid_pos + 1.0) / static_cast<double>(n);
    for (size_t t = i; t <= j; ++t) pct[order[t]] = shared;
    i = j + 1;
  }
  return pct;
}

std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k) {
  k = std::min(k, scores.size());  // clamp: k > n just means "all of them"
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  // Partial selection: O(n + k log k) beats the full sort when k << n,
  // which is the common case (top-50 of a multi-million-article corpus).
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(k), order.end(),
                    [&](NodeId a, NodeId b) {
                      // Deterministic tie-break; exact compare is intended
                      // under the bit-identity contract.
                      if (scores[a] != scores[b]) return scores[a] > scores[b];  // NOLINT(float-compare)
                      return a < b;
                    });
  order.resize(k);
  return order;
}

Status ValidateContext(const RankContext& ctx, bool requires_authors,
                       bool requires_venues, bool accepts_views) {
  if (ctx.graph == nullptr && ctx.view == nullptr) {
    return Status::InvalidArgument("RankContext.graph is null");
  }
  if (ctx.graph != nullptr && ctx.view != nullptr) {
    return Status::InvalidArgument(
        "RankContext sets both graph and view; set exactly one");
  }
  if (ctx.view != nullptr && !accepts_views) {
    return Status::InvalidArgument(
        "this ranker does not support snapshot views (RankContext.view)");
  }
  const size_t n = ctx.NumNodes();
  if (requires_authors) {
    if (ctx.authors == nullptr) {
      return Status::InvalidArgument(
          "this ranker requires a paper-author map (RankContext.authors)");
    }
    if (ctx.authors->num_papers() != n) {
      return Status::InvalidArgument(
          "author map covers " + std::to_string(ctx.authors->num_papers()) +
          " papers but graph has " + std::to_string(n));
    }
  }
  if (requires_venues) {
    if (ctx.venues == nullptr) {
      return Status::InvalidArgument(
          "this ranker requires per-article venues (RankContext.venues)");
    }
    if (ctx.venues->size() != n) {
      return Status::InvalidArgument(
          "venue vector covers " + std::to_string(ctx.venues->size()) +
          " articles but graph has " + std::to_string(n));
    }
  }
  if (ctx.initial_scores != nullptr && ctx.initial_scores->size() != n) {
    return Status::InvalidArgument(
        "initial_scores has " + std::to_string(ctx.initial_scores->size()) +
        " entries but graph has " + std::to_string(n));
  }
  return Status::OK();
}

size_t EffectiveThreads(int option_threads, const RankContext& ctx) {
  size_t threads = ResolveThreads(option_threads);
  if (ctx.max_threads > 0 &&
      static_cast<size_t>(ctx.max_threads) < threads) {
    threads = static_cast<size_t>(ctx.max_threads);
  }
  return threads;
}

}  // namespace scholar
