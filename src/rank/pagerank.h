#ifndef SCHOLARRANK_RANK_PAGERANK_H_
#define SCHOLARRANK_RANK_PAGERANK_H_

#include <string>
#include <vector>

#include "rank/ranker.h"

namespace scholar {

/// Shared knobs of all power-iteration rankers.
struct PowerIterationOptions {
  /// Probability of following a citation (1 - teleport probability).
  double damping = 0.85;
  /// Stop when the L1 change between successive score vectors drops below
  /// this.
  double tolerance = 1e-10;
  int max_iterations = 200;
};

/// Core solver shared by PageRank, TWPR and CiteRank.
///
/// Computes the stationary distribution of the damped random walk
///
///   s <- d * P^T s + (d * dangling_mass + (1 - d)) * jump
///
/// where row u of P distributes u's score over its references proportionally
/// to `edge_weights` (aligned with graph.out_neighbors(); pass empty for
/// uniform weights), and `jump` is a probability vector (pass empty for
/// uniform). A node whose weighted out-degree is zero is treated as
/// dangling: its entire score is redistributed through `jump`.
///
/// Errors: negative edge weights, wrong array sizes, or a `jump` that does
/// not sum to ~1.
///
/// `initial_scores` (optional, pass empty for the uniform default) seeds the
/// iteration — e.g. with the scores of a smaller snapshot of the same graph
/// — which reduces iteration counts without changing the fixed point. It is
/// L1-renormalized internally; non-positive-mass inputs fall back to
/// uniform.
Result<RankResult> WeightedPowerIteration(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores = {});

/// Pads a score vector from a smaller prefix-snapshot of a graph up to
/// `new_num_nodes` (new articles get the mean existing score) — the warm
/// start for incremental re-ranking after a corpus grows. Returns a uniform
/// vector when `old_scores` is empty or has non-positive mass.
std::vector<double> ExtendScoresForGrownGraph(
    const std::vector<double>& old_scores, size_t new_num_nodes);

/// Classic PageRank on the citation network (score flows from a paper to its
/// references). The canonical structural baseline in the paper.
class PageRankRanker : public Ranker {
 public:
  explicit PageRankRanker(PowerIterationOptions options = {})
      : options_(options) {}

  std::string name() const override { return "pagerank"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  const PowerIterationOptions& options() const { return options_; }

 private:
  PowerIterationOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_PAGERANK_H_
