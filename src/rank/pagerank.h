#ifndef SCHOLARRANK_RANK_PAGERANK_H_
#define SCHOLARRANK_RANK_PAGERANK_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_access.h"
#include "rank/kernel/gather_engine.h"
#include "rank/kernel/kernel_options.h"
#include "rank/ranker.h"
#include "util/thread_pool.h"

namespace scholar {

/// Shared knobs of all power-iteration rankers.
struct PowerIterationOptions {
  /// Probability of following a citation (1 - teleport probability).
  double damping = 0.85;
  /// Stop when the L1 change between successive score vectors drops below
  /// this.
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// Worker threads for the pull-based iteration: 0 (default) = hardware
  /// concurrency, 1 = serial, N = exactly N. Scores are bit-identical at
  /// every setting (see the determinism note on WeightedPowerIteration).
  int threads = 0;
  /// Iteration-engine variant knobs (SIMD / precision / CSR layout /
  /// adaptive convergence); see rank/kernel/kernel_options.h.
  kernel::KernelOptions kernel;
};

/// Reusable solver state for WeightedPowerIteration: the O(n + m) work
/// buffers plus the lazily built worker pool. One Rank call needs one
/// scratch; the ensemble runs k snapshot ranks per call and shares a single
/// scratch across them, so the weight/score buffers, the gather engine and
/// the pool are allocated once instead of k times. Not thread-safe — never share one
/// scratch between concurrent solver calls.
class PowerIterationScratch {
 public:
  PowerIterationScratch() = default;

  /// Helper pool sized for `workers` total threads (the calling thread
  /// participates, so the pool holds workers - 1 helpers). Returns nullptr
  /// when workers <= 1 (serial). Rebuilt only when the size changes.
  ThreadPool* PoolFor(size_t workers);

  /// Buffers, exposed for the solver (and the TWPR weight pipeline).
  std::vector<double> in_weights;   // raw edge weights in in-edge order
  std::vector<double> row_weight;   // per-source *inverted* weighted degree
  std::vector<double> contrib;      // per-source gather term, per iteration
  std::vector<double> next;         // double buffer for the score vector
  std::vector<double> partial;      // ordered per-chunk reduction terms
  std::vector<uint8_t> dangling;    // 1 = weighted out-degree is zero
  std::vector<EdgeId> cursor;       // in-CSR fill cursor for the scatter
  ViewRowEnds view_rows;            // per-row prefix limits (view solver)
  kernel::GatherEngine engine;      // the iteration engine, re-Init per solve

 private:
  std::unique_ptr<ThreadPool> pool_;
  size_t pool_workers_ = 0;
};

/// Core solver shared by PageRank, TWPR and CiteRank.
///
/// Computes the stationary distribution of the damped random walk
///
///   s <- d * P^T s + (d * dangling_mass + (1 - d)) * jump
///
/// where row u of P distributes u's score over its references proportionally
/// to `edge_weights` (aligned with graph.out_neighbors(); pass empty for
/// uniform weights), and `jump` is a probability vector (pass empty for
/// uniform). A node whose weighted out-degree is zero is treated as
/// dangling: its entire score is redistributed through `jump`.
///
/// Parallel execution: the iteration is a pull-based gather over the
/// in-CSR, executed by the kernel::GatherEngine selected through
/// `options.kernel` (SIMD level, score precision, CSR compression, hub
/// layout, adaptive convergence). Each round stages the per-source term
/// `contrib[u] = inv_row_weight[u] * scores[u]`, and node v sums
/// `w_in[p] * contrib[in_neighbor(p)]` over its own in-edges (raw weights
/// scattered once into in-edge order; no per-edge array at all for uniform
/// weights) — every write goes to v's slot only: no atomics, no
/// contention. Results are **bit-identical at any thread count**: each node
/// reduces its in-edges through the engine's fixed per-row addition tree,
/// and the dangling mass and L1 residual are per-chunk partial sums over a
/// thread-count-independent chunk geometry, combined in chunk-index order.
///
/// Errors: negative edge weights, wrong array sizes, or a `jump` that does
/// not sum to ~1.
///
/// `initial_scores` (optional, pass empty for the uniform default) seeds the
/// iteration — e.g. with the scores of a smaller snapshot of the same graph
/// — which reduces iteration counts without changing the fixed point. It is
/// L1-renormalized internally; non-positive-mass inputs fall back to
/// uniform.
///
/// `scratch` (optional) supplies reusable buffers and the worker pool; pass
/// one when calling the solver repeatedly (the ensemble does).
Result<RankResult> WeightedPowerIteration(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores = {},
    PowerIterationScratch* scratch = nullptr);

/// WeightedPowerIteration on a zero-copy temporal snapshot.
///
/// Same fixed point and the same bit-exact arithmetic as running
/// WeightedPowerIteration on the materialized snapshot (ExtractSnapshot of
/// the view's sorted parent graph), with no per-snapshot O(m) state: both
/// paths stage `contrib[u] = inv_row[u] * scores[u]` and gather
/// `in_edge_weights[p] * contrib[source]` through the same engine
/// primitives — IEEE arithmetic is deterministic, so the per-row sums are
/// the very doubles the full-graph path computes. Only an O(V)
/// inverted-row-weight array and the O(V) row prefix limits are
/// per-snapshot; the weight arrays are shared, read-only,
/// full-parent-CSR-sized.
///
/// `out_edge_weights` / `in_edge_weights` are the same weights in out-edge
/// and in-edge order respectively, sized to the *parent* graph's edge count
/// (both empty = uniform). `jump` and `initial_scores` are view-sized
/// (view-local node ids).
Result<RankResult> WeightedPowerIterationOnView(
    const SnapshotView& view, const std::vector<double>& out_edge_weights,
    const std::vector<double>& in_edge_weights, const std::vector<double>& jump,
    const PowerIterationOptions& options,
    const std::vector<double>& initial_scores = {},
    PowerIterationScratch* scratch = nullptr);

/// Pads a score vector from a smaller prefix-snapshot of a graph up to
/// `new_num_nodes` (new articles get the mean existing score) — the warm
/// start for incremental re-ranking after a corpus grows. Returns a uniform
/// vector when `old_scores` is empty or has non-positive mass.
std::vector<double> ExtendScoresForGrownGraph(
    const std::vector<double>& old_scores, size_t new_num_nodes);

/// Classic PageRank on the citation network (score flows from a paper to its
/// references). The canonical structural baseline in the paper.
class PageRankRanker : public Ranker {
 public:
  explicit PageRankRanker(PowerIterationOptions options = {})
      : options_(options) {}

  std::string name() const override { return "pagerank"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;
  bool SupportsSnapshotViews() const override { return true; }

  const PowerIterationOptions& options() const { return options_; }

 private:
  PowerIterationOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_PAGERANK_H_
