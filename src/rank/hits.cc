#include "rank/hits.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace scholar {
namespace {

/// L2-normalizes in place; returns the norm before normalization.
double NormalizeL2(std::vector<double>* v) {
  double sq = 0.0;
  for (double x : *v) sq += x * x;
  double norm = std::sqrt(sq);
  if (norm > 0.0) {
    for (double& x : *v) x /= norm;
  }
  return norm;
}

}  // namespace

HitsRanker::HitsRanker(HitsOptions options) : options_(options) {}

Result<HitsRanker::HubsAndAuthorities> HitsRanker::RankBoth(
    const CitationGraph& g) const {
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = g.num_nodes();
  HubsAndAuthorities out;
  out.authorities.assign(n, n > 0 ? 1.0 / std::sqrt(static_cast<double>(n))
                                  : 0.0);
  out.hubs = out.authorities;
  if (n == 0) return out;

  std::vector<double> prev_auth(n);
  out.converged = false;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    prev_auth = out.authorities;
    // Authority(v) = sum of hub(u) over citers u.
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (NodeId u : g.Citers(v)) acc += out.hubs[u];
      out.authorities[v] = acc;
    }
    NormalizeL2(&out.authorities);
    // Hub(u) = sum of authority(v) over references v.
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0.0;
      for (NodeId v : g.References(u)) acc += out.authorities[v];
      out.hubs[u] = acc;
    }
    NormalizeL2(&out.hubs);

    double residual = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      residual += std::abs(out.authorities[v] - prev_auth[v]);
    }
    out.iterations = iter;
    if (residual < options_.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

Result<RankResult> HitsRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  SCHOLAR_ASSIGN_OR_RETURN(HubsAndAuthorities both, RankBoth(*ctx.graph));
  RankResult result;
  result.scores = std::move(both.authorities);
  result.iterations = both.iterations;
  result.converged = both.converged;
  return result;
}

}  // namespace scholar
