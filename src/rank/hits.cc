#include "rank/hits.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rank/kernel/gather_engine.h"
#include "util/parallel_for.h"

namespace scholar {
namespace {

/// Chunk size of the per-node gather loops; fixed so the chunked norm and
/// residual reductions are thread-count independent.
constexpr size_t kNodeGrain = 2048;

/// Sums partial[0..chunks) in index order.
double OrderedSum(const std::vector<double>& partial, size_t chunks) {
  double total = 0.0;
  for (size_t c = 0; c < chunks; ++c) total += partial[c];
  return total;
}

/// L2-normalizes in place (parallel, deterministic); returns the norm
/// before normalization.
double NormalizeL2(std::vector<double>* v, ThreadPool* pool,
                   std::vector<double>* partial) {
  const size_t n = v->size();
  const size_t chunks = ChunkCount(n, kNodeGrain);
  ParallelForChunks(pool, n, kNodeGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double sq = 0.0;
    for (size_t i = begin; i < end; ++i) sq += (*v)[i] * (*v)[i];
    (*partial)[chunk] = sq;
  });
  const double norm = std::sqrt(OrderedSum(*partial, chunks));
  if (norm > 0.0) {
    const double inv = 1.0 / norm;
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) (*v)[i] *= inv;
    });
  }
  return norm;
}

}  // namespace

HitsRanker::HitsRanker(HitsOptions options) : options_(options) {}

Result<HitsRanker::HubsAndAuthorities> HitsRanker::RankBoth(
    const CitationGraph& g, int max_threads) const {
  size_t workers = ResolveThreads(options_.threads);
  if (max_threads > 0 && static_cast<size_t>(max_threads) < workers) {
    workers = static_cast<size_t>(max_threads);
  }
  return RankBothOnAccess(AccessOf(g), workers);
}

Result<HitsRanker::HubsAndAuthorities> HitsRanker::RankBothOnAccess(
    const GraphAccess& g, size_t workers,
    const std::vector<double>* initial_authorities) const {
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = g.num_nodes;
  HubsAndAuthorities out;
  out.authorities.assign(n, n > 0 ? 1.0 / std::sqrt(static_cast<double>(n))
                                  : 0.0);
  out.hubs = out.authorities;
  if (n == 0) return out;

  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();

  const size_t chunks = ChunkCount(n, kNodeGrain);
  std::vector<double> partial(chunks, 0.0);

  // Two engines, one per gather orientation: authorities pull hub scores
  // over the in-CSR, hubs pull authorities over the out-CSR. Both run the
  // variant selected by options_.kernel.
  kernel::GatherEngine auth_engine;
  kernel::GatherEngine hub_engine;
  SCHOLAR_RETURN_NOT_OK(auth_engine.Init(g, kernel::GatherDirection::kInEdges,
                                         options_.kernel, pool));
  SCHOLAR_RETURN_NOT_OK(hub_engine.Init(g, kernel::GatherDirection::kOutEdges,
                                        options_.kernel, pool));
  const auto copy_rows = [&](const double* gathered, std::vector<double>* dst) {
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) (*dst)[v] = gathered[v];
    });
  };

  if (initial_authorities != nullptr && initial_authorities->size() == n) {
    // Warm start: begin the alternation at the previous authorities and a
    // hub vector gathered from them, instead of the uniform direction. The
    // power method still converges to the principal eigenvector — a seed
    // only shortens the walk there (unless it is degenerate, in which case
    // NormalizeL2 leaves the uniform fallback in place).
    std::vector<double> seed = *initial_authorities;
    if (NormalizeL2(&seed, pool, &partial) > 0.0) {
      out.authorities = std::move(seed);
      copy_rows(hub_engine.Gather(out.authorities.data(), nullptr), &out.hubs);
      // A zero norm is returned exactly, never approximately.  NOLINT(float-compare)
      if (NormalizeL2(&out.hubs, pool, &partial) == 0.0) {  // NOLINT(float-compare)
        out.hubs.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
      }
    }
  }
  std::vector<double> prev_auth(n);
  out.converged = false;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    prev_auth = out.authorities;
    // Authority(v) = sum of hub(u) over citers u — a pull over the in-CSR;
    // each node writes only its own slot.
    copy_rows(auth_engine.Gather(out.hubs.data(), nullptr), &out.authorities);
    NormalizeL2(&out.authorities, pool, &partial);
    // Hub(u) = sum of authority(v) over references v — a pull over the
    // out-CSR.
    copy_rows(hub_engine.Gather(out.authorities.data(), nullptr), &out.hubs);
    NormalizeL2(&out.hubs, pool, &partial);

    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double part = 0.0;
      for (size_t v = begin; v < end; ++v) {
        part += std::abs(out.authorities[v] - prev_auth[v]);
      }
      partial[chunk] = part;
    });
    const double residual = OrderedSum(partial, chunks);
    out.iterations = iter;
    if (residual < options_.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

Result<RankResult> HitsRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false,
                                        /*requires_venues=*/false,
                                        /*accepts_views=*/true));
  const size_t workers = EffectiveThreads(options_.threads, ctx);
  HubsAndAuthorities both;
  if (ctx.view != nullptr) {
    ViewRowEnds rows;
    const GraphAccess a = AccessOf(*ctx.view, &rows);
    SCHOLAR_ASSIGN_OR_RETURN(both,
                             RankBothOnAccess(a, workers, ctx.initial_scores));
  } else {
    SCHOLAR_ASSIGN_OR_RETURN(
        both,
        RankBothOnAccess(AccessOf(*ctx.graph), workers, ctx.initial_scores));
  }
  RankResult result;
  result.scores = std::move(both.authorities);
  result.iterations = both.iterations;
  result.converged = both.converged;
  return result;
}

}  // namespace scholar
