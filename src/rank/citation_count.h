#ifndef SCHOLARRANK_RANK_CITATION_COUNT_H_
#define SCHOLARRANK_RANK_CITATION_COUNT_H_

#include <string>

#include "rank/ranker.h"

namespace scholar {

/// Raw citation count (in-degree). The simplest and most widely used
/// query-independent baseline.
class CitationCountRanker : public Ranker {
 public:
  std::string name() const override { return "cc"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;
};

/// Citation count divided by article age in years:
/// score(v) = in_degree(v) / (now - t(v) + 1). A cheap recency correction
/// used as an additional baseline.
class AgeNormalizedCitationCountRanker : public Ranker {
 public:
  std::string name() const override { return "age_cc"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_CITATION_COUNT_H_
