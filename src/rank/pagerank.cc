#include "rank/pagerank.h"

#include <cmath>
#include <string>
#include <utility>

namespace scholar {

std::vector<double> ExtendScoresForGrownGraph(
    const std::vector<double>& old_scores, size_t new_num_nodes) {
  std::vector<double> scores(new_num_nodes, 0.0);
  if (new_num_nodes == 0) return scores;
  double total = 0.0;
  const size_t copied = std::min(old_scores.size(), new_num_nodes);
  for (size_t i = 0; i < copied; ++i) {
    scores[i] = std::max(0.0, old_scores[i]);
    total += scores[i];
  }
  if (total <= 0.0) {
    std::fill(scores.begin(), scores.end(),
              1.0 / static_cast<double>(new_num_nodes));
    return scores;
  }
  const double mean = total / static_cast<double>(copied);
  for (size_t i = copied; i < new_num_nodes; ++i) scores[i] = mean;
  double new_total = total + mean * static_cast<double>(new_num_nodes - copied);
  for (double& s : scores) s /= new_total;
  return scores;
}

Result<RankResult> WeightedPowerIteration(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1), got " +
                                   std::to_string(options.damping));
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!edge_weights.empty() && edge_weights.size() != m) {
    return Status::InvalidArgument(
        "edge_weights size " + std::to_string(edge_weights.size()) +
        " != num_edges " + std::to_string(m));
  }
  if (!jump.empty()) {
    if (jump.size() != n) {
      return Status::InvalidArgument("jump size " +
                                     std::to_string(jump.size()) +
                                     " != num_nodes " + std::to_string(n));
    }
    double sum = 0.0;
    for (double j : jump) {
      if (j < 0.0) return Status::InvalidArgument("negative jump probability");
      sum += j;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("jump vector sums to " +
                                     std::to_string(sum) + ", expected 1");
    }
  }
  if (n == 0) return RankResult{};

  // Per-edge transition probabilities: weight / row sum. Rows whose weights
  // sum to zero are dangling.
  std::vector<double> transition(m);
  std::vector<bool> dangling(n, false);
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId begin = graph.out_offsets()[u];
    const EdgeId end = graph.out_offsets()[u + 1];
    double row_sum = 0.0;
    for (EdgeId e = begin; e < end; ++e) {
      double w = edge_weights.empty() ? 1.0 : edge_weights[e];
      if (w < 0.0) return Status::InvalidArgument("negative edge weight");
      row_sum += w;
    }
    if (row_sum <= 0.0) {
      dangling[u] = true;
      continue;
    }
    for (EdgeId e = begin; e < end; ++e) {
      double w = edge_weights.empty() ? 1.0 : edge_weights[e];
      transition[e] = w / row_sum;
    }
  }

  if (!initial_scores.empty() && initial_scores.size() != n) {
    return Status::InvalidArgument(
        "initial_scores size " + std::to_string(initial_scores.size()) +
        " != num_nodes " + std::to_string(n));
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> scores(n, uniform);
  if (!initial_scores.empty()) {
    double total = 0.0;
    bool valid = true;
    for (double s : initial_scores) {
      if (s < 0.0) {
        valid = false;
        break;
      }
      total += s;
    }
    if (valid && total > 0.0) {
      for (NodeId v = 0; v < n; ++v) scores[v] = initial_scores[v] / total;
    }
  }
  std::vector<double> next(n, 0.0);

  RankResult result;
  result.converged = false;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (dangling[u]) {
        dangling_mass += scores[u];
        continue;
      }
      const double su = scores[u];
      const EdgeId begin = graph.out_offsets()[u];
      const EdgeId end = graph.out_offsets()[u + 1];
      for (EdgeId e = begin; e < end; ++e) {
        next[graph.out_neighbors()[e]] += su * transition[e];
      }
    }
    const double teleport =
        options.damping * dangling_mass + (1.0 - options.damping);
    double residual = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double jv = jump.empty() ? uniform : jump[v];
      double nv = options.damping * next[v] + teleport * jv;
      residual += std::abs(nv - scores[v]);
      next[v] = nv;
    }
    scores.swap(next);
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(scores);
  return result;
}

Result<RankResult> PageRankRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  const std::vector<double> no_initial;
  return WeightedPowerIteration(
      *ctx.graph, /*edge_weights=*/{}, /*jump=*/{}, options_,
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial);
}

}  // namespace scholar
