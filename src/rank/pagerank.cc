#include "rank/pagerank.h"

#include <atomic>
#include <cmath>
#include <string>
#include <utility>

#include "graph/temporal_csr.h"
#include "util/parallel_for.h"

namespace scholar {

namespace {

/// Chunk size of every per-node parallel loop in the solver. Part of the
/// determinism contract: chunk geometry depends on (n, grain) only, never
/// on the thread count, so ordered per-chunk reductions group additions the
/// same way at any parallelism level.
constexpr size_t kNodeGrain = 2048;

/// Sums `partial[0 .. chunks)` in index order (fixed fp grouping).
double OrderedSum(const std::vector<double>& partial, size_t chunks) {
  double total = 0.0;
  for (size_t c = 0; c < chunks; ++c) total += partial[c];
  return total;
}

/// Starting score vector: `initial` L1-normalized, or uniform when it is
/// absent or has non-positive mass.
std::vector<double> BuildInitialScores(size_t n,
                                       const std::vector<double>& initial) {
  std::vector<double> scores(n, 1.0 / static_cast<double>(n));
  if (!initial.empty()) {
    double total = 0.0;
    bool valid = true;
    for (double v : initial) {
      if (v < 0.0) {
        valid = false;
        break;
      }
      total += v;
    }
    if (valid && total > 0.0) {
      for (NodeId v = 0; v < n; ++v) scores[v] = initial[v] / total;
    }
  }
  return scores;
}

/// The damped fixed-point loop shared by the full-graph and view solvers.
/// `inv_row[u]` is the inverted weighted out-degree of source u (0 for
/// dangling rows), `in_weights` the raw per-edge weights in in-edge order
/// (null = uniform). Each round stages `contrib[u] = inv_row[u] * scores[u]`
/// and hands the O(m) gather to the scratch-owned kernel::GatherEngine —
/// both solvers therefore form the per-edge term as
/// `w_in[p] * (inv_row[u] * scores[u])` through identical primitives, which
/// is what keeps the view path bit-identical to the materialized one.
Status RunPowerLoop(const GraphAccess& a, const std::vector<double>& jump,
                    const PowerIterationOptions& options, ThreadPool* pool,
                    PowerIterationScratch& s, std::vector<double>& scores,
                    RankResult& result, const double* inv_row,
                    const double* in_weights) {
  const size_t n = a.num_nodes;
  const double uniform = 1.0 / static_cast<double>(n);
  s.next.resize(n);
  s.contrib.resize(n);
  const size_t chunks = ChunkCount(n, kNodeGrain);
  s.partial.assign(chunks, 0.0);
  SCHOLAR_RETURN_NOT_OK(s.engine.Init(a, kernel::GatherDirection::kInEdges,
                                      options.kernel, pool));

  result.converged = false;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Stage the per-source contributions and collect the dangling mass as
    // ordered per-chunk partials.
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double dangling_part = 0.0;
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        s.contrib[u] = inv_row[u] * scores[u];
        if (s.dangling[u]) dangling_part += scores[u];
      }
      s.partial[chunk] = dangling_part;
    });
    const double dangling_mass = OrderedSum(s.partial, chunks);

    // Phase A: the O(m) pull-gather, in the engine's selected variant.
    const double* gathered = s.engine.Gather(s.contrib.data(), in_weights);

    const double teleport =
        options.damping * dangling_mass + (1.0 - options.damping);

    // Phase B (parallel): damp, teleport, and measure the L1 residual as
    // ordered per-chunk partials. Always full — teleport reaches every
    // node, so even adaptive sweeps apply it exactly.
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double residual_part = 0.0;
      if (jump.empty()) {
        const double teleport_uniform = teleport * uniform;
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          const double nv = options.damping * gathered[v] + teleport_uniform;
          residual_part += std::abs(nv - scores[v]);
          s.next[v] = nv;
        }
      } else {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          const double nv = options.damping * gathered[v] + teleport * jump[v];
          residual_part += std::abs(nv - scores[v]);
          s.next[v] = nv;
        }
      }
      s.partial[chunk] = residual_part;
    });
    const double residual = OrderedSum(s.partial, chunks);

    scores.swap(s.next);
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return Status::OK();
}

/// Shared validation of the option/vector shapes common to both solvers.
Status ValidateSolverArgs(size_t n, const std::vector<double>& jump,
                          const PowerIterationOptions& options,
                          const std::vector<double>& initial_scores) {
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1), got " +
                                   std::to_string(options.damping));
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!jump.empty()) {
    if (jump.size() != n) {
      return Status::InvalidArgument("jump size " +
                                     std::to_string(jump.size()) +
                                     " != num_nodes " + std::to_string(n));
    }
    double sum = 0.0;
    for (double j : jump) {
      if (j < 0.0) return Status::InvalidArgument("negative jump probability");
      sum += j;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("jump vector sums to " +
                                     std::to_string(sum) + ", expected 1");
    }
  }
  if (!initial_scores.empty() && initial_scores.size() != n) {
    return Status::InvalidArgument(
        "initial_scores size " + std::to_string(initial_scores.size()) +
        " != num_nodes " + std::to_string(n));
  }
  return Status::OK();
}

}  // namespace

ThreadPool* PowerIterationScratch::PoolFor(size_t workers) {
  if (workers <= 1) return nullptr;
  const size_t helpers = workers - 1;  // the calling thread participates
  if (pool_ == nullptr || pool_workers_ != helpers) {
    pool_ = std::make_unique<ThreadPool>(helpers);
    pool_workers_ = helpers;
  }
  return pool_.get();
}

std::vector<double> ExtendScoresForGrownGraph(
    const std::vector<double>& old_scores, size_t new_num_nodes) {
  std::vector<double> scores(new_num_nodes, 0.0);
  if (new_num_nodes == 0) return scores;
  double total = 0.0;
  const size_t copied = std::min(old_scores.size(), new_num_nodes);
  for (size_t i = 0; i < copied; ++i) {
    scores[i] = std::max(0.0, old_scores[i]);
    total += scores[i];
  }
  if (total <= 0.0) {
    std::fill(scores.begin(), scores.end(),
              1.0 / static_cast<double>(new_num_nodes));
    return scores;
  }
  const double mean = total / static_cast<double>(copied);
  for (size_t i = copied; i < new_num_nodes; ++i) scores[i] = mean;
  double new_total = total + mean * static_cast<double>(new_num_nodes - copied);
  for (double& s : scores) s /= new_total;
  return scores;
}

Result<RankResult> WeightedPowerIteration(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores,
    PowerIterationScratch* scratch) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  SCHOLAR_RETURN_NOT_OK(ValidateSolverArgs(n, jump, options, initial_scores));
  if (!edge_weights.empty() && edge_weights.size() != m) {
    return Status::InvalidArgument(
        "edge_weights size " + std::to_string(edge_weights.size()) +
        " != num_edges " + std::to_string(m));
  }
  if (n == 0) return RankResult{};

  PowerIterationScratch local_scratch;
  PowerIterationScratch& s = scratch != nullptr ? *scratch : local_scratch;
  ThreadPool* pool = s.PoolFor(ResolveThreads(options.threads));

  const std::vector<EdgeId>& out_offsets = graph.out_offsets();
  const std::vector<NodeId>& out_neighbors = graph.out_neighbors();
  const std::vector<EdgeId>& in_offsets = graph.in_offsets();
  const bool uniform_weights = edge_weights.empty();

  // Pass 1 (parallel): *inverted* weighted out-degree and dangling flag
  // per source (0.0 for dangling rows, so their gather terms vanish
  // exactly).
  s.row_weight.assign(n, 0.0);
  s.dangling.assign(n, 0);
  std::atomic<bool> negative_weight{false};
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    if (uniform_weights) {
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        const double degree =
            static_cast<double>(out_offsets[u + 1] - out_offsets[u]);
        s.dangling[u] = degree <= 0.0 ? 1 : 0;
        s.row_weight[u] = degree <= 0.0 ? 0.0 : 1.0 / degree;
      }
      return;
    }
    for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
      double row = 0.0;
      for (EdgeId e = out_offsets[u]; e < out_offsets[u + 1]; ++e) {
        const double w = edge_weights[e];
        if (w < 0.0) negative_weight.store(true, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone one-way flag; readers check it only after the ParallelFor join, which orders the stores
        row += w;
      }
      s.dangling[u] = row <= 0.0 ? 1 : 0;
      s.row_weight[u] = row <= 0.0 ? 0.0 : 1.0 / row;
    }
  });
  if (negative_weight.load()) {
    return Status::InvalidArgument("negative edge weight");
  }

  // Pass 2 (one serial scatter, weighted only): the *raw* edge weights in
  // in-edge order. Mirrors the reverse-CSR construction of
  // CitationGraph::FromCsr — sources are scanned ascending, so
  // s.in_weights[p] lines up with in_neighbors[p] — and is exact even for
  // multi-edges, which a per-edge binary search would conflate. Uniform
  // weights need no per-edge array at all: the whole O(m) stream the old
  // transition precompute read each sweep is gone.
  const double* in_weights = nullptr;
  if (!uniform_weights) {
    s.in_weights.resize(m);
    s.cursor.assign(in_offsets.begin(), in_offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      for (EdgeId e = out_offsets[u]; e < out_offsets[u + 1]; ++e) {
        s.in_weights[s.cursor[out_neighbors[e]]++] = edge_weights[e];
      }
    }
    in_weights = s.in_weights.data();
  }

  std::vector<double> scores = BuildInitialScores(n, initial_scores);
  RankResult result;
  const GraphAccess a = AccessOf(graph);
  SCHOLAR_RETURN_NOT_OK(RunPowerLoop(a, jump, options, pool, s, scores,
                                     result, s.row_weight.data(),
                                     in_weights));
  result.scores = std::move(scores);
  return result;
}

Result<RankResult> WeightedPowerIterationOnView(
    const SnapshotView& view, const std::vector<double>& out_edge_weights,
    const std::vector<double>& in_edge_weights, const std::vector<double>& jump,
    const PowerIterationOptions& options,
    const std::vector<double>& initial_scores, PowerIterationScratch* scratch) {
  const size_t n = view.num_nodes();
  SCHOLAR_RETURN_NOT_OK(ValidateSolverArgs(n, jump, options, initial_scores));
  const bool uniform_weights = out_edge_weights.empty();
  if (uniform_weights ? !in_edge_weights.empty() : in_edge_weights.empty()) {
    return Status::InvalidArgument(
        "out_edge_weights and in_edge_weights must both be set or both "
        "empty");
  }
  if (n == 0) return RankResult{};
  const size_t m = view.temporal_csr()->sorted_graph().num_edges();
  if (!uniform_weights &&
      (out_edge_weights.size() != m || in_edge_weights.size() != m)) {
    return Status::InvalidArgument(
        "view edge weight arrays must cover the parent graph: got " +
        std::to_string(out_edge_weights.size()) + " / " +
        std::to_string(in_edge_weights.size()) + " weights for " +
        std::to_string(m) + " parent edges");
  }

  PowerIterationScratch local_scratch;
  PowerIterationScratch& s = scratch != nullptr ? *scratch : local_scratch;
  ThreadPool* pool = s.PoolFor(ResolveThreads(options.threads));
  const GraphAccess a = AccessOf(view, &s.view_rows, pool);

  // Pass 1 (parallel): *inverted* weighted out-degree over the kept row
  // prefixes (0.0 for dangling rows, so the gather term vanishes exactly).
  // Identical staging to the full-graph solver, on the same values — which
  // is what keeps view scores bitwise equal to the materialized path.
  s.row_weight.assign(n, 0.0);
  s.dangling.assign(n, 0);
  std::atomic<bool> negative_weight{false};
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    if (uniform_weights) {
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        const double degree = static_cast<double>(a.OutDegree(u));
        s.dangling[u] = degree <= 0.0 ? 1 : 0;
        s.row_weight[u] = degree <= 0.0 ? 0.0 : 1.0 / degree;
      }
      return;
    }
    for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
      double row = 0.0;
      for (EdgeId e = a.out_begin[u]; e < a.out_end[u]; ++e) {
        const double w = out_edge_weights[e];
        if (w < 0.0) negative_weight.store(true, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone one-way flag; readers check it only after the ParallelFor join, which orders the stores
        row += w;
      }
      s.dangling[u] = row <= 0.0 ? 1 : 0;
      s.row_weight[u] = row <= 0.0 ? 0.0 : 1.0 / row;
    }
  });
  if (negative_weight.load()) {
    return Status::InvalidArgument("negative edge weight");
  }

  std::vector<double> scores = BuildInitialScores(n, initial_scores);
  RankResult result;
  SCHOLAR_RETURN_NOT_OK(RunPowerLoop(
      a, jump, options, pool, s, scores, result, s.row_weight.data(),
      uniform_weights ? nullptr : in_edge_weights.data()));
  result.scores = std::move(scores);
  return result;
}

Result<RankResult> PageRankRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false,
                                        /*requires_venues=*/false,
                                        /*accepts_views=*/true));
  PowerIterationOptions options = options_;
  options.threads = static_cast<int>(EffectiveThreads(options.threads, ctx));
  const std::vector<double> no_initial;
  const std::vector<double>& initial =
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial;
  if (ctx.view != nullptr) {
    return WeightedPowerIterationOnView(*ctx.view, /*out_edge_weights=*/{},
                                        /*in_edge_weights=*/{}, /*jump=*/{},
                                        options, initial, ctx.scratch);
  }
  return WeightedPowerIteration(*ctx.graph, /*edge_weights=*/{}, /*jump=*/{},
                                options, initial, ctx.scratch);
}

}  // namespace scholar
