#ifndef SCHOLARRANK_RANK_KERNEL_KERNEL_OPTIONS_H_
#define SCHOLARRANK_RANK_KERNEL_KERNEL_OPTIONS_H_

#include <string>

#include "util/config.h"
#include "util/status.h"

namespace scholar {
namespace kernel {

/// Which gather implementation the iteration engine runs.
///
///   kAuto    pick the widest ISA the host supports (AVX2 today), falling
///            back to kScalar. The default.
///   kScalar  the portable 4/8-lane *striped* scalar path. This is the
///            bit-exactness oracle: the SIMD paths reproduce its results
///            bit for bit because both reduce each adjacency row through
///            the same fixed lane-striped addition tree.
///   kAvx2    AVX2 gather + 256-bit lane accumulators. Refused at engine
///            setup when the host cannot execute AVX2.
///   kLegacy  the pre-kernel sequential per-row accumulation (the PR-2
///            order). Kept as the historical baseline for benchmarks and
///            for drift comparisons; scores differ from kScalar only by
///            last-ulp regrouping noise.
enum class SimdMode { kAuto, kScalar, kAvx2, kLegacy };

/// Score-array element type used *inside* the gather.
///
///   kDouble  everything in double; the default and the reference.
///   kFloat   the per-source contribution array (and any per-edge weight
///            array) is mirrored to float — halving the bytes the
///            bandwidth-bound gather touches — while every accumulation
///            still happens in double. Drift vs the double path is bounded
///            by float representation error of the inputs (measured
///            <= 1e-6 absolute on every kernel; see tests/kernel_test.cc).
enum class ScorePrecision { kDouble, kFloat };

/// In-CSR storage the gather reads neighbor ids from.
///
///   kNone         the parent graph's raw uint32 adjacency (zero setup).
///   kDeltaVarint  a one-time per-engine re-encode of each row as
///                 zigzag-delta varints, decoded per row into a scratch
///                 buffer during the sweep. Trades decode ALU for memory
///                 bandwidth; decoded ids are identical, so scores are
///                 bit-identical to kNone.
enum class CsrCompression { kNone, kDeltaVarint };

/// Knobs of the iteration engine (src/rank/kernel/). Embedded in every
/// power-iteration option struct; plumbed from the registry config keys
/// `simd=`, `score_precision=`, `csr_compression=`, `hub_order=`,
/// `weight_codebook=`, `adaptive=`, `adaptive_tolerance=`.
struct KernelOptions {
  SimdMode simd = SimdMode::kAuto;
  ScorePrecision precision = ScorePrecision::kDouble;
  CsrCompression compression = CsrCompression::kNone;
  /// Relabel gather *sources* hub-first (descending appearance count) so
  /// the hottest entries of the contribution array share cache lines. A
  /// pure layout permutation: row order and edge ids are untouched, so
  /// per-edge weight arrays (TwprWeightCache included) index unchanged,
  /// and scores are bit-identical to the unpermuted layout.
  bool hub_order = false;
  /// Compress the per-edge weight stream to one byte per edge. At the
  /// first sweep over a given weight array the engine collects its
  /// distinct double bit patterns; when there are at most 256 (TWPR's
  /// exp(-sigma*gap) weights have one per distinct year gap — a few
  /// dozen) each edge stores a byte code into an L1-resident table of the
  /// original doubles. Every multiply reads the identical double (float
  /// mode: the identical float mirror) out of the table, so scores are
  /// bit-identical to the raw-weight path while the weight stream shrinks
  /// 8x (f64) / 4x (f32). Arrays with more than 256 distinct patterns
  /// silently fall back to raw weights; unweighted sweeps ignore the knob.
  bool weight_codebook = false;
  /// Adaptive convergence: a row is re-gathered only when one of its
  /// sources' contributions moved by more than `adaptive_tolerance` since
  /// the row's inputs were last read; untouched rows reuse their stored
  /// gather. The first sweep is always full. Off = every sweep re-gathers
  /// every row (the fixed-work reference).
  bool adaptive = false;
  /// Per-source freeze threshold for `adaptive`. 0 skips a row only when
  /// its inputs are bit-unchanged (exact, still skips fully settled
  /// regions); larger values trade bounded drift for fewer gathers. The
  /// stored row value is stale by at most adaptive_tolerance * in-degree
  /// per sweep.
  double adaptive_tolerance = 1e-13;
};

/// Parses the kernel knobs out of a registry Config (absent keys keep the
/// defaults above). Unknown enum spellings are InvalidArgument.
Result<KernelOptions> KernelOptionsFromConfig(const Config& config);

Result<SimdMode> SimdModeFromString(const std::string& s);
Result<ScorePrecision> ScorePrecisionFromString(const std::string& s);
Result<CsrCompression> CsrCompressionFromString(const std::string& s);

const char* SimdModeName(SimdMode mode);
const char* ScorePrecisionName(ScorePrecision precision);
const char* CsrCompressionName(CsrCompression compression);

}  // namespace kernel
}  // namespace scholar

#endif  // SCHOLARRANK_RANK_KERNEL_KERNEL_OPTIONS_H_
