#include "rank/kernel/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SCHOLAR_KERNEL_X86 1
#else
#define SCHOLAR_KERNEL_X86 0
#endif

namespace scholar {
namespace kernel {

SimdLevel DetectSimdLevel() {
#if SCHOLAR_KERNEL_X86 && defined(__GNUC__)
  static const SimdLevel level = __builtin_cpu_supports("avx2")
                                     ? SimdLevel::kAvx2
                                     : SimdLevel::kScalarOnly;
  return level;
#else
  return SimdLevel::kScalarOnly;
#endif
}

const char* SimdIsaName() {
  return DetectSimdLevel() == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

#if SCHOLAR_KERNEL_X86

// The AVX2 bodies mirror the scalar striped primitives exactly: vector
// lane j holds the partial sum of in-row positions i with i % 4 == j
// (i % 8 for float inputs), accumulated in increasing i order, and the
// lanes combine through the same pairwise tree. Multiplication and
// addition stay separate instructions — an FMA would fuse the rounding
// step and break bit-identity with the scalar oracle.

__attribute__((target("avx2"))) double RowSumAvx2(const double* contrib,
                                                  const NodeId* idx,
                                                  size_t k) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, _mm256_i32gather_pd(contrib, vi, 8));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < k; ++i) lane[i & 3] += contrib[idx[i]];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) double RowDotAvx2(const double* contrib,
                                                  const double* w,
                                                  const NodeId* idx,
                                                  size_t k) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256d gathered = _mm256_i32gather_pd(contrib, vi, 8);
    const __m256d weights = _mm256_loadu_pd(w + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(weights, gathered));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < k; ++i) lane[i & 3] += w[i] * contrib[idx[i]];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) double RowSumAvx2F32(const float* contrib,
                                                     const NodeId* idx,
                                                     size_t k) {
  __m256d acc_lo = _mm256_setzero_pd();  // lanes i%8 in 0..3
  __m256d acc_hi = _mm256_setzero_pd();  // lanes i%8 in 4..7
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256 g = _mm256_i32gather_ps(contrib, vi, 4);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(g)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(g, 1)));
  }
  alignas(32) double lane[8];
  _mm256_store_pd(lane, acc_lo);
  _mm256_store_pd(lane + 4, acc_hi);
  for (; i < k; ++i) lane[i & 7] += static_cast<double>(contrib[idx[i]]);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

__attribute__((target("avx2"))) double RowDotAvx2F32(const float* contrib,
                                                     const float* w,
                                                     const NodeId* idx,
                                                     size_t k) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256 g = _mm256_i32gather_ps(contrib, vi, 4);
    const __m256 wf = _mm256_loadu_ps(w + i);
    const __m256d g_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(g));
    const __m256d g_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(g, 1));
    const __m256d w_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(wf));
    const __m256d w_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(wf, 1));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(w_lo, g_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(w_hi, g_hi));
  }
  alignas(32) double lane[8];
  _mm256_store_pd(lane, acc_lo);
  _mm256_store_pd(lane + 4, acc_hi);
  for (; i < k; ++i) {
    lane[i & 7] +=
        static_cast<double>(w[i]) * static_cast<double>(contrib[idx[i]]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

__attribute__((target("avx2"))) double RowDotCodeAvx2(const double* contrib,
                                                      const double* table,
                                                      const uint8_t* codes,
                                                      const NodeId* idx,
                                                      size_t k) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256d gathered = _mm256_i32gather_pd(contrib, vi, 8);
    // The table is at most 256 doubles (L1-resident); four scalar lookups
    // beat a hardware gather over it.
    const __m256d weights =
        _mm256_set_pd(table[codes[i + 3]], table[codes[i + 2]],
                      table[codes[i + 1]], table[codes[i]]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(weights, gathered));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < k; ++i) lane[i & 3] += table[codes[i]] * contrib[idx[i]];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) double RowDotCodeAvx2F32(const float* contrib,
                                                         const float* table,
                                                         const uint8_t* codes,
                                                         const NodeId* idx,
                                                         size_t k) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256 g = _mm256_i32gather_ps(contrib, vi, 4);
    const __m256d g_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(g));
    const __m256d g_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(g, 1));
    // float -> double widening is exact, so building the weight vectors
    // from scalar table hits matches _mm256_cvtps_pd of the raw mirror.
    const __m256d w_lo =
        _mm256_set_pd(static_cast<double>(table[codes[i + 3]]),
                      static_cast<double>(table[codes[i + 2]]),
                      static_cast<double>(table[codes[i + 1]]),
                      static_cast<double>(table[codes[i]]));
    const __m256d w_hi =
        _mm256_set_pd(static_cast<double>(table[codes[i + 7]]),
                      static_cast<double>(table[codes[i + 6]]),
                      static_cast<double>(table[codes[i + 5]]),
                      static_cast<double>(table[codes[i + 4]]));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(w_lo, g_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(w_hi, g_hi));
  }
  alignas(32) double lane[8];
  _mm256_store_pd(lane, acc_lo);
  _mm256_store_pd(lane + 4, acc_hi);
  for (; i < k; ++i) {
    lane[i & 7] += static_cast<double>(table[codes[i]]) *
                   static_cast<double>(contrib[idx[i]]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

#else  // !SCHOLAR_KERNEL_X86

// Non-x86 hosts: DetectSimdLevel() never reports kAvx2, so these are
// unreachable; they exist only to satisfy the linker.

double RowSumAvx2(const double* contrib, const NodeId* idx, size_t k) {
  return RowSumScalar(contrib, idx, k);
}
double RowDotAvx2(const double* contrib, const double* w, const NodeId* idx,
                  size_t k) {
  return RowDotScalar(contrib, w, idx, k);
}
double RowSumAvx2F32(const float* contrib, const NodeId* idx, size_t k) {
  return RowSumScalarF32(contrib, idx, k);
}
double RowDotAvx2F32(const float* contrib, const float* w, const NodeId* idx,
                     size_t k) {
  return RowDotScalarF32(contrib, w, idx, k);
}
double RowDotCodeAvx2(const double* contrib, const double* table,
                      const uint8_t* codes, const NodeId* idx, size_t k) {
  return RowDotCodeScalar(contrib, table, codes, idx, k);
}
double RowDotCodeAvx2F32(const float* contrib, const float* table,
                         const uint8_t* codes, const NodeId* idx, size_t k) {
  return RowDotCodeScalarF32(contrib, table, codes, idx, k);
}

#endif  // SCHOLAR_KERNEL_X86

}  // namespace kernel
}  // namespace scholar
