#include "rank/kernel/kernel_options.h"

namespace scholar {
namespace kernel {

Result<SimdMode> SimdModeFromString(const std::string& s) {
  if (s == "auto") return SimdMode::kAuto;
  if (s == "scalar") return SimdMode::kScalar;
  if (s == "avx2") return SimdMode::kAvx2;
  if (s == "legacy") return SimdMode::kLegacy;
  return Status::InvalidArgument(
      "unknown simd mode '" + s + "' (expected auto|scalar|avx2|legacy)");
}

Result<ScorePrecision> ScorePrecisionFromString(const std::string& s) {
  if (s == "double" || s == "f64") return ScorePrecision::kDouble;
  if (s == "float" || s == "f32") return ScorePrecision::kFloat;
  return Status::InvalidArgument("unknown score_precision '" + s +
                                 "' (expected double|float)");
}

Result<CsrCompression> CsrCompressionFromString(const std::string& s) {
  if (s == "none") return CsrCompression::kNone;
  if (s == "delta_varint" || s == "varint") return CsrCompression::kDeltaVarint;
  return Status::InvalidArgument("unknown csr_compression '" + s +
                                 "' (expected none|delta_varint)");
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kLegacy:
      return "legacy";
  }
  return "unknown";
}

const char* ScorePrecisionName(ScorePrecision precision) {
  return precision == ScorePrecision::kFloat ? "float" : "double";
}

const char* CsrCompressionName(CsrCompression compression) {
  return compression == CsrCompression::kDeltaVarint ? "delta_varint" : "none";
}

Result<KernelOptions> KernelOptionsFromConfig(const Config& config) {
  KernelOptions opts;
  if (config.Has("simd")) {
    SCHOLAR_ASSIGN_OR_RETURN(auto s, config.GetString("simd"));
    SCHOLAR_ASSIGN_OR_RETURN(opts.simd, SimdModeFromString(s));
  }
  if (config.Has("score_precision")) {
    SCHOLAR_ASSIGN_OR_RETURN(auto s, config.GetString("score_precision"));
    SCHOLAR_ASSIGN_OR_RETURN(opts.precision, ScorePrecisionFromString(s));
  }
  if (config.Has("csr_compression")) {
    SCHOLAR_ASSIGN_OR_RETURN(auto s, config.GetString("csr_compression"));
    SCHOLAR_ASSIGN_OR_RETURN(opts.compression, CsrCompressionFromString(s));
  }
  if (config.Has("hub_order")) {
    SCHOLAR_ASSIGN_OR_RETURN(opts.hub_order, config.GetBool("hub_order"));
  }
  if (config.Has("weight_codebook")) {
    SCHOLAR_ASSIGN_OR_RETURN(opts.weight_codebook,
                             config.GetBool("weight_codebook"));
  }
  if (config.Has("adaptive")) {
    SCHOLAR_ASSIGN_OR_RETURN(opts.adaptive, config.GetBool("adaptive"));
  }
  if (config.Has("adaptive_tolerance")) {
    SCHOLAR_ASSIGN_OR_RETURN(opts.adaptive_tolerance,
                             config.GetDouble("adaptive_tolerance"));
    if (!(opts.adaptive_tolerance >= 0.0)) {
      return Status::InvalidArgument(
          "adaptive_tolerance must be non-negative");
    }
  }
  return opts;
}

}  // namespace kernel
}  // namespace scholar
