#ifndef SCHOLARRANK_RANK_KERNEL_COMPRESSED_CSR_H_
#define SCHOLARRANK_RANK_KERNEL_COMPRESSED_CSR_H_

/// Delta/varint-compressed adjacency rows for the iteration engine.
///
/// Each row's neighbor ids are stored as zigzag-encoded deltas from the
/// previous id in the row (the first from 0), LEB128-varint packed. Full
/// in-CSR rows are ascending, so deltas are small positives and most ids
/// fit one byte (~12.4M-edge bench corpus: ~2.6 bytes/edge vs 4 raw);
/// zigzag keeps hub-relabeled (unsorted) rows encodable at a modest size
/// penalty. Decoding reproduces the ids exactly, so gather results are
/// bit-identical to the uncompressed path.
///
/// Two decoders exist on purpose:
///   CompressedInCsr::DecodeRow — trusted hot path over bytes this
///       process encoded itself; no validation.
///   DecodeVarintRowChecked    — bounds/overflow-checked, for untrusted
///       bytes; this is the fuzz surface (fuzz/harness/
///       fuzz_compressed_csr.cc) and the oracle the tests pit against
///       the trusted decoder.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scholar {
namespace kernel {

/// Appends row `ids[0..k)` in zigzag-delta varint form to `*out`.
void EncodeVarintRow(const NodeId* ids, size_t k, std::vector<uint8_t>* out);

/// Validating decode of one row from untrusted bytes.
///
/// Reads exactly `count` varints from data[0..size), rejecting truncated
/// streams, varints longer than 10 bytes, and any decoded id outside
/// [0, max_id_exclusive) — including int64 overflow of the running delta
/// sum. On success fills out[0..count) and sets *consumed to the bytes
/// read. `out` may be null to validate without storing.
Status DecodeVarintRowChecked(const uint8_t* data, size_t size, size_t count,
                              uint32_t max_id_exclusive, NodeId* out,
                              size_t* consumed);

/// A compressed mirror of one gather orientation's adjacency.
class CompressedInCsr {
 public:
  /// Encodes row v = nbrs[row_begin[v]..row_end[v]) for every v in
  /// [0, num_rows). Row lengths are computed in parallel, offsets prefix-
  /// summed serially, payloads filled in parallel.
  void Build(const EdgeId* row_begin, const EdgeId* row_end,
             const NodeId* nbrs, size_t num_rows, ThreadPool* pool);

  /// Trusted decode of row v (degree k, known from the row arrays) into
  /// out[0..k). Hot path: no validation — the bytes came from Build.
  void DecodeRow(size_t v, size_t k, NodeId* out) const {
    const uint8_t* p = bytes_.data() + offsets_[v];
    uint32_t prev = 0;
    for (size_t i = 0; i < k; ++i) {
      uint64_t raw = 0;
      int shift = 0;
      uint8_t byte;
      do {
        byte = *p++;
        raw |= static_cast<uint64_t>(byte & 0x7f) << shift;
        shift += 7;
      } while (byte & 0x80);
      // Zigzag: (raw >> 1) ^ -(raw & 1).
      const int64_t delta =
          static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
      prev = static_cast<uint32_t>(static_cast<int64_t>(prev) + delta);
      out[i] = prev;
    }
  }

  size_t num_rows() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t encoded_bytes() const { return bytes_.size(); }
  /// Longest row, for sizing per-chunk decode scratch.
  size_t max_row_degree() const { return max_row_degree_; }

 private:
  std::vector<uint64_t> offsets_;  // num_rows + 1 byte offsets into bytes_
  std::vector<uint8_t> bytes_;
  size_t max_row_degree_ = 0;
};

}  // namespace kernel
}  // namespace scholar

#endif  // SCHOLARRANK_RANK_KERNEL_COMPRESSED_CSR_H_
