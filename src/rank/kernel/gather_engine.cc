#include "rank/kernel/gather_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "rank/kernel/simd.h"
#include "util/parallel_for.h"

namespace scholar {
namespace kernel {

namespace {

/// Same fixed chunk geometry as every rank kernel: chunk boundaries depend
/// on (n, grain) only, so per-chunk bookkeeping is thread-count
/// independent.
constexpr size_t kRowGrain = 2048;

/// When more than this fraction of sources moved, skip the wake scatter
/// and re-gather everything — marking a superset stale is always correct,
/// and a near-full frontier makes the transpose walk pure overhead.
constexpr size_t kFullSweepDenominator = 4;

}  // namespace

Status GatherEngine::Init(const GraphAccess& access, GatherDirection direction,
                          const KernelOptions& options, ThreadPool* pool) {
  ResolvedKernel rk;
  rk.precision = options.precision;
  rk.compression = options.compression;
  rk.hub_order = options.hub_order;
  rk.weight_codebook = options.weight_codebook;
  rk.adaptive = options.adaptive;
  rk.adaptive_tolerance = options.adaptive_tolerance;
  switch (options.simd) {
    case SimdMode::kAuto:
      rk.simd = DetectSimdLevel() == SimdLevel::kAvx2 ? SimdMode::kAvx2
                                                      : SimdMode::kScalar;
      break;
    case SimdMode::kAvx2:
      if (DetectSimdLevel() != SimdLevel::kAvx2) {
        return Status::InvalidArgument(
            "simd=avx2 requested but this host cannot execute AVX2 "
            "(use simd=auto for runtime dispatch)");
      }
      rk.simd = SimdMode::kAvx2;
      break;
    case SimdMode::kScalar:
      rk.simd = SimdMode::kScalar;
      break;
    case SimdMode::kLegacy:
      rk.simd = SimdMode::kLegacy;
      break;
  }
  if (!(rk.adaptive_tolerance >= 0.0)) {
    return Status::InvalidArgument("adaptive_tolerance must be >= 0");
  }
  resolved_ = rk;
  pool_ = pool;
  num_rows_ = access.num_nodes;
  if (direction == GatherDirection::kInEdges) {
    row_begin_ = access.in_begin;
    row_end_ = access.in_end;
    row_nbrs_ = access.in_neighbors;
    wake_begin_ = access.out_begin;
    wake_end_ = access.out_end;
    wake_nbrs_ = access.out_neighbors;
  } else {
    row_begin_ = access.out_begin;
    row_end_ = access.out_end;
    row_nbrs_ = access.out_neighbors;
    wake_begin_ = access.in_begin;
    wake_end_ = access.in_end;
    wake_nbrs_ = access.in_neighbors;
  }

  gather_.resize(num_rows_);
  first_sweep_ = true;
  weights_seen_ = nullptr;
  codes_built_for_ = nullptr;
  codebook_active_ = false;
  sweeps_ = 0;
  last_rows_gathered_ = 0;
  total_rows_gathered_ = 0;

  // Highest edge id any row reaches. For a full graph this is num_edges;
  // for a snapshot view it bounds the parent-CSR prefix the view touches.
  size_t extent = 0;
  for (size_t v = 0; v < num_rows_; ++v) {
    extent = std::max(extent, static_cast<size_t>(row_end_[v]));
  }
  edge_extent_ = extent;
  if (!rk.weight_codebook) {
    weight_codes_.clear();
    code_table_.clear();
    code_table_f32_.clear();
  }

  if (rk.hub_order) {
    // Appearance count of each source across the gathered rows — the
    // number of gather loads that will hit its contribution slot.
    std::vector<uint32_t> counts(num_rows_, 0);
    for (size_t v = 0; v < num_rows_; ++v) {
      for (EdgeId p = row_begin_[v]; p < row_end_[v]; ++p) {
        ++counts[row_nbrs_[p]];
      }
    }
    std::vector<NodeId> order(num_rows_);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(), [&counts](NodeId a, NodeId b) {
      if (counts[a] != counts[b]) return counts[a] > counts[b];
      return a < b;
    });
    source_relabel_.resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      source_relabel_[order[i]] = static_cast<NodeId>(i);
    }
    relabeled_nbrs_.resize(extent);
    ParallelFor(pool_, num_rows_, kRowGrain, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        for (EdgeId p = row_begin_[v]; p < row_end_[v]; ++p) {
          relabeled_nbrs_[p] = source_relabel_[row_nbrs_[p]];
        }
      }
    });
    contrib_hub_.resize(num_rows_);
  } else {
    source_relabel_.clear();
    relabeled_nbrs_.clear();
    contrib_hub_.clear();
  }

  if (rk.compression == CsrCompression::kDeltaVarint) {
    const NodeId* nbrs =
        rk.hub_order ? relabeled_nbrs_.data() : row_nbrs_;
    compressed_.Build(  // NOLINT(unchecked-status): CompressedInCsr::Build returns void; name-collides with ScoreSnapshot::Build
        row_begin_, row_end_, nbrs, num_rows_, pool_);
  } else {
    compressed_ = CompressedInCsr();
  }

  if (rk.precision == ScorePrecision::kFloat) {
    contrib_f32_.resize(num_rows_);
    weights_f32_.resize(extent);
  } else {
    contrib_f32_.clear();
    weights_f32_.clear();
  }

  if (rk.adaptive) {
    base_.resize(num_rows_);
    moved_.resize(num_rows_);
    stale_.resize(num_rows_);
  } else {
    base_.clear();
    moved_.clear();
    stale_.clear();
  }
  return Status::OK();
}

size_t GatherEngine::MarkStaleRows(const double* contrib) {
  const size_t n = num_rows_;
  if (first_sweep_) {
    first_sweep_ = false;
    std::fill(stale_.begin(), stale_.end(), uint8_t{1});
    std::copy(contrib, contrib + n, base_.begin());
    return n;
  }
  const double atol = resolved_.adaptive_tolerance;
  const size_t chunks = ChunkCount(n, kRowGrain);
  chunk_rows_.assign(chunks, 0);
  ParallelForChunks(pool_, n, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    size_t count = 0;
    for (size_t u = begin; u < end; ++u) {
      const double c = contrib[u];
      if (std::abs(c - base_[u]) > atol) {
        moved_[u] = 1;
        base_[u] = c;
        ++count;
      } else {
        moved_[u] = 0;
      }
    }
    chunk_rows_[chunk] = count;
  });
  size_t moved_count = 0;
  for (size_t c = 0; c < chunks; ++c) moved_count += chunk_rows_[c];
  if (moved_count * kFullSweepDenominator >= n) {
    std::fill(stale_.begin(), stale_.end(), uint8_t{1});
    return n;
  }
  // Wake scatter, serial and in source order (idempotent 1-stores, so the
  // stale set is deterministic regardless of how sources interleave).
  std::fill(stale_.begin(), stale_.end(), uint8_t{0});
  size_t stale_count = 0;
  for (size_t u = 0; u < n; ++u) {
    if (!moved_[u]) continue;
    for (EdgeId p = wake_begin_[u]; p < wake_end_[u]; ++p) {
      const NodeId v = wake_nbrs_[p];
      stale_count += stale_[v] == 0;
      stale_[v] = 1;
    }
  }
  return stale_count;
}

// analyze:init-scope — codebook construction runs once per Init, never in a sweep
void GatherEngine::BuildWeightCodebook(const double* edge_weights) {
  codes_built_for_ = edge_weights;
  codebook_active_ = false;
  constexpr size_t kMaxEntries = 256;  // codes are one byte
  // Keyed on the bit pattern, not the value: -0.0 vs 0.0 (or any NaN
  // payload) must round-trip to the identical double for bit-identity.
  std::unordered_map<uint64_t, uint8_t> index;
  index.reserve(2 * kMaxEntries);
  code_table_.clear();
  weight_codes_.resize(edge_extent_);
  for (size_t e = 0; e < edge_extent_; ++e) {
    uint64_t bits;
    std::memcpy(&bits, &edge_weights[e], sizeof(bits));
    auto it = index.find(bits);
    if (it == index.end()) {
      if (code_table_.size() == kMaxEntries) {
        // Too many distinct weights for byte codes — this array sweeps
        // with the raw weight stream instead.
        weight_codes_.clear();
        code_table_.clear();
        code_table_f32_.clear();
        return;
      }
      it = index.emplace(bits, static_cast<uint8_t>(code_table_.size())).first;
      code_table_.push_back(edge_weights[e]);
    }
    weight_codes_[e] = it->second;
  }
  code_table_f32_.assign(code_table_.begin(), code_table_.end());
  codebook_active_ = true;
}

template <typename Eval>
void GatherEngine::SweepRows(const Eval& eval) {
  const bool use_stale = resolved_.adaptive;
  const bool compressed =
      resolved_.compression == CsrCompression::kDeltaVarint;
  const NodeId* nbrs =
      resolved_.hub_order ? relabeled_nbrs_.data() : row_nbrs_;
  const size_t chunks = ChunkCount(num_rows_, kRowGrain);
  chunk_rows_.assign(chunks, 0);
  ParallelForChunks(pool_, num_rows_, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    std::vector<NodeId> decode;
    if (compressed) decode.resize(compressed_.max_row_degree());
    size_t rows = 0;
    for (size_t v = begin; v < end; ++v) {
      if (use_stale && !stale_[v]) continue;
      const size_t k = static_cast<size_t>(row_end_[v] - row_begin_[v]);
      const NodeId* idx;
      if (compressed) {
        compressed_.DecodeRow(v, k, decode.data());
        idx = decode.data();
      } else {
        idx = nbrs + row_begin_[v];
      }
      gather_[v] = eval(v, idx, k);
      ++rows;
    }
    chunk_rows_[chunk] = rows;
  });
}

template <double (*kSum)(const double*, const NodeId*, size_t),
          double (*kDot)(const double*, const double*, const NodeId*, size_t),
          double (*kSumF)(const float*, const NodeId*, size_t),
          double (*kDotF)(const float*, const float*, const NodeId*, size_t),
          double (*kDotC)(const double*, const double*, const uint8_t*,
                          const NodeId*, size_t),
          double (*kDotCF)(const float*, const float*, const uint8_t*,
                           const NodeId*, size_t)>
void GatherEngine::RunVariant(const double* contrib_d, const double* w_d,
                              bool use_codes) {
  // Codes are indexed by raw edge id, exactly like w_d — hub_order
  // relabels only the neighbor *values*, never the edge positions.
  const uint8_t* codes = weight_codes_.data();
  if (resolved_.precision == ScorePrecision::kDouble) {
    if (use_codes) {
      const double* table = code_table_.data();
      SweepRows([this, contrib_d, table,
                 codes](size_t v, const NodeId* idx, size_t k) {
        return kDotC(contrib_d, table, codes + row_begin_[v], idx, k);
      });
    } else if (w_d != nullptr) {
      SweepRows([this, contrib_d, w_d](size_t v, const NodeId* idx, size_t k) {
        return kDot(contrib_d, w_d + row_begin_[v], idx, k);
      });
    } else {
      SweepRows([contrib_d](size_t, const NodeId* idx, size_t k) {
        return kSum(contrib_d, idx, k);
      });
    }
  } else {
    const float* cf = contrib_f32_.data();
    if (use_codes) {
      const float* table = code_table_f32_.data();
      SweepRows([this, cf, table, codes](size_t v, const NodeId* idx,
                                         size_t k) {
        return kDotCF(cf, table, codes + row_begin_[v], idx, k);
      });
    } else if (w_d != nullptr) {
      const float* wf = weights_f32_.data();
      SweepRows([this, cf, wf](size_t v, const NodeId* idx, size_t k) {
        return kDotF(cf, wf + row_begin_[v], idx, k);
      });
    } else {
      SweepRows([cf](size_t, const NodeId* idx, size_t k) {
        return kSumF(cf, idx, k);
      });
    }
  }
}

const double* GatherEngine::Gather(const double* contrib,
                                   const double* edge_weights) {
  if (resolved_.adaptive) MarkStaleRows(contrib);

  // Pointer identity, not value comparison.  NOLINT(float-compare)
  if (resolved_.weight_codebook && edge_weights != nullptr &&
      codes_built_for_ != edge_weights) {  // NOLINT(float-compare)
    // Weights are per-solve constants (see the Gather contract), so the
    // code/table build runs once per distinct array, not per sweep.
    BuildWeightCodebook(edge_weights);
  }
  const bool use_codes = codebook_active_ && edge_weights != nullptr;

  // Stage the contribution array in the layout/precision the sweep reads.
  const double* contrib_d = contrib;
  if (resolved_.precision == ScorePrecision::kDouble) {
    if (resolved_.hub_order) {
      ParallelFor(pool_, num_rows_, kRowGrain, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          contrib_hub_[source_relabel_[u]] = contrib[u];
        }
      });
      contrib_d = contrib_hub_.data();
    }
  } else {
    if (resolved_.hub_order) {
      ParallelFor(pool_, num_rows_, kRowGrain, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          contrib_f32_[source_relabel_[u]] = static_cast<float>(contrib[u]);
        }
      });
    } else {
      ParallelFor(pool_, num_rows_, kRowGrain, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          contrib_f32_[u] = static_cast<float>(contrib[u]);
        }
      });
    }
    // Pointer identity, not value comparison.  NOLINT(float-compare)
    if (edge_weights != nullptr && !use_codes &&
        weights_seen_ != edge_weights) {  // NOLINT(float-compare)
      // Weights are per-solve constants (see the Gather contract), so the
      // float mirror converts once per distinct array, not per sweep.
      // Codebook sweeps read the float table instead and skip the mirror.
      ParallelFor(pool_, weights_f32_.size(), kRowGrain,
                  [&](size_t begin, size_t end) {
        for (size_t e = begin; e < end; ++e) {
          weights_f32_[e] = static_cast<float>(edge_weights[e]);
        }
      });
      weights_seen_ = edge_weights;
    }
  }

  switch (resolved_.simd) {
    case SimdMode::kScalar:
      RunVariant<RowSumScalar, RowDotScalar, RowSumScalarF32, RowDotScalarF32,
                 RowDotCodeScalar, RowDotCodeScalarF32>(
          contrib_d, edge_weights, use_codes);
      break;
    case SimdMode::kAvx2:
      RunVariant<RowSumAvx2, RowDotAvx2, RowSumAvx2F32, RowDotAvx2F32,
                 RowDotCodeAvx2, RowDotCodeAvx2F32>(contrib_d, edge_weights,
                                                    use_codes);
      break;
    case SimdMode::kLegacy:
      RunVariant<RowSumLegacy, RowDotLegacy, RowSumLegacyF32, RowDotLegacyF32,
                 RowDotCodeLegacy, RowDotCodeLegacyF32>(
          contrib_d, edge_weights, use_codes);
      break;
    case SimdMode::kAuto:
      break;  // unreachable: Init resolves kAuto away
  }

  size_t gathered = 0;
  for (size_t c : chunk_rows_) gathered += c;
  last_rows_gathered_ = gathered;
  total_rows_gathered_ += gathered;
  ++sweeps_;
  return gather_.data();
}

}  // namespace kernel
}  // namespace scholar
