#ifndef SCHOLARRANK_RANK_KERNEL_SIMD_H_
#define SCHOLARRANK_RANK_KERNEL_SIMD_H_

/// Row-gather primitives of the iteration engine, in three flavors that
/// share one *canonical reduction order*:
///
///   scalar  portable C++, 4 (double) / 8 (float) striped accumulator
///           lanes: lane j sums the terms at in-row positions i with
///           i % lanes == j, and the lanes combine pairwise
///           ((l0+l1)+(l2+l3)) [+ ((l4+l5)+(l6+l7)) in float mode].
///   avx2    the same lane assignment executed with hardware gathers and
///           256-bit adds — *bit-identical* to scalar by construction
///           (no FMA contraction: explicit mul-then-add on both paths).
///   legacy  the pre-kernel strictly sequential accumulation (PR-2
///           order), kept as the historical baseline; differs from the
///           striped order only by last-ulp regrouping.
///
/// Float-precision variants read float contributions/weights but widen
/// every operand to double *before* multiplying, so the only error vs the
/// double path is the float representation error of the inputs.
///
/// This header is intrinsic-free; every raw intrinsic lives in simd.cc
/// (the scholar_lint `raw-intrinsics` rule bans them anywhere outside
/// src/rank/kernel/).

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

namespace scholar {
namespace kernel {

/// Widest gather ISA the *host CPU* can execute (independent of what the
/// binary was compiled for — the AVX2 path is built with a function-level
/// target attribute and dispatched at runtime).
enum class SimdLevel { kScalarOnly, kAvx2 };

SimdLevel DetectSimdLevel();

/// "avx2" / "scalar" — recorded into every BENCH_*.json header.
const char* SimdIsaName();

// --------------------------------------------------------------------------
// Scalar striped primitives (the bit-exactness oracle for the AVX2 path).
// `idx[0..k)` are in-row neighbor positions into `contrib`; `w`, when
// present, is the per-edge weight slice aligned with idx.
// --------------------------------------------------------------------------

inline double RowSumScalar(const double* contrib, const NodeId* idx,
                           size_t k) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < k; ++i) lane[i & 3] += contrib[idx[i]];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

inline double RowDotScalar(const double* contrib, const double* w,
                           const NodeId* idx, size_t k) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < k; ++i) lane[i & 3] += w[i] * contrib[idx[i]];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

inline double RowSumScalarF32(const float* contrib, const NodeId* idx,
                              size_t k) {
  double lane[8] = {0.0};
  for (size_t i = 0; i < k; ++i) {
    lane[i & 7] += static_cast<double>(contrib[idx[i]]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

inline double RowDotScalarF32(const float* contrib, const float* w,
                              const NodeId* idx, size_t k) {
  double lane[8] = {0.0};
  for (size_t i = 0; i < k; ++i) {
    lane[i & 7] +=
        static_cast<double>(w[i]) * static_cast<double>(contrib[idx[i]]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

// --------------------------------------------------------------------------
// Codebook-weight variants: the per-edge weight is `table[codes[i]]`
// instead of `w[i]`. The engine builds the table so that
// table[codes[e]] is bit-equal to the raw weight w[e] (and the float
// table bit-equal to the float mirror), so each variant is bit-identical
// to its direct-weight sibling — the table lookup just replaces an 8-byte
// (4-byte) weight-stream load with a 1-byte code load plus an L1 hit.
// --------------------------------------------------------------------------

inline double RowDotCodeScalar(const double* contrib, const double* table,
                               const uint8_t* codes, const NodeId* idx,
                               size_t k) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < k; ++i) {
    lane[i & 3] += table[codes[i]] * contrib[idx[i]];
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

inline double RowDotCodeScalarF32(const float* contrib, const float* table,
                                  const uint8_t* codes, const NodeId* idx,
                                  size_t k) {
  double lane[8] = {0.0};
  for (size_t i = 0; i < k; ++i) {
    lane[i & 7] += static_cast<double>(table[codes[i]]) *
                   static_cast<double>(contrib[idx[i]]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

// --------------------------------------------------------------------------
// Legacy sequential primitives (the PR-2 accumulation order).
// --------------------------------------------------------------------------

inline double RowSumLegacy(const double* contrib, const NodeId* idx,
                           size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) acc += contrib[idx[i]];
  return acc;
}

inline double RowDotLegacy(const double* contrib, const double* w,
                           const NodeId* idx, size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) acc += w[i] * contrib[idx[i]];
  return acc;
}

inline double RowSumLegacyF32(const float* contrib, const NodeId* idx,
                              size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) acc += static_cast<double>(contrib[idx[i]]);
  return acc;
}

inline double RowDotLegacyF32(const float* contrib, const float* w,
                              const NodeId* idx, size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    acc += static_cast<double>(w[i]) * static_cast<double>(contrib[idx[i]]);
  }
  return acc;
}

inline double RowDotCodeLegacy(const double* contrib, const double* table,
                               const uint8_t* codes, const NodeId* idx,
                               size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) acc += table[codes[i]] * contrib[idx[i]];
  return acc;
}

inline double RowDotCodeLegacyF32(const float* contrib, const float* table,
                                  const uint8_t* codes, const NodeId* idx,
                                  size_t k) {
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    acc += static_cast<double>(table[codes[i]]) *
           static_cast<double>(contrib[idx[i]]);
  }
  return acc;
}

// --------------------------------------------------------------------------
// AVX2 primitives (simd.cc, compiled with a function-level AVX2 target).
// Call only when DetectSimdLevel() == kAvx2; bit-identical to the scalar
// striped primitives above. Indices must be < 2^31 (NodeId counts are).
// --------------------------------------------------------------------------

double RowSumAvx2(const double* contrib, const NodeId* idx, size_t k);
double RowDotAvx2(const double* contrib, const double* w, const NodeId* idx,
                  size_t k);
double RowSumAvx2F32(const float* contrib, const NodeId* idx, size_t k);
double RowDotAvx2F32(const float* contrib, const float* w, const NodeId* idx,
                     size_t k);
double RowDotCodeAvx2(const double* contrib, const double* table,
                      const uint8_t* codes, const NodeId* idx, size_t k);
double RowDotCodeAvx2F32(const float* contrib, const float* table,
                         const uint8_t* codes, const NodeId* idx, size_t k);

}  // namespace kernel
}  // namespace scholar

#endif  // SCHOLARRANK_RANK_KERNEL_SIMD_H_
