#ifndef SCHOLARRANK_RANK_KERNEL_GATHER_ENGINE_H_
#define SCHOLARRANK_RANK_KERNEL_GATHER_ENGINE_H_

/// GatherEngine — the memory-bandwidth-conscious inner loop shared by every
/// power-iteration kernel (PageRank/TWPR/CiteRank via the pagerank solver,
/// Katz, SCEAS, both HITS orientations, and the streaming frontier ranker).
///
/// One sweep computes, for every row v of the chosen orientation,
///
///   gather[v] = sum over row edges p of  w[p] * contrib[source(p)]
///
/// (or the unweighted sum when no weight array is given). The engine owns
/// the variant machinery behind that line:
///
///   simd             scalar striped / AVX2 (runtime-dispatched) / legacy
///   score_precision  double, or float mirrors with double accumulation
///   csr_compression  raw uint32 rows, or zigzag-delta varint decode
///   hub_order        hub-first relabeling of the *source* axis
///   weight_codebook  1-byte-per-edge codes into an L1 table of the (at
///                    most 256) distinct weight values, built lazily per
///                    weight array; falls back to raw weights past 256
///   adaptive         per-source movement tracking that re-gathers only
///                    rows whose inputs moved since their last gather
///
/// Determinism contract: for a fixed variant, results are bit-identical at
/// every thread count (row-local writes, fixed chunk geometry), and the
/// scalar/AVX2 × plain/compressed × hub on/off cross-product is
/// bit-identical within double precision (same per-row addition tree, same
/// decoded ids, pure relabeling). See tests/kernel_test.cc.
///
/// The engine borrows the GraphAccess arrays and the pool; both must
/// outlive it. Not thread-safe: one engine per concurrent solver call.

#include <cstdint>
#include <vector>

#include "graph/graph_access.h"
#include "rank/kernel/compressed_csr.h"
#include "rank/kernel/kernel_options.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scholar {
namespace kernel {

/// Which adjacency orientation a sweep pulls over. kInEdges gathers into
/// each node from its citers (the PageRank/authority direction); kOutEdges
/// gathers from its references (the HITS hub direction).
enum class GatherDirection { kInEdges, kOutEdges };

/// KernelOptions after auto-resolution: `simd` is never kAuto.
struct ResolvedKernel {
  SimdMode simd = SimdMode::kScalar;
  ScorePrecision precision = ScorePrecision::kDouble;
  CsrCompression compression = CsrCompression::kNone;
  bool hub_order = false;
  bool weight_codebook = false;
  bool adaptive = false;
  double adaptive_tolerance = 0.0;
};

class GatherEngine {
 public:
  GatherEngine() = default;
  GatherEngine(const GatherEngine&) = delete;
  GatherEngine& operator=(const GatherEngine&) = delete;

  /// Prepares the engine for sweeps over `access` in `direction`.
  /// Re-initializable: buffers are reused across Init calls (the ensemble
  /// ranks many snapshots through one scratch-owned engine). Fails with
  /// InvalidArgument when simd=avx2 is requested on a host without AVX2.
  Status Init(const GraphAccess& access, GatherDirection direction,
              const KernelOptions& options, ThreadPool* pool);

  /// Runs one sweep and returns the per-row results (size num_nodes; owned
  /// by the engine, valid until the next Init). `contrib` is the per-source
  /// contribution array; `edge_weights` is indexed by this orientation's
  /// edge ids (null = unweighted). In adaptive mode rows whose sources all
  /// stayed within adaptive_tolerance of their last-observed values keep
  /// their stored result; the first sweep after Init is always full.
  ///
  /// Adaptive staleness contract: `edge_weights` must be the same array,
  /// with the same values, on every sweep of one Init lifetime (every
  /// caller's weights are per-solve constants).
  const double* Gather(const double* contrib, const double* edge_weights);

  /// Per-row re-gather flags of the last sweep (size num_nodes; adaptive
  /// mode only, null otherwise). A 0 row kept its stored value — streaming
  /// callers use this to freeze the corresponding score slot exactly.
  const uint8_t* last_stale() const {
    return resolved_.adaptive ? stale_.data() : nullptr;
  }

  /// Rows actually re-gathered by the last sweep (== num_nodes unless
  /// adaptive skipped some).
  size_t last_rows_gathered() const { return last_rows_gathered_; }
  /// Totals across all sweeps since Init, for work-savings assertions.
  size_t total_rows_gathered() const { return total_rows_gathered_; }
  size_t sweeps() const { return sweeps_; }

  const ResolvedKernel& resolved() const { return resolved_; }
  /// Compressed adjacency bytes (0 when csr_compression=none).
  size_t encoded_bytes() const { return compressed_.encoded_bytes(); }
  /// Whether the last weight array seen fit the 256-entry codebook (false
  /// until a weighted sweep runs with weight_codebook=true).
  bool codebook_active() const { return codebook_active_; }
  /// Distinct weight values in the active codebook (0 when inactive).
  size_t codebook_entries() const {
    return codebook_active_ ? code_table_.size() : 0;
  }

 private:
  /// Recomputes stale_ for this sweep from contrib-vs-base_ movement and
  /// refreshes base_. Returns the number of stale rows.
  size_t MarkStaleRows(const double* contrib);

  /// Runs the sweep with eval(v, idx, k) producing row v's value.
  template <typename Eval>
  void SweepRows(const Eval& eval);

  /// Builds (or declines, past 256 distinct values) the byte-code /
  /// value-table pair for `edge_weights`; sets codebook_active_.
  void BuildWeightCodebook(const double* edge_weights);

  /// Precision dispatch for one simd flavor (the kSum/kDot/kDotC template
  /// arguments are that flavor's six row primitives).
  template <double (*kSum)(const double*, const NodeId*, size_t),
            double (*kDot)(const double*, const double*, const NodeId*,
                           size_t),
            double (*kSumF)(const float*, const NodeId*, size_t),
            double (*kDotF)(const float*, const float*, const NodeId*,
                            size_t),
            double (*kDotC)(const double*, const double*, const uint8_t*,
                            const NodeId*, size_t),
            double (*kDotCF)(const float*, const float*, const uint8_t*,
                             const NodeId*, size_t)>
  void RunVariant(const double* contrib_d, const double* w_d, bool use_codes);

  ResolvedKernel resolved_;
  ThreadPool* pool_ = nullptr;

  // Gather-orientation rows (borrowed from the GraphAccess).
  size_t num_rows_ = 0;
  const EdgeId* row_begin_ = nullptr;
  const EdgeId* row_end_ = nullptr;
  const NodeId* row_nbrs_ = nullptr;
  // Transpose rows, for waking the rows a moved source feeds (adaptive).
  const EdgeId* wake_begin_ = nullptr;
  const EdgeId* wake_end_ = nullptr;
  const NodeId* wake_nbrs_ = nullptr;

  std::vector<double> gather_;  // per-row results, persistent across sweeps

  // hub_order: new label of each source + privately relabeled neighbors.
  std::vector<NodeId> source_relabel_;
  std::vector<NodeId> relabeled_nbrs_;
  std::vector<double> contrib_hub_;  // contrib permuted into hub order

  // float precision mirrors (contrib refreshed per sweep, weights once).
  std::vector<float> contrib_f32_;
  std::vector<float> weights_f32_;
  const double* weights_seen_ = nullptr;

  // weight_codebook: per-edge byte codes + the distinct-value tables they
  // index (double, plus the float mirror for float-precision sweeps).
  std::vector<uint8_t> weight_codes_;
  std::vector<double> code_table_;
  std::vector<float> code_table_f32_;
  const double* codes_built_for_ = nullptr;
  bool codebook_active_ = false;
  size_t edge_extent_ = 0;  // highest edge id any row reaches

  CompressedInCsr compressed_;

  // adaptive state.
  std::vector<double> base_;      // per-source last-observed contribution
  std::vector<uint8_t> moved_;    // per-source movement flag (scratch)
  std::vector<uint8_t> stale_;    // per-row re-gather flag for this sweep
  bool first_sweep_ = true;

  std::vector<size_t> chunk_rows_;  // per-chunk gathered-row counts
  size_t last_rows_gathered_ = 0;
  size_t total_rows_gathered_ = 0;
  size_t sweeps_ = 0;
};

}  // namespace kernel
}  // namespace scholar

#endif  // SCHOLARRANK_RANK_KERNEL_GATHER_ENGINE_H_
