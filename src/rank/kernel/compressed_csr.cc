#include "rank/kernel/compressed_csr.h"

#include <algorithm>

#include "util/parallel_for.h"

namespace scholar {
namespace kernel {

namespace {

constexpr size_t kRowGrain = 4096;
constexpr int kMaxVarintBytes = 10;  // 64-bit payload in 7-bit groups

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

inline void AppendVarint(uint64_t v, uint8_t* dst, size_t* pos) {
  while (v >= 0x80) {
    dst[(*pos)++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  dst[(*pos)++] = static_cast<uint8_t>(v);
}

inline size_t RowEncodedLength(const NodeId* ids, size_t k) {
  size_t len = 0;
  uint32_t prev = 0;
  for (size_t i = 0; i < k; ++i) {
    len += VarintLength(Zigzag(static_cast<int64_t>(ids[i]) -
                               static_cast<int64_t>(prev)));
    prev = ids[i];
  }
  return len;
}

inline void EncodeRowInto(const NodeId* ids, size_t k, uint8_t* dst) {
  size_t pos = 0;
  uint32_t prev = 0;
  for (size_t i = 0; i < k; ++i) {
    AppendVarint(Zigzag(static_cast<int64_t>(ids[i]) -
                        static_cast<int64_t>(prev)),
                 dst, &pos);
    prev = ids[i];
  }
}

}  // namespace

void EncodeVarintRow(const NodeId* ids, size_t k, std::vector<uint8_t>* out) {
  const size_t len = RowEncodedLength(ids, k);
  const size_t base = out->size();
  out->resize(base + len);
  EncodeRowInto(ids, k, out->data() + base);
}

Status DecodeVarintRowChecked(const uint8_t* data, size_t size, size_t count,
                              uint32_t max_id_exclusive, NodeId* out,
                              size_t* consumed) {
  size_t pos = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t raw = 0;
    int shift = 0;
    int bytes = 0;
    while (true) {
      if (pos >= size) {
        return Status::Corruption("compressed row truncated mid-varint");
      }
      const uint8_t byte = data[pos++];
      if (++bytes > kMaxVarintBytes) {
        return Status::Corruption("varint longer than 10 bytes");
      }
      // The 10th byte may only carry the top bit of a 64-bit payload.
      if (bytes == kMaxVarintBytes && (byte & 0xfe) != 0) {
        return Status::Corruption("varint overflows 64 bits");
      }
      raw |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
      if ((byte & 0x80) == 0) break;
    }
    const int64_t delta = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    // prev is always within [0, 2^32) here, so prev + delta cannot wrap
    // int64; range-check the sum directly against the id universe.
    const int64_t id = prev + delta;
    if (id < 0 || id >= static_cast<int64_t>(max_id_exclusive)) {
      return Status::Corruption("delta-decoded id out of range");
    }
    if (out != nullptr) out[i] = static_cast<NodeId>(id);
    prev = id;
  }
  if (consumed != nullptr) *consumed = pos;
  return Status::OK();
}

void CompressedInCsr::Build(const EdgeId* row_begin, const EdgeId* row_end,
                            const NodeId* nbrs, size_t num_rows,
                            ThreadPool* pool) {
  offsets_.assign(num_rows + 1, 0);
  max_row_degree_ = 0;
  // Pass 1: per-row encoded lengths (stored shifted by one for the
  // in-place prefix sum below).
  ParallelFor(pool, num_rows, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const size_t k = static_cast<size_t>(row_end[v] - row_begin[v]);
      offsets_[v + 1] = RowEncodedLength(nbrs + row_begin[v], k);
    }
  });
  for (size_t v = 0; v < num_rows; ++v) {
    const size_t k = static_cast<size_t>(row_end[v] - row_begin[v]);
    max_row_degree_ = std::max(max_row_degree_, k);
    offsets_[v + 1] += offsets_[v];
  }
  bytes_.resize(offsets_[num_rows]);
  // Pass 2: fill each row's slice.
  ParallelFor(pool, num_rows, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const size_t k = static_cast<size_t>(row_end[v] - row_begin[v]);
      EncodeRowInto(nbrs + row_begin[v], k, bytes_.data() + offsets_[v]);
    }
  });
}

}  // namespace kernel
}  // namespace scholar
