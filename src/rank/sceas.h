#ifndef SCHOLARRANK_RANK_SCEAS_H_
#define SCHOLARRANK_RANK_SCEAS_H_

#include <string>

#include "rank/kernel/kernel_options.h"
#include "rank/ranker.h"

namespace scholar {

/// SceasRank (Sidiropoulos & Manolopoulos, 2005) — a scholarly-specific
/// PageRank variant designed to react faster to new articles: a citation
/// contributes a constant base credit `b` immediately, plus the citer's own
/// score attenuated by `a` (> 1), so an article does not need citers that
/// are themselves cited to start accumulating score:
///
///   s(v) = Σ_{u cites v} (s(u) + b) / (a · outdeg(u))
///
/// With a = e and b = 1 (the authors' values) the iteration is a
/// contraction (1/a < 1), so it converges without teleportation. Scores are
/// L1-normalized afterwards.
struct SceasOptions {
  /// Direct-citation credit added per citation.
  double b = 1.0;
  /// Attenuation of indirect (propagated) score; must be > 1.
  double a = 2.718281828459045;
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// Worker threads for the gather passes: 0 = hardware concurrency,
  /// 1 = serial. Bit-identical results at every setting.
  int threads = 0;
  /// Iteration-engine variant knobs (SIMD / precision / CSR layout /
  /// adaptive convergence); see rank/kernel/kernel_options.h.
  kernel::KernelOptions kernel;
};

class SceasRanker : public Ranker {
 public:
  explicit SceasRanker(SceasOptions options = {});

  std::string name() const override { return "sceas"; }
  bool SupportsSnapshotViews() const override { return true; }

  const SceasOptions& options() const { return options_; }

 private:
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  SceasOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_SCEAS_H_
