#include "rank/citerank.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace scholar {

CiteRankRanker::CiteRankRanker(CiteRankOptions options) : options_(options) {}

Result<RankResult> CiteRankRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.tau <= 0.0) {
    return Status::InvalidArgument("tau must be > 0, got " +
                                   std::to_string(options_.tau));
  }
  const CitationGraph& g = *ctx.graph;
  if (g.num_nodes() == 0) return RankResult{};

  const Year now = ctx.EffectiveNow();
  std::vector<double> jump(g.num_nodes());
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double age = std::max(0, now - g.year(v));
    jump[v] = std::exp(-age / options_.tau);
    total += jump[v];
  }
  for (double& j : jump) j /= total;

  PowerIterationOptions power = options_.power;
  power.threads = static_cast<int>(EffectiveThreads(power.threads, ctx));
  const std::vector<double> no_initial;
  return WeightedPowerIteration(
      g, /*edge_weights=*/{}, jump, power,
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial,
      ctx.scratch);
}

}  // namespace scholar
