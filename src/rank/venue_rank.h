#ifndef SCHOLARRANK_RANK_VENUE_RANK_H_
#define SCHOLARRANK_RANK_VENUE_RANK_H_

#include <string>
#include <vector>

#include "rank/ranker.h"

namespace scholar {

/// Venue-reinforced ranking — the venue-based heterogeneous baseline:
/// articles and venues reinforce each other, so a lightly-cited article in
/// a prestigious venue inherits part of the venue's standing (the signal
/// editors/reviewers contribute before any citations arrive):
///
///   prestige(j) = mean over articles of venue j of ñ(article)
///   s(i)        = lambda · ñ_cite(i) + (1 - lambda) · prestige(venue(i))
///
/// where ñ_cite is the midrank-percentile of age-normalized citation counts
/// and ñ re-percentiles s each round. Articles without a venue (-1) use the
/// global mean prestige. Requires RankContext.venues.
struct VenueRankOptions {
  /// Weight of the article's own citation evidence vs its venue prior.
  double lambda = 0.7;
  /// Reinforcement rounds (prestige and scores stabilize quickly).
  int iterations = 10;
};

class VenueRankRanker : public Ranker {
 public:
  explicit VenueRankRanker(VenueRankOptions options = {});

  std::string name() const override { return "venuerank"; }

  const VenueRankOptions& options() const { return options_; }

 private:
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  VenueRankOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_VENUE_RANK_H_
