#ifndef SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_
#define SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_

#include <string>
#include <vector>

#include "rank/pagerank.h"
#include "rank/ranker.h"
#include "util/mutex.h"

namespace scholar {

/// Parameters of Time-Weighted PageRank (the paper's base ranker).
struct TwprOptions {
  /// Exponential decay rate, per year, of the weight a citing article
  /// propagates to a reference: w(u,v) = exp(-sigma * (t(u) - t(v))).
  /// sigma = 0 recovers classic PageRank edge weighting.
  double sigma = 0.4;

  /// When true, the teleport distribution favours recent articles:
  /// jump(v) ∝ exp(-rho * (now - t(v))). When false (the default), the jump
  /// is uniform and the time signal enters only through edge weights.
  bool recency_jump = false;

  /// Decay rate of the recency jump (only used when recency_jump is true).
  double rho = 0.1;

  PowerIterationOptions power = {};
};

/// Time-Weighted PageRank.
///
/// Intuition: when article u distributes its importance over its reference
/// list, a reference published long before u contributed "old" knowledge
/// whose influence on u has decayed; a contemporaneous reference carries a
/// fresher, stronger endorsement. TWPR therefore splits u's score over its
/// references proportionally to exp(-sigma * gap(u, v)) where
/// gap = max(0, t(u) - t(v)). Backward (time-travel) citations found in
/// dirty data are treated as gap 0.
class TimeWeightedPageRank : public Ranker {
 public:
  explicit TimeWeightedPageRank(TwprOptions options = {});

  std::string name() const override { return "twpr"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;
  bool SupportsSnapshotViews() const override { return true; }

  const TwprOptions& options() const { return options_; }

  /// Exposed for tests and the ablation bench: per-edge weights aligned
  /// with graph.out_neighbors(). `pool` (optional) parallelizes the edge
  /// sweep; the result is bit-identical with and without it.
  static std::vector<double> ComputeEdgeWeights(const CitationGraph& graph,
                                                double sigma,
                                                ThreadPool* pool = nullptr);

  /// Same weights in *in-edge* order (aligned with graph.in_neighbors()):
  /// entry p is exp(-sigma * gap(citer, row owner)). The view solver's
  /// pull-gather consumes this order directly, so no per-snapshot scatter
  /// pass is needed.
  static std::vector<double> ComputeInEdgeWeights(const CitationGraph& graph,
                                                  double sigma,
                                                  ThreadPool* pool = nullptr);

  /// Exposed for tests: the recency teleport distribution (sums to 1).
  /// `pool` (optional) parallelizes the sweep; the normalizing total is an
  /// ordered per-chunk reduction, so the result is bit-identical with and
  /// without it.
  static std::vector<double> ComputeRecencyJump(const CitationGraph& graph,
                                                double rho, Year now,
                                                ThreadPool* pool = nullptr);

  /// Span core of ComputeRecencyJump: the distribution over
  /// `years[0 .. n)`. A snapshot view passes the prefix of its sorted
  /// parent's year array, giving the same chunk geometry — and therefore
  /// bit-identical output — as the materialized snapshot of the same n.
  static std::vector<double> ComputeRecencyJump(const Year* years, size_t n,
                                                double rho, Year now,
                                                ThreadPool* pool = nullptr);

 private:
  TwprOptions options_;
};

/// Compute-once, share-everywhere store for TWPR's exponential-decay edge
/// weights on one (graph, sigma) pair. The weights depend only on the year
/// gap across each edge, so they are invariant across temporal snapshots of
/// the graph — the ensemble computes them once on the full sorted parent and
/// every per-snapshot rank reuses them read-only through the view solver.
///
/// Thread-safe: the first caller computes under the lock, concurrent callers
/// block and then share the result. All callers must pass the same graph and
/// sigma for the lifetime of the cache (checked).
class TwprWeightCache {
 public:
  struct Weights {
    std::vector<double> out_order;  // aligned with graph.out_neighbors()
    std::vector<double> in_order;   // aligned with graph.in_neighbors()
  };

  /// Returns the weights of `graph` at `sigma`, computing them on the first
  /// call (`pool`, optional, parallelizes only that computation). The
  /// returned reference is valid and immutable for the cache's lifetime.
  const Weights& GetOrCompute(const CitationGraph& graph, double sigma,
                              ThreadPool* pool = nullptr);

 private:
  Mutex mu_;
  bool ready_ GUARDED_BY(mu_) = false;
  const CitationGraph* graph_ GUARDED_BY(mu_) = nullptr;
  double sigma_ GUARDED_BY(mu_) = 0.0;
  Weights weights_ GUARDED_BY(mu_);
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_
