#ifndef SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_
#define SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_

#include <string>
#include <vector>

#include "rank/pagerank.h"
#include "rank/ranker.h"

namespace scholar {

/// Parameters of Time-Weighted PageRank (the paper's base ranker).
struct TwprOptions {
  /// Exponential decay rate, per year, of the weight a citing article
  /// propagates to a reference: w(u,v) = exp(-sigma * (t(u) - t(v))).
  /// sigma = 0 recovers classic PageRank edge weighting.
  double sigma = 0.4;

  /// When true, the teleport distribution favours recent articles:
  /// jump(v) ∝ exp(-rho * (now - t(v))). When false (the default), the jump
  /// is uniform and the time signal enters only through edge weights.
  bool recency_jump = false;

  /// Decay rate of the recency jump (only used when recency_jump is true).
  double rho = 0.1;

  PowerIterationOptions power = {};
};

/// Time-Weighted PageRank.
///
/// Intuition: when article u distributes its importance over its reference
/// list, a reference published long before u contributed "old" knowledge
/// whose influence on u has decayed; a contemporaneous reference carries a
/// fresher, stronger endorsement. TWPR therefore splits u's score over its
/// references proportionally to exp(-sigma * gap(u, v)) where
/// gap = max(0, t(u) - t(v)). Backward (time-travel) citations found in
/// dirty data are treated as gap 0.
class TimeWeightedPageRank : public Ranker {
 public:
  explicit TimeWeightedPageRank(TwprOptions options = {});

  std::string name() const override { return "twpr"; }
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  const TwprOptions& options() const { return options_; }

  /// Exposed for tests and the ablation bench: per-edge weights aligned
  /// with graph.out_neighbors(). `pool` (optional) parallelizes the edge
  /// sweep; the result is bit-identical with and without it.
  static std::vector<double> ComputeEdgeWeights(const CitationGraph& graph,
                                                double sigma,
                                                ThreadPool* pool = nullptr);

  /// Exposed for tests: the recency teleport distribution (sums to 1).
  /// `pool` (optional) parallelizes the sweep; the normalizing total is an
  /// ordered per-chunk reduction, so the result is bit-identical with and
  /// without it.
  static std::vector<double> ComputeRecencyJump(const CitationGraph& graph,
                                                double rho, Year now,
                                                ThreadPool* pool = nullptr);

 private:
  TwprOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_TIME_WEIGHTED_PAGERANK_H_
