#include "rank/katz.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_access.h"
#include "rank/kernel/gather_engine.h"
#include "util/parallel_for.h"

namespace scholar {
namespace {

/// Chunk size of the per-node loops; fixed so the chunked residual/mass
/// reductions are thread-count independent.
constexpr size_t kNodeGrain = 2048;

}  // namespace

KatzRanker::KatzRanker(KatzOptions options) : options_(options) {}

Result<RankResult> KatzRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false,
                                        /*requires_venues=*/false,
                                        /*accepts_views=*/true));
  if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1), got " +
                                   std::to_string(options_.alpha));
  }
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = ctx.NumNodes();
  if (n == 0) return RankResult{};

  const size_t workers = EffectiveThreads(options_.threads, ctx);
  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();
  ViewRowEnds rows;
  const GraphAccess g = ctx.view != nullptr ? AccessOf(*ctx.view, &rows, pool)
                                            : AccessOf(*ctx.graph);

  // s <- alpha * A^T (s + 1), evaluated as a pull: v gathers
  // alpha * (s(u) + 1) over its citers u, so no write ever leaves v's slot.
  // contribution[] hoists the per-source term out of the gather.
  //
  // A warm-start seed replaces the zero start; the iteration is a
  // contraction with a unique fixed point, so the seed never changes the
  // answer, only the number of rounds needed to reach it. Callers seeding
  // from a previous RankResult should rescale by its score_mass — the
  // fixed point is not a distribution, and a unit-mass seed is far from it.
  std::vector<double> scores(n, 0.0);
  if (ctx.initial_scores != nullptr && !ctx.initial_scores->empty()) {
    scores = *ctx.initial_scores;
  }
  std::vector<double> contribution(n);
  const size_t chunks = ChunkCount(n, kNodeGrain);
  std::vector<double> partial_residual(chunks, 0.0);
  std::vector<double> partial_mass(chunks, 0.0);
  kernel::GatherEngine engine;
  SCHOLAR_RETURN_NOT_OK(
      engine.Init(g, kernel::GatherDirection::kInEdges, options_.kernel, pool));
  RankResult result;
  result.converged = false;
  // Divergence guard: if the total mass exceeds this, alpha is beyond the
  // spectral radius and the series cannot converge.
  const double mass_limit = 1e12 * static_cast<double>(n);
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        contribution[u] = options_.alpha * (scores[u] + 1.0);
      }
    });
    const double* gathered = engine.Gather(contribution.data(), nullptr);
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double residual_part = 0.0;
      double mass_part = 0.0;
      for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
        const double acc = gathered[v];
        residual_part += std::abs(acc - scores[v]);
        mass_part += acc;
        scores[v] = acc;
      }
      partial_residual[chunk] = residual_part;
      partial_mass[chunk] = mass_part;
    });
    double residual = 0.0;
    double mass = 0.0;
    for (size_t c = 0; c < chunks; ++c) {
      residual += partial_residual[c];
      mass += partial_mass[c];
    }
    result.iterations = iter;
    result.final_residual = residual;
    if (mass > mass_limit) {
      return Status::FailedPrecondition(
          "Katz diverged: alpha=" + std::to_string(options_.alpha) +
          " exceeds 1/lambda_max of this citation network");
    }
    if (residual < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  // L1-normalize so scores are comparable across graphs; the pre-division
  // mass is reported so warm-start callers can undo the normalization.
  double total = 0.0;
  for (double v : scores) total += v;
  if (total > 0.0) {
    for (double& v : scores) v /= total;
    result.score_mass = total;
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
