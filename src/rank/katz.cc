#include "rank/katz.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace scholar {

KatzRanker::KatzRanker(KatzOptions options) : options_(options) {}

Result<RankResult> KatzRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1), got " +
                                   std::to_string(options_.alpha));
  }
  if (options_.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const CitationGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  if (n == 0) return RankResult{};

  // s <- alpha * A^T (s + 1): each citation u->v contributes
  // alpha * (s(u) + 1) to v.
  std::vector<double> scores(n, 0.0);
  std::vector<double> next(n);
  RankResult result;
  result.converged = false;
  // Divergence guard: if the total mass exceeds this, alpha is beyond the
  // spectral radius and the series cannot converge.
  const double mass_limit = 1e12 * static_cast<double>(n);
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const double contribution = options_.alpha * (scores[u] + 1.0);
      for (NodeId v : g.References(u)) next[v] += contribution;
    }
    double residual = 0.0;
    double mass = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      residual += std::abs(next[v] - scores[v]);
      mass += next[v];
    }
    scores.swap(next);
    result.iterations = iter;
    result.final_residual = residual;
    if (mass > mass_limit) {
      return Status::FailedPrecondition(
          "Katz diverged: alpha=" + std::to_string(options_.alpha) +
          " exceeds 1/lambda_max of this citation network");
    }
    if (residual < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  // L1-normalize so scores are comparable across graphs.
  double total = 0.0;
  for (double s : scores) total += s;
  if (total > 0.0) {
    for (double& s : scores) s /= total;
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
