#include "rank/gauss_seidel.h"

#include <cmath>
#include <string>
#include <utility>

namespace scholar {

Result<RankResult> GaussSeidelPageRank(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!edge_weights.empty() && edge_weights.size() != m) {
    return Status::InvalidArgument("edge_weights size mismatch");
  }
  if (!jump.empty()) {
    if (jump.size() != n) {
      return Status::InvalidArgument("jump size mismatch");
    }
    double sum = 0.0;
    for (double j : jump) {
      if (j < 0.0) return Status::InvalidArgument("negative jump probability");
      sum += j;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("jump vector must sum to 1");
    }
  }
  if (!initial_scores.empty() && initial_scores.size() != n) {
    return Status::InvalidArgument("initial_scores size mismatch");
  }
  if (n == 0) return RankResult{};

  // Transition probabilities on incoming edges: in_transition[e] belongs to
  // the in-CSR slot e of in_neighbors(). Built with the same ascending-u
  // scan that FromCsr used, so slots line up.
  std::vector<double> in_transition(m);
  std::vector<bool> dangling(n, false);
  {
    std::vector<EdgeId> cursor(graph.in_offsets().begin(),
                               graph.in_offsets().end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      const EdgeId begin = graph.out_offsets()[u];
      const EdgeId end = graph.out_offsets()[u + 1];
      double row_sum = 0.0;
      for (EdgeId e = begin; e < end; ++e) {
        double w = edge_weights.empty() ? 1.0 : edge_weights[e];
        if (w < 0.0) return Status::InvalidArgument("negative edge weight");
        row_sum += w;
      }
      if (row_sum <= 0.0) {
        dangling[u] = true;
        // Slots still need filling to keep cursors aligned.
        for (EdgeId e = begin; e < end; ++e) {
          in_transition[cursor[graph.out_neighbors()[e]]++] = 0.0;
        }
        continue;
      }
      for (EdgeId e = begin; e < end; ++e) {
        double w = edge_weights.empty() ? 1.0 : edge_weights[e];
        in_transition[cursor[graph.out_neighbors()[e]]++] = w / row_sum;
      }
    }
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> scores(n, uniform);
  if (!initial_scores.empty()) {
    double total = 0.0;
    bool valid = true;
    for (double s : initial_scores) {
      if (s < 0.0) {
        valid = false;
        break;
      }
      total += s;
    }
    if (valid && total > 0.0) {
      for (NodeId v = 0; v < n; ++v) scores[v] = initial_scores[v] / total;
    }
  }

  RankResult result;
  result.converged = false;
  const double d = options.damping;
  for (int sweep = 1; sweep <= options.max_iterations; ++sweep) {
    // Lagged dangling mass (refreshed once per sweep).
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (dangling[u]) dangling_mass += scores[u];
    }
    const double teleport = d * dangling_mass + (1.0 - d);
    double residual = 0.0;
    // Descending sweep: citers have larger ids than their references in
    // chronologically ordered citation graphs, so most reads hit values
    // already updated this sweep.
    for (NodeId v = n; v-- > 0;) {
      double incoming = 0.0;
      const EdgeId begin = graph.in_offsets()[v];
      const EdgeId end = graph.in_offsets()[v + 1];
      for (EdgeId e = begin; e < end; ++e) {
        incoming += scores[graph.in_neighbors()[e]] * in_transition[e];
      }
      const double jv = jump.empty() ? uniform : jump[v];
      const double updated = d * incoming + teleport * jv;
      residual += std::abs(updated - scores[v]);
      scores[v] = updated;
    }
    result.iterations = sweep;
    result.final_residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // In-sweep updates drift total mass slightly off 1; renormalize.
  double total = 0.0;
  for (double s : scores) total += s;
  if (total > 0.0) {
    for (double& s : scores) s /= total;
  }
  result.scores = std::move(scores);
  return result;
}

Result<RankResult> GaussSeidelPageRankRanker::RankImpl(
    const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  const std::vector<double> no_initial;
  return GaussSeidelPageRank(
      *ctx.graph, /*edge_weights=*/{}, /*jump=*/{}, options_,
      ctx.initial_scores != nullptr ? *ctx.initial_scores : no_initial);
}

}  // namespace scholar
