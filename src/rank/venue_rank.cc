#include "rank/venue_rank.h"

#include <algorithm>
#include <string>
#include <utility>

namespace scholar {

VenueRankRanker::VenueRankRanker(VenueRankOptions options)
    : options_(options) {}

Result<RankResult> VenueRankRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(
      ValidateContext(ctx, /*requires_authors=*/false,
                      /*requires_venues=*/true));
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1], got " +
                                   std::to_string(options_.lambda));
  }
  if (options_.iterations <= 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  const CitationGraph& g = *ctx.graph;
  const std::vector<int32_t>& venues = *ctx.venues;
  const size_t n = g.num_nodes();
  if (n == 0) return RankResult{};

  int32_t max_venue = -1;
  for (int32_t v : venues) {
    if (v < -1) {
      return Status::InvalidArgument("venue index below -1");
    }
    max_venue = std::max(max_venue, v);
  }
  const size_t num_venues = static_cast<size_t>(max_venue) + 1;

  // Citation evidence: age-normalized in-degree, percentile-normalized so
  // the venue prior mixes on a comparable scale.
  const Year now = ctx.EffectiveNow();
  std::vector<double> cite_evidence(n);
  for (NodeId i = 0; i < n; ++i) {
    const double age = std::max(1, now - g.year(i) + 1);
    cite_evidence[i] = static_cast<double>(g.InDegree(i)) / age;
  }
  cite_evidence = MidrankPercentiles(cite_evidence);

  std::vector<double> scores = cite_evidence;
  std::vector<double> prestige(num_venues, 0.5);
  RankResult result;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Venue pass: prestige = mean normalized article standing.
    std::vector<double> sums(num_venues, 0.0);
    std::vector<size_t> counts(num_venues, 0);
    std::vector<double> normalized = MidrankPercentiles(scores);
    double global_sum = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      global_sum += normalized[i];
      if (venues[i] >= 0) {
        sums[venues[i]] += normalized[i];
        ++counts[venues[i]];
      }
    }
    const double global_mean = global_sum / static_cast<double>(n);
    for (size_t j = 0; j < num_venues; ++j) {
      prestige[j] = counts[j] > 0
                        ? sums[j] / static_cast<double>(counts[j])
                        : global_mean;
    }
    // Article pass.
    for (NodeId i = 0; i < n; ++i) {
      const double prior =
          venues[i] >= 0 ? prestige[venues[i]] : global_mean;
      scores[i] = options_.lambda * cite_evidence[i] +
                  (1.0 - options_.lambda) * prior;
    }
    result.iterations = iter + 1;
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
