#ifndef SCHOLARRANK_RANK_GAUSS_SEIDEL_H_
#define SCHOLARRANK_RANK_GAUSS_SEIDEL_H_

#include <vector>

#include "graph/citation_graph.h"
#include "rank/pagerank.h"

namespace scholar {

/// Gauss-Seidel solver for the (weighted) PageRank linear system
///
///   (I - d·P^T) s = (1 - d)·j + d·(dangling mass)·j
///
/// Unlike Jacobi-style power iteration, each sweep uses already-updated
/// in-sweep values — the classic efficiency trick for PageRank at scale
/// (cf. Arasu et al., "PageRank computation and the structure of the
/// web"). Citation graphs are especially friendly: node ids ascend with
/// publication year and citations point backwards in time, so a
/// descending-id sweep propagates fresh values along almost every edge and
/// the solve becomes near-direct (measured: residual 1e-8 after ~16 sweeps
/// where power iteration needs ~64; see bench/fig6_convergence).
///
/// Note on dangling nodes: the dangling mass term couples every equation,
/// so it is refreshed once per sweep from the current iterate (lagged);
/// the fixed point is identical to WeightedPowerIteration's.
///
/// Same contract as WeightedPowerIteration: empty `edge_weights` = uniform,
/// empty `jump` = uniform, optional warm start. Scores are renormalized to
/// sum to 1 on return.
Result<RankResult> GaussSeidelPageRank(
    const CitationGraph& graph, const std::vector<double>& edge_weights,
    const std::vector<double>& jump, const PowerIterationOptions& options,
    const std::vector<double>& initial_scores = {});

/// PageRank via Gauss-Seidel; drop-in replacement for PageRankRanker where
/// iteration count matters more than exact per-iteration reproducibility.
class GaussSeidelPageRankRanker : public Ranker {
 public:
  explicit GaussSeidelPageRankRanker(PowerIterationOptions options = {})
      : options_(options) {}

  std::string name() const override { return "pagerank_gs"; }

  const PowerIterationOptions& options() const { return options_; }

 private:
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  PowerIterationOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_GAUSS_SEIDEL_H_
