#ifndef SCHOLARRANK_RANK_FUTURERANK_H_
#define SCHOLARRANK_RANK_FUTURERANK_H_

#include <string>

#include "rank/ranker.h"

namespace scholar {

/// FutureRank (Sayyadi & Getoor, 2009) — a heterogeneous baseline that
/// predicts future impact by coupling three signals:
///   * structural: PageRank-style propagation over the citation network,
///   * social: mutual reinforcement with author scores over the
///     paper-author bipartite graph,
///   * temporal: a personalization term favouring recent articles,
///     time(v) ∝ exp(-rho * (now - t(v))).
///
/// Update rule per iteration (all vectors renormalized to sum 1):
///   r_a  =  Σ_{p ∈ papers(a)} s_p / |authors(p)|
///   s_v  =  alpha * Σ_{u cites v} s_u / outdeg(u)
///         + beta  * Σ_{a ∈ authors(v)} r_a / |papers(a)|
///         + gamma * time_v
///         + (1 - alpha - beta - gamma) / n
struct FutureRankOptions {
  double alpha = 0.4;  ///< Citation-structure weight.
  double beta = 0.1;   ///< Author-authority weight.
  double gamma = 0.4;  ///< Recency-personalization weight.
  double rho = 0.62;   ///< Recency decay rate (Sayyadi & Getoor's value).
  double tolerance = 1e-10;
  int max_iterations = 200;
};

class FutureRankRanker : public Ranker {
 public:
  explicit FutureRankRanker(FutureRankOptions options = {});

  std::string name() const override { return "futurerank"; }

  /// Requires ctx.authors; returns InvalidArgument otherwise.
  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  const FutureRankOptions& options() const { return options_; }

 private:
  FutureRankOptions options_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_FUTURERANK_H_
