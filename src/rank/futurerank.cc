#include "rank/futurerank.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace scholar {

FutureRankRanker::FutureRankRanker(FutureRankOptions options)
    : options_(options) {}

Result<RankResult> FutureRankRanker::RankImpl(const RankContext& ctx) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/true));
  const FutureRankOptions& o = options_;
  if (o.alpha < 0 || o.beta < 0 || o.gamma < 0 ||
      o.alpha + o.beta + o.gamma > 1.0 + 1e-12) {
    return Status::InvalidArgument(
        "FutureRank weights must be non-negative with alpha+beta+gamma <= 1");
  }
  if (o.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const CitationGraph& g = *ctx.graph;
  const PaperAuthors& pa = *ctx.authors;
  const size_t n = g.num_nodes();
  const size_t num_authors = pa.num_authors();
  if (n == 0) return RankResult{};

  const Year now = ctx.EffectiveNow();
  std::vector<double> time_term(n);
  double time_total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    time_term[v] = std::exp(-o.rho * std::max(0, now - g.year(v)));
    time_total += time_term[v];
  }
  for (double& t : time_term) t /= time_total;

  const double base = (1.0 - o.alpha - o.beta - o.gamma) / n;
  std::vector<double> scores(n, 1.0 / n);
  std::vector<double> next(n);
  std::vector<double> author_scores(num_authors, 0.0);

  RankResult result;
  result.converged = false;
  for (int iter = 1; iter <= o.max_iterations; ++iter) {
    // Author pass: each paper splits its score equally among its authors.
    std::fill(author_scores.begin(), author_scores.end(), 0.0);
    for (NodeId p = 0; p < n; ++p) {
      auto authors = pa.AuthorsOf(p);
      if (authors.empty()) continue;
      const double share = scores[p] / static_cast<double>(authors.size());
      for (AuthorId a : authors) author_scores[a] += share;
    }

    // Paper pass.
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      auto refs = g.References(u);
      if (refs.empty()) {
        dangling_mass += scores[u];
        continue;
      }
      const double share = scores[u] / static_cast<double>(refs.size());
      for (NodeId v : refs) next[v] += share;
    }
    // Dangling citation mass is spread uniformly so the structural part
    // remains stochastic.
    const double dangling_share = dangling_mass / static_cast<double>(n);

    double residual = 0.0;
    double sum = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double author_part = 0.0;
      for (AuthorId a : pa.AuthorsOf(v)) {
        const size_t cnt = pa.PaperCount(a);
        if (cnt > 0) author_part += author_scores[a] / static_cast<double>(cnt);
      }
      double nv = o.alpha * (next[v] + dangling_share) +
                  o.beta * author_part + o.gamma * time_term[v] + base;
      next[v] = nv;
      sum += nv;
    }
    // Renormalize (the author term is not exactly stochastic when papers
    // have no authors or author paper counts differ).
    for (NodeId v = 0; v < n; ++v) {
      next[v] /= sum;
      residual += std::abs(next[v] - scores[v]);
    }
    scores.swap(next);
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < o.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace scholar
