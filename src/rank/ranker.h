#ifndef SCHOLARRANK_RANK_RANKER_H_
#define SCHOLARRANK_RANK_RANKER_H_

#include <string>
#include <vector>

#include "graph/bipartite.h"
#include "graph/citation_graph.h"
#include "util/status.h"

namespace scholar {

struct PowerIterationScratch;  // rank/pagerank.h
class SnapshotView;            // graph/temporal_csr.h
class TwprWeightCache;         // rank/time_weighted_pagerank.h

/// Everything a ranker may consume. Exactly one of `graph` and `view` is
/// mandatory; rankers that need more (FutureRank needs `authors`) return
/// InvalidArgument when it is missing, so that capability mismatches surface
/// as Status, not crashes.
struct RankContext {
  const CitationGraph* graph = nullptr;
  /// Zero-copy temporal snapshot to rank instead of a full graph. Only
  /// rankers whose SupportsSnapshotViews() returns true accept it; node ids
  /// in scores/initial_scores are the view's (sorted-space) ids. Mutually
  /// exclusive with `graph`.
  const SnapshotView* view = nullptr;
  /// Optional paper-author map; `authors->num_papers()` must equal
  /// `graph->num_nodes()` when present.
  const PaperAuthors* authors = nullptr;
  /// Optional per-article venue index (-1 = unknown); size must equal
  /// `graph->num_nodes()` when present. Required by VenueRank.
  const std::vector<int32_t>* venues = nullptr;
  /// "Current" year for recency terms; defaults to graph->max_year().
  Year now_year = kUnknownYear;
  /// Optional warm-start hint: a previous score vector for (a supergraph
  /// of) this graph. Iterative rankers may seed their power iteration from
  /// it to converge in fewer rounds; it never changes the fixed point.
  /// Size must equal `graph->num_nodes()` when present.
  const std::vector<double>* initial_scores = nullptr;
  /// Optional reusable solver state (buffers + worker pool) for
  /// power-iteration rankers; the ensemble shares one across its snapshot
  /// ranks so the O(n + m) solver buffers are allocated once, not k times.
  /// Never share one scratch between concurrent Rank calls.
  PowerIterationScratch* scratch = nullptr;
  /// Optional shared cache of TWPR's exponential-decay edge weights on the
  /// view's parent graph (they depend only on year gaps, so they are
  /// invariant across snapshots). Thread-safe; the ensemble shares one
  /// across all snapshot ranks. Only consulted when ranking a view.
  TwprWeightCache* twpr_cache = nullptr;
  /// Caps the worker threads a ranker may use for this call; 0 = no cap
  /// (the ranker's own `threads` option decides). The ensemble sets 1 on
  /// its per-snapshot sub-contexts when it already parallelizes across
  /// snapshots, so the two levels never oversubscribe the machine.
  int max_threads = 0;

  /// Node count of whichever of graph/view is set (0 when neither is).
  size_t NumNodes() const;

  /// now_year with the default applied (graph/view max_year()).
  Year EffectiveNow() const;
};

/// Output of one ranking run.
struct RankResult {
  /// Importance score per node; higher is more important. For random-walk
  /// rankers the scores form a probability distribution (sum to 1).
  std::vector<double> scores;
  /// Power-iteration rounds used; 0 for closed-form rankers.
  int iterations = 0;
  /// L1 change of the final iteration; 0 for closed-form rankers.
  double final_residual = 0.0;
  /// False when max_iterations was hit before reaching tolerance.
  bool converged = true;
  /// L1 mass of the solver's final iterate before output normalization
  /// (1.0 for rankers whose scores already form a distribution). Scaling
  /// `scores` by this reconstructs the iteration's natural magnitude — the
  /// correct warm-start seed for the affine-fixed-point kernels (Katz,
  /// SCEAS), whose iterates are not probability vectors.
  double score_mass = 1.0;
};

/// A query-independent article ranker.
///
/// Implementations are immutable after construction (all parameters are
/// constructor arguments) and therefore safe to reuse across graphs and
/// across threads.
class Ranker {
 public:
  virtual ~Ranker();

  /// Stable identifier ("pagerank", "twpr", ...), used by the registry and
  /// in experiment output.
  virtual std::string name() const = 0;

  /// Ranks all articles of `ctx.graph`.
  Result<RankResult> Rank(const RankContext& ctx) const {
    return RankImpl(ctx);
  }

  /// Convenience overload for graph-only rankers.
  Result<RankResult> Rank(const CitationGraph& graph) const {
    RankContext ctx;
    ctx.graph = &graph;
    return RankImpl(ctx);
  }

  /// True when RankImpl accepts RankContext.view (a zero-copy temporal
  /// snapshot) in place of a full graph. Callers like the ensemble use this
  /// to decide between the view path and materialized snapshots.
  virtual bool SupportsSnapshotViews() const { return false; }

 private:
  /// The algorithm. Implementations validate the context themselves (see
  /// ValidateContext).
  virtual Result<RankResult> RankImpl(const RankContext& ctx) const = 0;
};

/// Dense ranks (0 = best) from scores, descending; ties broken by node id so
/// results are deterministic.
std::vector<uint32_t> ScoresToRanks(const std::vector<double>& scores);

/// Rank percentiles in (0, 1]: best article -> 1.0, worst -> 1/n. Ties
/// broken by node id.
std::vector<double> RankPercentiles(const std::vector<double>& scores);

/// Midrank percentiles: tied scores share the average percentile of their
/// positions (so equal scores map to equal percentiles). Use this wherever
/// percentiles feed further computation — deterministic id tie-breaking
/// would otherwise inject a systematic bias into the large tie groups that
/// PageRank-style scores produce (e.g., all uncited articles tie exactly).
std::vector<double> MidrankPercentiles(const std::vector<double>& scores);

/// Indices of the k highest-scoring articles, best first (deterministic tie
/// break by node id). k is clamped to scores.size().
std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k);

/// Validates a context (exactly one of graph/view set, optional-field
/// shapes). Shared by ranker implementations. Rankers that rank views pass
/// `accepts_views = true`; everyone else rejects a view context with
/// InvalidArgument.
Status ValidateContext(const RankContext& ctx, bool requires_authors,
                       bool requires_venues = false,
                       bool accepts_views = false);

/// Worker count a ranker should use: `option_threads` resolved (0 = auto =
/// hardware concurrency) and clamped by `ctx.max_threads`. Shared by every
/// iterative ranker implementation.
size_t EffectiveThreads(int option_threads, const RankContext& ctx);

}  // namespace scholar

#endif  // SCHOLARRANK_RANK_RANKER_H_
