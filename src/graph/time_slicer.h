#ifndef SCHOLARRANK_GRAPH_TIME_SLICER_H_
#define SCHOLARRANK_GRAPH_TIME_SLICER_H_

#include <vector>

#include "graph/citation_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace scholar {

/// One accumulative temporal snapshot: the subgraph induced by every article
/// published in or before `boundary_year`, with node-id mappings back to the
/// parent graph.
struct Snapshot {
  CitationGraph graph;
  Year boundary_year = kUnknownYear;
  /// snapshot node id -> parent node id (size = graph.num_nodes()).
  std::vector<NodeId> to_parent;
  /// parent node id -> snapshot node id, kInvalidNode when absent
  /// (size = parent num_nodes()).
  std::vector<NodeId> from_parent;
};

/// Extracts the snapshot of `parent` at `boundary_year`. Nodes keep their
/// relative order, so snapshot ids are monotone in parent ids. A boundary
/// before the earliest publication year yields a valid empty snapshot whose
/// `boundary_year` is kUnknownYear.
Snapshot ExtractSnapshot(const CitationGraph& parent, Year boundary_year);

/// Extracts the subgraph induced by an arbitrary keep-mask (true = keep).
/// `mask.size()` must equal `parent.num_nodes()`. `boundary_year` of the
/// result is the maximum year among kept nodes.
Snapshot ExtractInducedSubgraph(const CitationGraph& parent,
                                const std::vector<bool>& mask);

/// Returns a copy of `parent` keeping each edge independently with
/// probability `keep_fraction` (deterministic in `seed`). Node set is
/// unchanged. Used by the sparsity-robustness experiment (Fig. 5).
CitationGraph SampleEdges(const CitationGraph& parent, double keep_fraction,
                          uint64_t seed);

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_TIME_SLICER_H_
