#ifndef SCHOLARRANK_GRAPH_TEMPORAL_CSR_H_
#define SCHOLARRANK_GRAPH_TEMPORAL_CSR_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/types.h"

namespace scholar {

class SnapshotView;

/// Build-once time-prefix CSR over a citation graph.
///
/// Accumulative snapshots G_1 ⊆ G_2 ⊆ ... ⊆ G_k along the time axis are
/// nested prefixes of one relabeled graph: sort nodes stably by publication
/// year and every snapshot "articles published through year T" becomes the id
/// range [0, NodesThrough(T)). Because adjacency rows of the relabeled graph
/// are sorted ascending by (permuted) endpoint id — i.e. by endpoint year —
/// the neighbors a snapshot keeps are a prefix of each row, recoverable with
/// one binary search against the snapshot's node count. One immutable edge
/// array therefore serves all k snapshots: memory goes from k·(V+E) for
/// materialized copies to V+E (+k boundary offsets) shared by every view.
///
/// When the parent's years are already non-decreasing (true for every corpus
/// this library generates, where ids are assigned in publication order) the
/// permutation is the identity and the parent graph itself is shared by
/// pointer: building the index is then a single O(V) scan and views are
/// bit-compatible with the parent's node numbering.
///
/// Thread-safety: immutable after construction; concurrent reads (including
/// concurrent MakeView calls) are safe.
class TemporalCsr {
 public:
  /// Indexes `parent`. The caller keeps `parent` alive for the lifetime of
  /// this object and of every view created from it.
  explicit TemporalCsr(const CitationGraph& parent);

  /// The year-sorted relabeling of the parent (the parent itself when the
  /// permutation is the identity). Snapshot views are prefixes of this graph.
  const CitationGraph& sorted_graph() const { return *sorted_; }

  /// True when the parent's node ids were already year-monotone and no
  /// relabeling was needed.
  bool is_identity() const { return identity_; }

  /// Parent id of sorted id `s` / sorted id of parent id `p`.
  NodeId ToParent(NodeId s) const { return identity_ ? s : to_parent_[s]; }
  NodeId FromParent(NodeId p) const { return identity_ ? p : from_parent_[p]; }

  /// Number of nodes published in or before `boundary_year` — the node count
  /// of that snapshot, and the exclusive end of its sorted-id prefix.
  /// Nodes with unknown year sort first and belong to every snapshot.
  size_t NodesThrough(Year boundary_year) const;

  /// O(log k) zero-copy snapshot of all articles published through
  /// `boundary_year` (k = number of distinct years). The view borrows this
  /// index and is valid for its lifetime.
  SnapshotView MakeView(Year boundary_year) const;

  /// Bytes owned by this index beyond the parent graph: the permutation
  /// arrays, the boundary offsets, and (only when the permutation is not the
  /// identity) the relabeled graph. This is the entire per-ensemble snapshot
  /// structure cost; compare with k materialized CitationGraph copies.
  size_t ApproxBytes() const;

 private:
  const CitationGraph* sorted_ = nullptr;  // owned_sorted_ or the parent
  CitationGraph owned_sorted_;             // only populated when !identity_
  bool identity_ = false;
  std::vector<NodeId> to_parent_;    // empty when identity_
  std::vector<NodeId> from_parent_;  // empty when identity_
  // Per-boundary prefix offsets: distinct years ascending and, aligned with
  // them, how many sorted ids fall in or before each year.
  std::vector<Year> distinct_years_;
  std::vector<size_t> nodes_through_;
};

/// Zero-copy accumulative snapshot: the first `num_nodes()` ids of a
/// TemporalCsr's sorted graph. O(1) to copy, nothing owned. Adjacency spans
/// are prefixes of the sorted graph's rows: a neighbor id `>= num_nodes()`
/// lies outside the snapshot, and because rows are sorted ascending the kept
/// neighbors are exactly the row prefix below that bound (found by binary
/// search in Out/InDegree).
class SnapshotView {
 public:
  /// Empty view over nothing (num_nodes() == 0).
  SnapshotView() = default;

  SnapshotView(const TemporalCsr* tcsr, size_t node_count, Year boundary_year)
      : tcsr_(tcsr), num_nodes_(node_count), boundary_year_(boundary_year) {}

  size_t num_nodes() const { return num_nodes_; }

  /// The boundary year this view was created for; kUnknownYear for an empty
  /// view (mirroring ExtractSnapshot's empty-snapshot contract).
  Year boundary_year() const { return boundary_year_; }

  /// Index this view borrows from; null only for a default-constructed view.
  const TemporalCsr* temporal_csr() const { return tcsr_; }

  /// Publication year of view node `s` (a sorted id).
  Year year(NodeId s) const { return tcsr_->sorted_graph().year(s); }

  /// All years of the sorted graph; only the first num_nodes() entries
  /// belong to this view.
  const std::vector<Year>& parent_years() const {
    return tcsr_->sorted_graph().years();
  }

  /// Latest publication year in the view (== boundary clamp); kUnknownYear
  /// when empty.
  Year max_year() const {
    return num_nodes_ == 0 ? kUnknownYear
                           : tcsr_->sorted_graph().year(
                                 static_cast<NodeId>(num_nodes_ - 1));
  }

  /// Earliest publication year in the view; kUnknownYear when empty.
  Year min_year() const {
    return num_nodes_ == 0 ? kUnknownYear : tcsr_->sorted_graph().year(0);
  }

  /// References of `u` kept by this snapshot: the prefix of the sorted row
  /// with endpoint id < num_nodes().
  std::span<const NodeId> References(NodeId u) const {
    std::span<const NodeId> row = tcsr_->sorted_graph().References(u);
    return row.first(PrefixLength(row));
  }

  /// Citers of `v` kept by this snapshot.
  std::span<const NodeId> Citers(NodeId v) const {
    std::span<const NodeId> row = tcsr_->sorted_graph().Citers(v);
    return row.first(PrefixLength(row));
  }

  size_t OutDegree(NodeId u) const { return References(u).size(); }
  size_t InDegree(NodeId v) const { return Citers(v).size(); }

  /// Parent-graph id of view node `s` and back. Arithmetic on the
  /// permutation — no per-view id maps exist.
  NodeId ToParent(NodeId s) const { return tcsr_->ToParent(s); }
  NodeId FromParent(NodeId p) const { return tcsr_->FromParent(p); }

  /// Number of edges the snapshot keeps (O(V log d) count, not stored).
  size_t CountEdges() const;

 private:
  // Length of the kept prefix of a sorted adjacency row: neighbors are
  // ascending, so everything below num_nodes_ survives the time cut.
  size_t PrefixLength(std::span<const NodeId> row) const {
    const NodeId bound = static_cast<NodeId>(num_nodes_);
    if (row.empty() || row.back() < bound) return row.size();
    return static_cast<size_t>(
        std::lower_bound(row.begin(), row.end(), bound) - row.begin());
  }

  const TemporalCsr* tcsr_ = nullptr;
  size_t num_nodes_ = 0;
  Year boundary_year_ = kUnknownYear;
};

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_TEMPORAL_CSR_H_
