#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace scholar {

GraphStats ComputeGraphStats(const CitationGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  s.min_year = graph.min_year();
  s.max_year = graph.max_year();
  if (s.num_nodes == 0) return s;

  std::vector<size_t> in_degrees(s.num_nodes);
  for (NodeId u = 0; u < s.num_nodes; ++u) {
    size_t out_d = graph.OutDegree(u);
    size_t in_d = graph.InDegree(u);
    in_degrees[u] = in_d;
    if (out_d == 0) ++s.num_dangling;
    if (in_d == 0) ++s.num_uncited;
    s.max_out_degree = std::max(s.max_out_degree, out_d);
    s.max_in_degree = std::max(s.max_in_degree, in_d);
    ++s.year_histogram[graph.year(u)];
  }
  s.mean_out_degree = static_cast<double>(s.num_edges) / s.num_nodes;
  s.mean_in_degree = s.mean_out_degree;

  // Gini over in-degrees: G = (2 * sum_i i*x_(i) / (n * sum x)) - (n+1)/n.
  std::sort(in_degrees.begin(), in_degrees.end());
  double total = 0.0, weighted = 0.0;
  for (size_t i = 0; i < in_degrees.size(); ++i) {
    total += static_cast<double>(in_degrees[i]);
    weighted += static_cast<double>(i + 1) * in_degrees[i];
  }
  if (total > 0.0) {
    double n = static_cast<double>(s.num_nodes);
    s.in_degree_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }

  // Hill estimator for the tail exponent: alpha = 1 + k / sum(ln(d_i/d_min)).
  constexpr size_t kTailMin = 5;
  double log_sum = 0.0;
  size_t tail_count = 0;
  for (size_t d : in_degrees) {
    if (d >= kTailMin) {
      log_sum += std::log(static_cast<double>(d) / (kTailMin - 0.5));
      ++tail_count;
    }
  }
  if (tail_count >= 10 && log_sum > 0.0) {
    s.in_degree_powerlaw_alpha = 1.0 + static_cast<double>(tail_count) / log_sum;
  }
  return s;
}

std::vector<size_t> InDegreeHistogram(const CitationGraph& graph) {
  std::vector<size_t> hist;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    size_t d = graph.InDegree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

std::string ToString(const GraphStats& s) {
  std::ostringstream out;
  out << "nodes:            " << FormatWithCommas(static_cast<int64_t>(s.num_nodes)) << "\n"
      << "edges:            " << FormatWithCommas(static_cast<int64_t>(s.num_edges)) << "\n"
      << "years:            " << s.min_year << ".." << s.max_year << "\n"
      << "dangling:         " << FormatWithCommas(static_cast<int64_t>(s.num_dangling)) << "\n"
      << "uncited:          " << FormatWithCommas(static_cast<int64_t>(s.num_uncited)) << "\n"
      << "mean refs/paper:  " << FormatDouble(s.mean_out_degree, 2) << "\n"
      << "max in-degree:    " << s.max_in_degree << "\n"
      << "max out-degree:   " << s.max_out_degree << "\n"
      << "in-degree gini:   " << FormatDouble(s.in_degree_gini, 3) << "\n"
      << "powerlaw alpha:   " << FormatDouble(s.in_degree_powerlaw_alpha, 2)
      << "\n";
  return out.str();
}

}  // namespace scholar
