#include "graph/time_slicer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace scholar {
namespace {

Snapshot ExtractByMask(const CitationGraph& parent,
                       const std::vector<bool>& keep) {
  const size_t n = parent.num_nodes();
  Snapshot snap;
  snap.from_parent.assign(n, kInvalidNode);

  size_t kept = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (keep[u]) {
      snap.from_parent[u] = static_cast<NodeId>(kept++);
      snap.to_parent.push_back(u);
    }
  }

  std::vector<Year> years(kept);
  std::vector<EdgeId> offsets(kept + 1, 0);
  std::vector<NodeId> neighbors;
  Year max_year = kUnknownYear;
  for (size_t i = 0; i < kept; ++i) {
    NodeId pu = snap.to_parent[i];
    years[i] = parent.year(pu);
    max_year = std::max(max_year, years[i]);
    for (NodeId pv : parent.References(pu)) {
      if (keep[pv]) neighbors.push_back(snap.from_parent[pv]);
    }
    offsets[i + 1] = neighbors.size();
  }
  // Parent rows are sorted by parent id and the mapping is monotone, so
  // snapshot rows remain sorted.
  snap.graph = CitationGraph::FromCsr(std::move(years), std::move(offsets),
                                      std::move(neighbors));
  snap.boundary_year = max_year;
  return snap;
}

}  // namespace

Snapshot ExtractSnapshot(const CitationGraph& parent, Year boundary_year) {
  std::vector<bool> keep(parent.num_nodes());
  for (NodeId u = 0; u < parent.num_nodes(); ++u) {
    keep[u] = parent.year(u) <= boundary_year;
  }
  Snapshot snap = ExtractByMask(parent, keep);
  // An empty result keeps the kUnknownYear sentinel from ExtractByMask: a
  // boundary before the earliest publication year has no meaningful clamp.
  if (snap.graph.num_nodes() > 0) snap.boundary_year = boundary_year;
  return snap;
}

Snapshot ExtractInducedSubgraph(const CitationGraph& parent,
                                const std::vector<bool>& mask) {
  SCHOLAR_CHECK_EQ(mask.size(), parent.num_nodes());
  return ExtractByMask(parent, mask);
}

CitationGraph SampleEdges(const CitationGraph& parent, double keep_fraction,
                          uint64_t seed) {
  SCHOLAR_CHECK_GE(keep_fraction, 0.0);
  SCHOLAR_CHECK_LE(keep_fraction, 1.0);
  Rng rng(seed);
  const size_t n = parent.num_nodes();
  std::vector<EdgeId> offsets(n + 1, 0);
  std::vector<NodeId> neighbors;
  neighbors.reserve(
      static_cast<size_t>(keep_fraction * parent.num_edges()) + 16);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : parent.References(u)) {
      if (rng.NextBernoulli(keep_fraction)) neighbors.push_back(v);
    }
    offsets[u + 1] = neighbors.size();
  }
  return CitationGraph::FromCsr(std::vector<Year>(parent.years()),
                                std::move(offsets), std::move(neighbors));
}

}  // namespace scholar
