#ifndef SCHOLARRANK_GRAPH_GRAPH_BUILDER_H_
#define SCHOLARRANK_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace scholar {

/// Mutable accumulator that validates and finalizes a CitationGraph.
///
/// Usage:
///   GraphBuilder b;
///   NodeId a = b.AddNode(1998);
///   NodeId c = b.AddNode(2004);
///   SCHOLAR_RETURN_NOT_OK(b.AddEdge(c, a));   // c cites a
///   SCHOLAR_ASSIGN_OR_RETURN(auto g, std::move(b).Build());
class GraphBuilder {
 public:
  struct Options {
    /// Drop duplicate (u,v) pairs instead of failing.
    bool dedup_parallel_edges = true;
    /// Drop self-citations (u,u) instead of failing.
    bool drop_self_loops = true;
    /// Reject edges where the citing article is older than the cited one
    /// (time-travel citations). Real datasets contain a few (errata,
    /// simultaneous publication), so the default is permissive.
    bool forbid_backward_time_edges = false;
  };

  GraphBuilder() = default;
  explicit GraphBuilder(Options options) : options_(options) {}

  /// Adds an article; returns its dense id (assigned sequentially).
  NodeId AddNode(Year year);

  /// Adds `count` articles all published in `year`; returns the first id.
  NodeId AddNodes(size_t count, Year year);

  /// Records citation u -> v. Both endpoints must already exist.
  Status AddEdge(NodeId u, NodeId v);

  /// Bulk variant of AddEdge.
  Status AddEdges(const std::vector<std::pair<NodeId, NodeId>>& edges);

  size_t num_nodes() const { return years_.size(); }
  /// Edges recorded so far (before dedup/self-loop filtering).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Finalizes into an immutable CSR graph. Consumes the builder.
  Result<CitationGraph> Build() &&;

 private:
  Options options_;
  std::vector<Year> years_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_GRAPH_BUILDER_H_
