#ifndef SCHOLARRANK_GRAPH_TYPES_H_
#define SCHOLARRANK_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace scholar {

/// Dense article index within one CitationGraph (0..n-1).
using NodeId = uint32_t;

/// Dense edge index within one CitationGraph (0..m-1).
using EdgeId = uint64_t;

/// Publication time, in whole years (e.g., 1998). The library only assumes
/// years are totally ordered integers; finer granularities can be encoded by
/// scaling (e.g., months since epoch).
using Year = int32_t;

/// Sentinel for "no node" (absent in a snapshot, unknown mapping, ...).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "unknown publication year".
inline constexpr Year kUnknownYear = std::numeric_limits<Year>::min();

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_TYPES_H_
