#ifndef SCHOLARRANK_GRAPH_GRAPH_IO_H_
#define SCHOLARRANK_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/citation_graph.h"
#include "util/status.h"

namespace scholar {

/// Native text format, line-oriented and diff-friendly:
///
///   #scholarrank-graph-v1
///   <num_nodes> <num_edges>
///   <year of node 0>
///   ...                      (num_nodes lines)
///   <src> <dst>              (num_edges lines, "src cites dst")
///
/// Comments ('#' at line start, after the signature) and blank lines are
/// ignored.
Status WriteGraphText(const CitationGraph& graph, std::ostream* out);
Status WriteGraphTextFile(const CitationGraph& graph,
                          const std::string& path);
Result<CitationGraph> ReadGraphText(std::istream* in);
Result<CitationGraph> ReadGraphTextFile(const std::string& path);

/// Compact binary format (little-endian, host-width assumptions documented
/// in the header record): magic "SRG1", then counts, then raw arrays.
/// ~10x smaller and ~50x faster to load than the text format.
Status WriteGraphBinary(const CitationGraph& graph, std::ostream* out);
Status WriteGraphBinaryFile(const CitationGraph& graph,
                            const std::string& path);
Result<CitationGraph> ReadGraphBinary(std::istream* in);
Result<CitationGraph> ReadGraphBinaryFile(const std::string& path);

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_GRAPH_IO_H_
