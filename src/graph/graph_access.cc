#include "graph/graph_access.h"

#include "graph/temporal_csr.h"
#include "util/parallel_for.h"

namespace scholar {
namespace {

constexpr size_t kRowGrain = 4096;

}  // namespace

GraphAccess AccessOf(const CitationGraph& graph) {
  GraphAccess a;
  a.num_nodes = graph.num_nodes();
  a.years = graph.years().data();
  a.out_begin = graph.out_offsets().data();
  a.out_end = graph.out_offsets().data() + 1;
  a.out_neighbors = graph.out_neighbors().data();
  a.in_begin = graph.in_offsets().data();
  a.in_end = graph.in_offsets().data() + 1;
  a.in_neighbors = graph.in_neighbors().data();
  return a;
}

GraphAccess AccessOf(const SnapshotView& view, ViewRowEnds* rows,
                     ThreadPool* pool) {
  GraphAccess a;
  const size_t n = view.num_nodes();
  a.num_nodes = n;
  if (n == 0) return a;

  const CitationGraph& g = view.temporal_csr()->sorted_graph();
  rows->out_end.resize(n);
  rows->in_end.resize(n);
  ParallelFor(pool, n, kRowGrain, [&](size_t begin, size_t end) {
    for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
      rows->out_end[u] = g.out_offsets()[u] + view.OutDegree(u);
      rows->in_end[u] = g.in_offsets()[u] + view.InDegree(u);
    }
  });
  a.years = g.years().data();
  a.out_begin = g.out_offsets().data();
  a.out_end = rows->out_end.data();
  a.out_neighbors = g.out_neighbors().data();
  a.in_begin = g.in_offsets().data();
  a.in_end = rows->in_end.data();
  a.in_neighbors = g.in_neighbors().data();
  return a;
}

}  // namespace scholar
