#ifndef SCHOLARRANK_GRAPH_COMPONENTS_H_
#define SCHOLARRANK_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/citation_graph.h"

namespace scholar {

/// Weakly connected components of a citation network (edge direction
/// ignored). Citation datasets are dominated by one giant component; the
/// size of the giant component and the count of isolated articles are
/// standard dataset-quality statistics (Table 1 material).
struct ComponentStats {
  size_t num_components = 0;
  /// Component label per node, in [0, num_components); labels are assigned
  /// in discovery order (BFS from node 0 upward).
  std::vector<uint32_t> labels;
  /// Nodes per component, indexed by label.
  std::vector<size_t> sizes;
  /// Size of the largest component (0 for an empty graph).
  size_t giant_size = 0;
  /// Number of isolated articles (no citations in either direction).
  size_t num_isolated = 0;
};

/// Computes weakly connected components with an iterative BFS
/// (O(nodes + edges), no recursion — safe for multi-million-node graphs).
ComponentStats ComputeWeakComponents(const CitationGraph& graph);

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_COMPONENTS_H_
