#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace scholar {

NodeId GraphBuilder::AddNode(Year year) {
  years_.push_back(year);
  return static_cast<NodeId>(years_.size() - 1);
}

NodeId GraphBuilder::AddNodes(size_t count, Year year) {
  NodeId first = static_cast<NodeId>(years_.size());
  years_.insert(years_.end(), count, year);
  return first;
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u >= years_.size() || v >= years_.size()) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(u) + "," + std::to_string(v) +
        ") references a node beyond " + std::to_string(years_.size()));
  }
  if (u == v) {
    if (options_.drop_self_loops) return Status::OK();
    return Status::InvalidArgument("self-citation at node " +
                                   std::to_string(u));
  }
  if (options_.forbid_backward_time_edges && years_[u] < years_[v]) {
    return Status::InvalidArgument(
        "time-travel citation: node " + std::to_string(u) + " (year " +
        std::to_string(years_[u]) + ") cites node " + std::to_string(v) +
        " (year " + std::to_string(years_[v]) + ")");
  }
  edges_.emplace_back(u, v);
  return Status::OK();
}

Status GraphBuilder::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (const auto& [u, v] : edges) {
    SCHOLAR_RETURN_NOT_OK(AddEdge(u, v));
  }
  return Status::OK();
}

Result<CitationGraph> GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end());
  if (options_.dedup_parallel_edges) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  } else {
    auto dup = std::adjacent_find(edges_.begin(), edges_.end());
    if (dup != edges_.end()) {
      return Status::InvalidArgument(
          "duplicate citation (" + std::to_string(dup->first) + "," +
          std::to_string(dup->second) + ")");
    }
  }

  const size_t n = years_.size();
  std::vector<EdgeId> offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) ++offsets[u + 1];
  for (size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> neighbors(edges_.size());
  // edges_ is sorted by (u, v), so a linear copy yields sorted rows.
  for (size_t i = 0; i < edges_.size(); ++i) neighbors[i] = edges_[i].second;

  return CitationGraph::FromCsr(std::move(years_), std::move(offsets),
                                std::move(neighbors));
}

}  // namespace scholar
