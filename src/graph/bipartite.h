#ifndef SCHOLARRANK_GRAPH_BIPARTITE_H_
#define SCHOLARRANK_GRAPH_BIPARTITE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace scholar {

/// Dense author index (0..num_authors-1), scoped to one PaperAuthors map.
using AuthorId = uint32_t;

/// Paper-author bipartite incidence in CSR form, used by FutureRank.
///
/// Immutable after FromLists(). Both directions are materialized: authors of
/// a paper, and papers of an author.
class PaperAuthors {
 public:
  PaperAuthors() = default;

  /// Builds from per-paper author lists. `lists.size()` defines the number
  /// of papers; author ids may be sparse, the maximum defines
  /// num_authors()-1.
  static PaperAuthors FromLists(
      const std::vector<std::vector<AuthorId>>& lists) {
    PaperAuthors pa;
    const size_t n = lists.size();
    pa.paper_offsets_.assign(n + 1, 0);
    AuthorId max_author = 0;
    bool any = false;
    for (size_t p = 0; p < n; ++p) {
      pa.paper_offsets_[p + 1] = pa.paper_offsets_[p] + lists[p].size();
      for (AuthorId a : lists[p]) {
        pa.paper_authors_.push_back(a);
        if (a > max_author) max_author = a;
        any = true;
      }
    }
    pa.num_authors_ = any ? static_cast<size_t>(max_author) + 1 : 0;

    pa.author_offsets_.assign(pa.num_authors_ + 1, 0);
    for (AuthorId a : pa.paper_authors_) ++pa.author_offsets_[a + 1];
    for (size_t i = 1; i <= pa.num_authors_; ++i) {
      pa.author_offsets_[i] += pa.author_offsets_[i - 1];
    }
    std::vector<uint64_t> cursor(pa.author_offsets_.begin(),
                                 pa.author_offsets_.end() - 1);
    pa.author_papers_.resize(pa.paper_authors_.size());
    for (size_t p = 0; p < n; ++p) {
      for (uint64_t e = pa.paper_offsets_[p]; e < pa.paper_offsets_[p + 1];
           ++e) {
        AuthorId a = pa.paper_authors_[e];
        pa.author_papers_[cursor[a]++] = static_cast<NodeId>(p);
      }
    }
    return pa;
  }

  size_t num_papers() const { return paper_offsets_.size() - 1; }
  size_t num_authors() const { return num_authors_; }
  size_t num_links() const { return paper_authors_.size(); }

  /// Authors of paper `p`, in insertion order.
  std::span<const AuthorId> AuthorsOf(NodeId p) const {
    return {paper_authors_.data() + paper_offsets_[p],
            paper_offsets_[p + 1] - paper_offsets_[p]};
  }

  /// Papers of author `a`, sorted by paper id.
  std::span<const NodeId> PapersOf(AuthorId a) const {
    return {author_papers_.data() + author_offsets_[a],
            author_offsets_[a + 1] - author_offsets_[a]};
  }

  size_t PaperCount(AuthorId a) const {
    return author_offsets_[a + 1] - author_offsets_[a];
  }

 private:
  std::vector<uint64_t> paper_offsets_{0};
  std::vector<AuthorId> paper_authors_;
  std::vector<uint64_t> author_offsets_{0};
  std::vector<NodeId> author_papers_;
  size_t num_authors_ = 0;
};

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_BIPARTITE_H_
