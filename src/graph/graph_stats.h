#ifndef SCHOLARRANK_GRAPH_GRAPH_STATS_H_
#define SCHOLARRANK_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/citation_graph.h"

namespace scholar {

/// Summary statistics of a citation network (Table 1 material).
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  Year min_year = kUnknownYear;
  Year max_year = kUnknownYear;
  size_t num_dangling = 0;          ///< Articles with an empty reference list.
  size_t num_uncited = 0;           ///< Articles with zero citations.
  double mean_out_degree = 0.0;     ///< Mean references per article.
  double mean_in_degree = 0.0;      ///< Mean citations per article.
  size_t max_in_degree = 0;
  size_t max_out_degree = 0;
  double in_degree_gini = 0.0;      ///< Citation-concentration Gini in [0,1].
  /// Estimated power-law exponent of the in-degree tail (Hill / MLE over
  /// degrees >= 5); 0 when too few cited nodes.
  double in_degree_powerlaw_alpha = 0.0;
  /// Articles per publication year.
  std::map<Year, size_t> year_histogram;
};

/// Computes all statistics in one pass (plus one sort for the Gini).
GraphStats ComputeGraphStats(const CitationGraph& graph);

/// In-degree histogram: result[d] = number of nodes with in-degree d.
std::vector<size_t> InDegreeHistogram(const CitationGraph& graph);

/// Multi-line human-readable rendering.
std::string ToString(const GraphStats& stats);

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_GRAPH_STATS_H_
