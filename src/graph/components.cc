#include "graph/components.h"

#include <algorithm>
#include <deque>

namespace scholar {

ComponentStats ComputeWeakComponents(const CitationGraph& graph) {
  const size_t n = graph.num_nodes();
  ComponentStats stats;
  stats.labels.assign(n, UINT32_MAX);

  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (stats.labels[root] != UINT32_MAX) continue;
    const uint32_t label = static_cast<uint32_t>(stats.num_components++);
    size_t size = 0;
    stats.labels[root] = label;
    frontier.push_back(root);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      ++size;
      for (NodeId v : graph.References(u)) {
        if (stats.labels[v] == UINT32_MAX) {
          stats.labels[v] = label;
          frontier.push_back(v);
        }
      }
      for (NodeId v : graph.Citers(u)) {
        if (stats.labels[v] == UINT32_MAX) {
          stats.labels[v] = label;
          frontier.push_back(v);
        }
      }
    }
    stats.sizes.push_back(size);
    if (size == 1) ++stats.num_isolated;
  }
  if (!stats.sizes.empty()) {
    stats.giant_size =
        *std::max_element(stats.sizes.begin(), stats.sizes.end());
  }
  return stats;
}

}  // namespace scholar
