#include "graph/temporal_csr.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace scholar {

TemporalCsr::TemporalCsr(const CitationGraph& parent) {
  const size_t n = parent.num_nodes();
  const std::vector<Year>& parent_years = parent.years();

  identity_ = std::is_sorted(parent_years.begin(), parent_years.end());
  if (identity_) {
    sorted_ = &parent;
  } else {
    // Stable year sort keeps same-year nodes in parent-id order, so the
    // relabeling is deterministic and same-year ties preserve locality.
    to_parent_.resize(n);
    std::iota(to_parent_.begin(), to_parent_.end(), NodeId{0});
    std::stable_sort(to_parent_.begin(), to_parent_.end(),
                     [&parent_years](NodeId a, NodeId b) {
                       return parent_years[a] < parent_years[b];
                     });
    from_parent_.resize(n);
    for (NodeId s = 0; s < n; ++s) from_parent_[to_parent_[s]] = s;

    std::vector<Year> years(n);
    std::vector<EdgeId> offsets(n + 1, 0);
    for (NodeId s = 0; s < n; ++s) {
      years[s] = parent_years[to_parent_[s]];
      offsets[s + 1] = offsets[s] + parent.OutDegree(to_parent_[s]);
    }
    // Emitting targets in ascending sorted order through per-source cursors
    // leaves every relabeled row sorted ascending — the prefix property
    // SnapshotView's binary search relies on.
    std::vector<NodeId> neighbors(parent.num_edges());
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId pu : parent.Citers(to_parent_[v])) {
        neighbors[cursor[from_parent_[pu]]++] = v;
      }
    }
    owned_sorted_ = CitationGraph::FromCsr(std::move(years), std::move(offsets),
                                           std::move(neighbors));
    sorted_ = &owned_sorted_;
  }

  const std::vector<Year>& sorted_years = sorted_->years();
  for (size_t i = 0; i < n; ++i) {
    if (i + 1 == n || sorted_years[i + 1] != sorted_years[i]) {
      distinct_years_.push_back(sorted_years[i]);
      nodes_through_.push_back(i + 1);
    }
  }
}

size_t TemporalCsr::NodesThrough(Year boundary_year) const {
  // Nodes with kUnknownYear sort first (the sentinel is INT32_MIN) and are
  // kept by every snapshot, matching ExtractSnapshot's keep-unknown policy.
  auto it = std::upper_bound(distinct_years_.begin(), distinct_years_.end(),
                             boundary_year);
  if (it == distinct_years_.begin()) return 0;
  return nodes_through_[static_cast<size_t>(it - distinct_years_.begin()) - 1];
}

SnapshotView TemporalCsr::MakeView(Year boundary_year) const {
  const size_t count = NodesThrough(boundary_year);
  return SnapshotView(this, count, count == 0 ? kUnknownYear : boundary_year);
}

size_t TemporalCsr::ApproxBytes() const {
  size_t bytes = to_parent_.size() * sizeof(NodeId) +
                 from_parent_.size() * sizeof(NodeId) +
                 distinct_years_.size() * sizeof(Year) +
                 nodes_through_.size() * sizeof(size_t);
  if (!identity_) {
    bytes += owned_sorted_.years().size() * sizeof(Year) +
             owned_sorted_.out_offsets().size() * sizeof(EdgeId) +
             owned_sorted_.out_neighbors().size() * sizeof(NodeId) +
             owned_sorted_.in_offsets().size() * sizeof(EdgeId) +
             owned_sorted_.in_neighbors().size() * sizeof(NodeId);
  }
  return bytes;
}

size_t SnapshotView::CountEdges() const {
  size_t edges = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) edges += OutDegree(u);
  return edges;
}

}  // namespace scholar
