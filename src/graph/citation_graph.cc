#include "graph/citation_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace scholar {

size_t CitationGraph::CountDangling() const {
  size_t count = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (IsDangling(u)) ++count;
  }
  return count;
}

bool CitationGraph::HasEdge(NodeId u, NodeId v) const {
  auto refs = References(u);
  return std::binary_search(refs.begin(), refs.end(), v);
}

CitationGraph CitationGraph::FromCsr(std::vector<Year> years,
                                     std::vector<EdgeId> out_offsets,
                                     std::vector<NodeId> out_neighbors) {
  const size_t n = years.size();
  SCHOLAR_CHECK_EQ(out_offsets.size(), n + 1);
  SCHOLAR_CHECK_EQ(out_offsets.front(), 0u);
  SCHOLAR_CHECK_EQ(out_offsets.back(), out_neighbors.size());

  CitationGraph g;
  g.years_ = std::move(years);
  g.out_offsets_ = std::move(out_offsets);
  g.out_neighbors_ = std::move(out_neighbors);

  // Build reverse adjacency by counting sort: stable, O(n + m), and yields
  // sorted in-neighbor lists because forward edges are scanned in order of
  // ascending source.
  std::vector<EdgeId> in_degree(n + 1, 0);
  for (NodeId v : g.out_neighbors_) {
    SCHOLAR_CHECK_LT(v, n);
    ++in_degree[v + 1];
  }
  g.in_offsets_.assign(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    g.in_offsets_[i] = g.in_offsets_[i - 1] + in_degree[i];
  }
  g.in_neighbors_.resize(g.out_neighbors_.size());
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (EdgeId e = g.out_offsets_[u]; e < g.out_offsets_[u + 1]; ++e) {
      NodeId v = g.out_neighbors_[e];
      g.in_neighbors_[cursor[v]++] = u;
    }
  }

  if (n > 0) {
    auto [mn, mx] = std::minmax_element(g.years_.begin(), g.years_.end());
    g.min_year_ = *mn;
    g.max_year_ = *mx;
  }
  return g;
}

bool CitationGraph::operator==(const CitationGraph& other) const {
  return years_ == other.years_ && out_offsets_ == other.out_offsets_ &&
         out_neighbors_ == other.out_neighbors_;
}

}  // namespace scholar
