#ifndef SCHOLARRANK_GRAPH_GRAPH_ACCESS_H_
#define SCHOLARRANK_GRAPH_GRAPH_ACCESS_H_

#include <cstddef>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/types.h"

namespace scholar {

class SnapshotView;
class ThreadPool;

/// Uniform zero-cost adjacency interface the ranking kernels iterate:
/// satisfied by a full CitationGraph and by a zero-copy SnapshotView. Eight
/// raw pointers, so one non-templated kernel body serves both without
/// virtual dispatch:
///
///   for (EdgeId p = a.in_begin[v]; p < a.in_end[v]; ++p)
///     acc += f(a.in_neighbors[p]);
///
/// For a full graph, row v spans [offsets[v], offsets[v+1]): `*_begin` and
/// `*_end` alias the same offsets array shifted by one. For a snapshot view,
/// `*_end` points at per-row prefix limits (see AccessOf(view)) while
/// `*_begin` and the neighbor/edge indexing still alias the *parent* CSR —
/// edge ids p are parent edge ids, so full-CSR-sized per-edge weight arrays
/// (e.g. the cached TWPR decay weights) index directly.
///
/// Borrows everything; the source graph/view (and ViewRowEnds) must outlive
/// the access struct.
struct GraphAccess {
  size_t num_nodes = 0;
  const Year* years = nullptr;
  const EdgeId* out_begin = nullptr;
  const EdgeId* out_end = nullptr;
  const NodeId* out_neighbors = nullptr;
  const EdgeId* in_begin = nullptr;
  const EdgeId* in_end = nullptr;
  const NodeId* in_neighbors = nullptr;

  size_t OutDegree(NodeId u) const {
    return static_cast<size_t>(out_end[u] - out_begin[u]);
  }
  size_t InDegree(NodeId v) const {
    return static_cast<size_t>(in_end[v] - in_begin[v]);
  }
};

/// Whole-graph access: aliases the graph's own CSR arrays, zero setup cost.
GraphAccess AccessOf(const CitationGraph& graph);

/// Backing storage for a view's per-row prefix limits. Reusable across
/// views (kernels keep one in their scratch); resized on each AccessOf.
struct ViewRowEnds {
  std::vector<EdgeId> out_end;
  std::vector<EdgeId> in_end;
};

/// Snapshot-view access: fills `rows` with the view's per-row kept-prefix
/// end offsets (one binary search per row, parallelized over `pool` when
/// given) and returns pointers into them plus the parent CSR. O(V log d)
/// setup, no edge data copied.
GraphAccess AccessOf(const SnapshotView& view, ViewRowEnds* rows,
                     ThreadPool* pool = nullptr);

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_GRAPH_ACCESS_H_
