#include "graph/graph_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace scholar {
namespace {

constexpr char kTextSignature[] = "#scholarrank-graph-v1";
constexpr char kBinaryMagic[4] = {'S', 'R', 'G', '1'};

/// Reads the next content line (skipping blanks and comments) into *line.
bool NextContentLine(std::istream* in, std::string* line) {
  while (std::getline(*in, *line)) {
    std::string_view trimmed = Trim(*line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    *line = std::string(trimmed);
    return true;
  }
  return false;
}

template <typename T>
void WriteRaw(std::ostream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteRawVector(std::ostream* out, const std::vector<T>& v) {
  if (!v.empty()) {
    out->write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool ReadRaw(std::istream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(*in);
}

template <typename T>
bool ReadRawVector(std::istream* in, size_t count, std::vector<T>* v) {
  // Chunked reads so that a corrupted (absurdly large) count fails with a
  // truncation error once the stream runs dry, instead of attempting one
  // giant allocation up front (which would throw bad_alloc).
  constexpr size_t kChunkElements = size_t{1} << 20;
  v->clear();
  while (v->size() < count) {
    const size_t batch = std::min(kChunkElements, count - v->size());
    const size_t old_size = v->size();
    v->resize(old_size + batch);
    in->read(reinterpret_cast<char*>(v->data() + old_size),
             static_cast<std::streamsize>(batch * sizeof(T)));
    if (!*in) return false;
  }
  return true;
}

}  // namespace

Status WriteGraphText(const CitationGraph& graph, std::ostream* out) {
  *out << kTextSignature << "\n"
       << graph.num_nodes() << " " << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    *out << graph.year(u) << "\n";
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.References(u)) {
      *out << u << " " << v << "\n";
    }
  }
  if (!*out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteGraphTextFile(const CitationGraph& graph,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteGraphText(graph, &out);
}

Result<CitationGraph> ReadGraphText(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || Trim(line) != kTextSignature) {
    return Status::Corruption("missing signature line '" +
                              std::string(kTextSignature) + "'");
  }
  if (!NextContentLine(in, &line)) {
    return Status::Corruption("missing node/edge count line");
  }
  auto counts = SplitSkipEmpty(line, ' ');
  if (counts.size() != 2) {
    return Status::Corruption("bad count line: '" + line + "'");
  }
  SCHOLAR_ASSIGN_OR_RETURN(int64_t n, ParseInt64(counts[0]));
  SCHOLAR_ASSIGN_OR_RETURN(int64_t m, ParseInt64(counts[1]));
  if (n < 0 || m < 0) return Status::Corruption("negative counts");

  GraphBuilder builder(GraphBuilder::Options{
      .dedup_parallel_edges = false, .drop_self_loops = false});
  for (int64_t i = 0; i < n; ++i) {
    if (!NextContentLine(in, &line)) {
      return Status::Corruption("truncated year section at node " +
                                std::to_string(i));
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t year, ParseInt64(line));
    builder.AddNode(static_cast<Year>(year));
  }
  for (int64_t e = 0; e < m; ++e) {
    if (!NextContentLine(in, &line)) {
      return Status::Corruption("truncated edge section at edge " +
                                std::to_string(e));
    }
    auto fields = SplitSkipEmpty(line, ' ');
    if (fields.size() != 2) {
      return Status::Corruption("bad edge line: '" + line + "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    SCHOLAR_ASSIGN_OR_RETURN(int64_t v, ParseInt64(fields[1]));
    if (u < 0 || v < 0) return Status::Corruption("negative node id");
    SCHOLAR_RETURN_NOT_OK(builder.AddEdge(static_cast<NodeId>(u),
                                          static_cast<NodeId>(v)));
  }
  return std::move(builder).Build();
}

Result<CitationGraph> ReadGraphTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadGraphText(&in);
}

Status WriteGraphBinary(const CitationGraph& graph, std::ostream* out) {
  out->write(kBinaryMagic, sizeof(kBinaryMagic));
  uint64_t n = graph.num_nodes();
  uint64_t m = graph.num_edges();
  WriteRaw(out, n);
  WriteRaw(out, m);
  WriteRawVector(out, graph.years());
  WriteRawVector(out, graph.out_offsets());
  WriteRawVector(out, graph.out_neighbors());
  if (!*out) return Status::IOError("binary write failed");
  return Status::OK();
}

Status WriteGraphBinaryFile(const CitationGraph& graph,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteGraphBinary(graph, &out);
}

Result<CitationGraph> ReadGraphBinary(std::istream* in) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!*in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad binary graph magic");
  }
  uint64_t n = 0, m = 0;
  if (!ReadRaw(in, &n) || !ReadRaw(in, &m)) {
    return Status::Corruption("truncated binary header");
  }
  // Plausibility bound (2^38 elements ≈ 1 TiB of payload) so that a
  // corrupted header cannot drive unbounded allocation.
  constexpr uint64_t kMaxElements = uint64_t{1} << 38;
  if (n > kMaxElements || m > kMaxElements) {
    return Status::Corruption("implausible binary header counts");
  }
  std::vector<Year> years;
  std::vector<EdgeId> offsets;
  std::vector<NodeId> neighbors;
  if (!ReadRawVector(in, n, &years) || !ReadRawVector(in, n + 1, &offsets) ||
      !ReadRawVector(in, m, &neighbors)) {
    return Status::Corruption("truncated binary payload");
  }
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != m) {
    return Status::Corruption("inconsistent binary offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption("non-monotone binary offsets");
    }
  }
  for (NodeId v : neighbors) {
    if (v >= n) return Status::Corruption("binary neighbor id out of range");
  }
  return CitationGraph::FromCsr(std::move(years), std::move(offsets),
                                std::move(neighbors));
}

Result<CitationGraph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadGraphBinary(&in);
}

}  // namespace scholar
