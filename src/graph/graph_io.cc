#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "util/byte_reader.h"
#include "util/string_util.h"

namespace scholar {
namespace {

constexpr char kTextSignature[] = "#scholarrank-graph-v1";
constexpr char kBinaryMagic[4] = {'S', 'R', 'G', '1'};

/// Publication-year plausibility window for untrusted graph files. Years
/// are either the kUnknownYear sentinel or non-negative; the upper bound
/// admits month-scaled encodings (graph/types.h) while rejecting the
/// garbage an int64->int32 cast of corrupt input would otherwise truncate
/// silently.
constexpr int64_t kMaxPlausibleYear = 1000000;

bool YearIsPlausible(int64_t year) {
  return year == static_cast<int64_t>(kUnknownYear) ||
         (year >= 0 && year <= kMaxPlausibleYear);
}

/// Reads the next content line (skipping blanks and comments) into *line,
/// tracking the 1-based source line number in *line_number for
/// diagnostics.
bool NextContentLine(std::istream* in, std::string* line,
                     size_t* line_number) {
  while (std::getline(*in, *line)) {
    ++*line_number;
    std::string_view trimmed = Trim(*line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    *line = std::string(trimmed);
    return true;
  }
  return false;
}

template <typename T>
void WriteRaw(std::ostream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteRawVector(std::ostream* out, const std::vector<T>& v) {
  if (!v.empty()) {
    out->write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

}  // namespace

Status WriteGraphText(const CitationGraph& graph, std::ostream* out) {
  *out << kTextSignature << "\n"
       << graph.num_nodes() << " " << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    *out << graph.year(u) << "\n";
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.References(u)) {
      *out << u << " " << v << "\n";
    }
  }
  if (!*out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteGraphTextFile(const CitationGraph& graph,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteGraphText(graph, &out);
}

Result<CitationGraph> ReadGraphText(std::istream* in) {
  constexpr char kWhat[] = "graph text";
  std::string line;
  size_t line_number = 0;
  if (!std::getline(*in, line) || Trim(line) != kTextSignature) {
    return ParseError(kWhat, 1,
                      "missing signature line '" +
                          std::string(kTextSignature) + "'");
  }
  line_number = 1;
  if (!NextContentLine(in, &line, &line_number)) {
    return ParseError(kWhat, line_number + 1, "missing node/edge count line");
  }
  auto counts = SplitSkipEmpty(line, ' ');
  if (counts.size() != 2) {
    return ParseError(kWhat, line_number, "bad count line: '" + line + "'");
  }
  SCHOLAR_ASSIGN_OR_RETURN(int64_t n, ParseInt64(counts[0]));
  SCHOLAR_ASSIGN_OR_RETURN(int64_t m, ParseInt64(counts[1]));
  if (n < 0 || m < 0) return ParseError(kWhat, line_number, "negative counts");

  GraphBuilder builder(GraphBuilder::Options{
      .dedup_parallel_edges = false, .drop_self_loops = false});
  for (int64_t i = 0; i < n; ++i) {
    if (!NextContentLine(in, &line, &line_number)) {
      return ParseError(kWhat, line_number,
                        "truncated year section at node " + std::to_string(i));
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t year, ParseInt64(line));
    if (!YearIsPlausible(year)) {
      return ParseError(kWhat, line_number,
                        "implausible year " + std::to_string(year) +
                            " for node " + std::to_string(i) +
                            " (want " + std::to_string(kUnknownYear) +
                            " or 0.." + std::to_string(kMaxPlausibleYear) +
                            ")");
    }
    builder.AddNode(static_cast<Year>(year));
  }
  // Dense (src<<32|dst) edge keys; NodeId is uint32 so the pack is exact.
  // The reserve is clamped: `m` is attacker-declared, and an absurd count
  // must fail later as a truncation error, not throw bad_alloc here.
  std::unordered_set<uint64_t> seen_edges;
  seen_edges.reserve(static_cast<size_t>(std::min<int64_t>(m, 1 << 20)));
  for (int64_t e = 0; e < m; ++e) {
    if (!NextContentLine(in, &line, &line_number)) {
      return ParseError(kWhat, line_number,
                        "truncated edge section at edge " + std::to_string(e));
    }
    auto fields = SplitSkipEmpty(line, ' ');
    if (fields.size() != 2) {
      return ParseError(kWhat, line_number, "bad edge line: '" + line + "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    SCHOLAR_ASSIGN_OR_RETURN(int64_t v, ParseInt64(fields[1]));
    // Range-check as int64 before any narrowing: a 2^32+k id must fail
    // loudly, not wrap around to node k.
    if (u < 0 || v < 0 || u >= n || v >= n) {
      return ParseError(kWhat, line_number,
                        "edge endpoint out of range: '" + line + "' (graph has " +
                            std::to_string(n) + " nodes)");
    }
    if (u == v) {
      return ParseError(kWhat, line_number,
                        "self-loop citation at node " + std::to_string(u));
    }
    const uint64_t key =
        (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
    if (!seen_edges.insert(key).second) {
      return ParseError(kWhat, line_number,
                        "duplicate edge " + std::to_string(u) + " -> " +
                            std::to_string(v));
    }
    SCHOLAR_RETURN_NOT_OK(builder.AddEdge(static_cast<NodeId>(u),
                                          static_cast<NodeId>(v)));
  }
  return std::move(builder).Build();
}

Result<CitationGraph> ReadGraphTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadGraphText(&in);
}

Status WriteGraphBinary(const CitationGraph& graph, std::ostream* out) {
  out->write(kBinaryMagic, sizeof(kBinaryMagic));
  uint64_t n = graph.num_nodes();
  uint64_t m = graph.num_edges();
  WriteRaw(out, n);
  WriteRaw(out, m);
  WriteRawVector(out, graph.years());
  WriteRawVector(out, graph.out_offsets());
  WriteRawVector(out, graph.out_neighbors());
  if (!*out) return Status::IOError("binary write failed");
  return Status::OK();
}

Status WriteGraphBinaryFile(const CitationGraph& graph,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteGraphBinary(graph, &out);
}

Result<CitationGraph> ReadGraphBinary(std::istream* in) {
  ByteReader reader(in);
  char magic[4];
  if (!reader.ReadRaw(&magic) ||
      !std::equal(magic, magic + sizeof(magic), kBinaryMagic)) {
    return Status::Corruption("bad binary graph magic");
  }
  uint64_t n = 0, m = 0;
  if (!reader.ReadRaw(&n) || !reader.ReadRaw(&m)) {
    return Status::Corruption("truncated binary header");
  }
  // Plausibility bound (2^38 elements ≈ 1 TiB of payload) so that a
  // corrupted header cannot drive unbounded allocation.
  constexpr uint64_t kMaxElements = uint64_t{1} << 38;
  if (n > kMaxElements || m > kMaxElements) {
    return Status::Corruption("implausible binary header counts");
  }
  std::vector<Year> years;
  std::vector<EdgeId> offsets;
  std::vector<NodeId> neighbors;
  SCHOLAR_RETURN_NOT_OK(reader.ReadVector(n, "binary year section", &years));
  SCHOLAR_RETURN_NOT_OK(
      reader.ReadVector(n + 1, "binary offset section", &offsets));
  SCHOLAR_RETURN_NOT_OK(
      reader.ReadVector(m, "binary neighbor section", &neighbors));
  for (size_t i = 0; i < years.size(); ++i) {
    if (!YearIsPlausible(years[i])) {
      return Status::Corruption("implausible year " +
                                std::to_string(years[i]) + " for node " +
                                std::to_string(i));
    }
  }
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != m) {
    return Status::Corruption("inconsistent binary offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption("non-monotone binary offsets");
    }
  }
  for (NodeId v : neighbors) {
    if (v >= n) return Status::Corruption("binary neighbor id out of range");
  }
  return CitationGraph::FromCsr(std::move(years), std::move(offsets),
                                std::move(neighbors));
}

Result<CitationGraph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadGraphBinary(&in);
}

}  // namespace scholar
