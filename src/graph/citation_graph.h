#ifndef SCHOLARRANK_GRAPH_CITATION_GRAPH_H_
#define SCHOLARRANK_GRAPH_CITATION_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace scholar {

/// Immutable directed citation network in compressed-sparse-row form.
///
/// An edge `u -> v` means "article u cites article v". Both forward
/// (references) and reverse (citations received) adjacency are materialized,
/// and every node carries its publication year, because every ranker in this
/// library needs year-aware traversal in both directions.
///
/// Construct via GraphBuilder (validating) or the internal FromCsr factory
/// (trusted, used by TimeSlicer and the binary loader). Copyable and movable;
/// copies share nothing.
class CitationGraph {
 public:
  /// Empty graph.
  CitationGraph() = default;

  size_t num_nodes() const { return years_.size(); }
  size_t num_edges() const { return out_neighbors_.size(); }

  /// Publication year of `u`.
  Year year(NodeId u) const { return years_[u]; }

  /// All publication years, indexed by node.
  const std::vector<Year>& years() const { return years_; }

  /// Earliest / latest publication year; kUnknownYear when the graph is
  /// empty.
  Year min_year() const { return min_year_; }
  Year max_year() const { return max_year_; }

  /// Articles cited by `u` (its reference list), sorted ascending.
  std::span<const NodeId> References(NodeId u) const {
    return {out_neighbors_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }

  /// Articles citing `v`, sorted ascending.
  std::span<const NodeId> Citers(NodeId v) const {
    return {in_neighbors_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Number of references made by `u` (out-degree).
  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  /// Number of citations received by `v` (in-degree).
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True when `u` cites no one (a "dangling" node for random walks).
  bool IsDangling(NodeId u) const { return OutDegree(u) == 0; }

  /// Number of dangling nodes.
  size_t CountDangling() const;

  /// True when edge u->v exists (binary search over u's references).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Raw CSR access for algorithms that iterate all edges linearly.
  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<NodeId>& out_neighbors() const { return out_neighbors_; }
  const std::vector<EdgeId>& in_offsets() const { return in_offsets_; }
  const std::vector<NodeId>& in_neighbors() const { return in_neighbors_; }

  /// Trusted constructor from prebuilt forward CSR; computes the reverse
  /// adjacency and year range. Offsets/neighbors must be consistent;
  /// adjacency lists must be sorted. Aborts on malformed shape (programmer
  /// error), does not validate edge ordering.
  static CitationGraph FromCsr(std::vector<Year> years,
                               std::vector<EdgeId> out_offsets,
                               std::vector<NodeId> out_neighbors);

  bool operator==(const CitationGraph& other) const;

 private:
  std::vector<Year> years_;
  std::vector<EdgeId> out_offsets_{0};
  std::vector<NodeId> out_neighbors_;
  std::vector<EdgeId> in_offsets_{0};
  std::vector<NodeId> in_neighbors_;
  Year min_year_ = kUnknownYear;
  Year max_year_ = kUnknownYear;
};

}  // namespace scholar

#endif  // SCHOLARRANK_GRAPH_CITATION_GRAPH_H_
