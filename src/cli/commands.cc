#include "cli/commands.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <ctime>
#include <memory>
#include <optional>
#include <ostream>
#include <thread>

#include "core/registry.h"
#include "core/scholar_ranker.h"
#include "data/ground_truth.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/benchmark_sets.h"
#include "graph/components.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "stream/edge_batch.h"
#include "stream/epoch_pipeline.h"
#include "stream/incremental_ranker.h"
#include "stream/streaming_graph.h"
#include "util/string_util.h"

namespace scholar {
namespace cli {
namespace {

/// Writes the corpus to every requested output key; counts how many fired.
Status WriteOutputs(const Corpus& corpus, const Config& config,
                    std::ostream* out, size_t* outputs_written) {
  *outputs_written = 0;
  if (config.Has("out_aminer")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("out_aminer"));
    SCHOLAR_RETURN_NOT_OK(WriteAMinerCorpusFile(corpus, path));
    *out << "wrote AMiner text: " << path << "\n";
    ++*outputs_written;
  }
  if (config.Has("out_articles") || config.Has("out_citations")) {
    if (!config.Has("out_articles") || !config.Has("out_citations")) {
      return Status::InvalidArgument(
          "TSV output needs both out_articles= and out_citations=");
    }
    SCHOLAR_ASSIGN_OR_RETURN(std::string articles,
                             config.GetString("out_articles"));
    SCHOLAR_ASSIGN_OR_RETURN(std::string citations,
                             config.GetString("out_citations"));
    SCHOLAR_RETURN_NOT_OK(WriteTsvCorpusFiles(corpus, articles, citations));
    *out << "wrote TSV: " << articles << " + " << citations << "\n";
    ++*outputs_written;
  }
  if (config.Has("out_graph")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("out_graph"));
    SCHOLAR_RETURN_NOT_OK(WriteGraphBinaryFile(corpus.graph, path));
    *out << "wrote binary graph: " << path << "\n";
    ++*outputs_written;
  }
  return Status::OK();
}

Result<Corpus> GenerateFromConfig(const Config& config) {
  const std::string profile = config.GetStringOr("profile", "aminer");
  const int64_t n = config.GetIntOr("n", 20000);
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  const uint64_t seed =
      static_cast<uint64_t>(config.GetIntOr("seed", 20180416));
  SCHOLAR_ASSIGN_OR_RETURN(
      SyntheticOptions options,
      ProfileByName(profile, static_cast<size_t>(n), seed));
  return GenerateSyntheticCorpus(options, profile);
}

}  // namespace

Result<Corpus> LoadCorpus(const Config& config) {
  if (config.Has("aminer")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("aminer"));
    return ReadAMinerCorpusFile(path);
  }
  if (config.Has("articles") || config.Has("citations")) {
    if (!config.Has("articles") || !config.Has("citations")) {
      return Status::InvalidArgument(
          "TSV input needs both articles= and citations=");
    }
    SCHOLAR_ASSIGN_OR_RETURN(std::string articles,
                             config.GetString("articles"));
    SCHOLAR_ASSIGN_OR_RETURN(std::string citations,
                             config.GetString("citations"));
    return ReadTsvCorpusFiles(articles, citations);
  }
  if (config.Has("profile") || config.Has("n")) {
    return GenerateFromConfig(config);
  }
  return Status::InvalidArgument(
      "no corpus input: pass aminer=<path>, articles=+citations=<paths>, or "
      "profile=<aminer|mag> n=<count>");
}

Status RunGenerate(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, GenerateFromConfig(config));
  *out << "generated '" << corpus.name << "': " << corpus.num_articles()
       << " articles, " << corpus.num_citations() << " citations\n";
  size_t outputs = 0;
  SCHOLAR_RETURN_NOT_OK(WriteOutputs(corpus, config, out, &outputs));
  if (outputs == 0) {
    return Status::InvalidArgument(
        "no output requested: pass out_aminer=, out_articles=+out_citations=,"
        " or out_graph=");
  }
  return Status::OK();
}

Status RunStats(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(config));
  GraphStats stats = ComputeGraphStats(corpus.graph);
  *out << "corpus: " << corpus.name << "\n" << ToString(stats);
  ComponentStats components = ComputeWeakComponents(corpus.graph);
  *out << "weak components:  " << components.num_components << "\n"
       << "giant component:  " << components.giant_size << " ("
       << FormatDouble(corpus.num_articles() == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(components.giant_size) /
                                 static_cast<double>(corpus.num_articles()),
                       1)
       << "%)\n"
       << "isolated:         " << components.num_isolated << "\n";
  if (corpus.has_authors()) {
    *out << "authors:          " << corpus.authors.num_authors() << "\n";
  }
  if (!corpus.venue_names.empty()) {
    *out << "venues:           " << corpus.venue_names.size() << "\n";
  }
  return Status::OK();
}

Status RunRank(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(config));
  SCHOLAR_ASSIGN_OR_RETURN(ScholarRanker ranker,
                           ScholarRanker::Create(config));
  SCHOLAR_ASSIGN_OR_RETURN(RankingOutput ranking,
                           ranker.RankCorpus(corpus));
  const int64_t top = config.GetIntOr("top", 50);
  if (top < 0) return Status::InvalidArgument("top must be >= 0");
  const size_t limit =
      top == 0 ? corpus.num_articles() : static_cast<size_t>(top);

  *out << "node_id,year,citations,score,rank\n";
  for (NodeId id : ranking.Top(limit)) {
    *out << id << "," << corpus.graph.year(id) << ","
         << corpus.graph.InDegree(id) << ","
         << FormatDouble(ranking.scores[id], 8) << "," << ranking.ranks[id]
         << "\n";
  }
  return Status::OK();
}

Status RunEval(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, GenerateFromConfig(config));
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("eval needs a synthetic corpus");
  }
  EvalSuiteOptions suite_options;
  suite_options.num_pairs =
      static_cast<size_t>(config.GetIntOr("pairs", 50000));
  SCHOLAR_ASSIGN_OR_RETURN(EvalSuite suite,
                           BuildEvalSuite(corpus, suite_options));

  std::vector<std::string> rankers;
  if (config.Has("rankers")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::string list, config.GetString("rankers"));
    for (auto name : Split(list, ',')) {
      if (!Trim(name).empty()) rankers.emplace_back(Trim(name));
    }
  } else {
    rankers = KnownRankerNames();
  }

  *out << "ranker,overall_accuracy,recent_accuracy,same_year_accuracy,"
          "spearman,iterations,seconds\n";
  for (const std::string& name : rankers) {
    SCHOLAR_ASSIGN_OR_RETURN(std::shared_ptr<const Ranker> ranker,
                             MakeRanker(name, config));
    SCHOLAR_ASSIGN_OR_RETURN(RankerEvaluation eval,
                             EvaluateRanker(corpus, *ranker, suite));
    *out << name << "," << FormatDouble(eval.overall_accuracy, 4) << ","
         << FormatDouble(eval.recent_accuracy, 4) << ","
         << FormatDouble(eval.same_year_accuracy, 4) << ","
         << FormatDouble(eval.spearman_truth, 4) << "," << eval.iterations
         << "," << FormatDouble(eval.seconds, 3) << "\n";
  }
  return Status::OK();
}

Status RunSnapshot(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("out_snapshot"));
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(config));
  SCHOLAR_ASSIGN_OR_RETURN(ScholarRanker ranker, ScholarRanker::Create(config));
  SCHOLAR_ASSIGN_OR_RETURN(RankingOutput ranking, ranker.RankCorpus(corpus));
  serve::SnapshotMeta meta;
  meta.snapshot_id =
      static_cast<uint64_t>(config.GetIntOr("snapshot_id", 0));
  meta.created_unix = static_cast<int64_t>(
      std::time(nullptr));  // NOLINT(determinism): wall-clock metadata stamp, never a score input
  meta.ranker_name = ranker.name();
  meta.corpus_name = corpus.name;
  SCHOLAR_ASSIGN_OR_RETURN(
      serve::ScoreSnapshot snapshot,
      serve::ScoreSnapshot::Build(corpus.graph, ranking, std::move(meta)));
  SCHOLAR_RETURN_NOT_OK(snapshot.WriteToFile(path));
  *out << "wrote snapshot: " << path << " (" << snapshot.num_nodes()
       << " nodes, " << snapshot.num_edges() << " edges, ranker "
       << ranker.name() << ")\n";
  return Status::OK();
}

namespace {

/// A corpus replayed as an ingest stream: the oldest `base_fraction` of
/// articles as the bootstrap graph, the rest as year-ordered EdgeBatches.
struct StreamPlan {
  CitationGraph base;
  std::vector<stream::EdgeBatch> batches;
  /// Citations of not-yet-streamed articles. The suffix-only contract says
  /// a reference list is complete at publication, so a corpus edge whose
  /// target lands in a *later* window cannot be replayed and is dropped;
  /// the drift oracle ranks the streamed graph, keeping the comparison
  /// exact.
  size_t dropped_forward_edges = 0;
};

Result<StreamPlan> PlanStream(const CitationGraph& graph, double base_fraction,
                              int64_t num_batches) {
  const size_t n = graph.num_nodes();
  if (n < 2) {
    return Status::InvalidArgument("stream needs a corpus with >= 2 articles");
  }
  if (!(base_fraction > 0.0) || !(base_fraction < 1.0)) {
    return Status::InvalidArgument("base_fraction must be in (0, 1)");
  }
  if (num_batches <= 0) {
    return Status::InvalidArgument("batches must be positive");
  }
  const std::vector<Year>& years = graph.years();
  for (size_t i = 1; i < n; ++i) {
    if (years[i] < years[i - 1]) {
      return Status::InvalidArgument(
          "corpus node ids are not year-monotone; streaming replay requires "
          "time-prefix ids (synthetic corpora satisfy this)");
    }
  }
  size_t n_base = static_cast<size_t>(static_cast<double>(n) * base_fraction);
  n_base = std::min(std::max<size_t>(n_base, 1), n - 1);

  StreamPlan plan;
  GraphBuilder builder;
  for (size_t i = 0; i < n_base; ++i) builder.AddNode(years[i]);
  for (NodeId u = 0; u < static_cast<NodeId>(n_base); ++u) {
    for (NodeId v : graph.References(u)) {
      if (v < static_cast<NodeId>(n_base)) {
        SCHOLAR_RETURN_NOT_OK(builder.AddEdge(u, v));
      } else {
        ++plan.dropped_forward_edges;
      }
    }
  }
  SCHOLAR_ASSIGN_OR_RETURN(plan.base, std::move(builder).Build());

  const size_t remaining = n - n_base;
  const size_t windows = std::min<size_t>(
      static_cast<size_t>(num_batches), remaining);
  size_t start = n_base;
  for (size_t b = 0; b < windows; ++b) {
    const size_t count = remaining / windows + (b < remaining % windows);
    const size_t end = start + count;
    stream::EdgeBatch batch;
    batch.sequence = b + 1;
    batch.node_years.assign(years.begin() + start, years.begin() + end);
    // CSR neighbors are sorted and deduplicated, so walking sources in id
    // order yields the strict (src, dst) order the wire format requires.
    for (NodeId u = static_cast<NodeId>(start); u < static_cast<NodeId>(end);
         ++u) {
      for (NodeId v : graph.References(u)) {
        if (v < static_cast<NodeId>(end)) {
          batch.edges.push_back({u, v});
        } else {
          ++plan.dropped_forward_edges;
        }
      }
    }
    plan.batches.push_back(std::move(batch));
    start = end;
  }
  return plan;
}

void PrintEpochRow(const stream::EpochStats& s, std::ostream* out) {
  *out << s.epoch << "," << s.batches_applied << "," << s.num_nodes << ","
       << s.num_edges << "," << s.iterations << ","
       << (s.converged ? "true" : "false") << ","
       << FormatDouble(s.apply_ms, 3) << "," << FormatDouble(s.rank_ms, 3)
       << "," << FormatDouble(s.publish_ms, 3) << "\n";
}

}  // namespace

Status RunStream(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(config));
  SCHOLAR_ASSIGN_OR_RETURN(
      StreamPlan plan,
      PlanStream(corpus.graph, config.GetDoubleOr("base_fraction", 0.5),
                 config.GetIntOr("batches", 4)));
  if (config.Has("out_batches")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("out_batches"));
    SCHOLAR_RETURN_NOT_OK(stream::WriteEdgeBatchFile(plan.batches, path));
    *out << "wrote batch stream: " << path << " (" << plan.batches.size()
         << " batches)\n";
  }

  stream::IncrementalRankerOptions ranker_options;
  ranker_options.ranker = config.GetStringOr("ranker", "pagerank");
  ranker_options.config = config;
  ranker_options.mode = config.GetStringOr("mode", "full");
  ranker_options.frontier_tolerance =
      config.GetDoubleOr("frontier_tolerance", 1e-12);
  SCHOLAR_ASSIGN_OR_RETURN(
      stream::IncrementalRanker ranker,
      stream::IncrementalRanker::Create(ranker_options));

  stream::StreamingGraph streaming(std::move(plan.base));
  serve::SnapshotManager manager;
  stream::EpochPublisher publisher =
      [&](const CitationGraph& graph, const RankResult& result,
          const stream::EpochStats& stats) -> Status {
    RankingOutput ranking;
    ranking.ranks = ScoresToRanks(result.scores);
    ranking.percentiles = RankPercentiles(result.scores);
    ranking.scores = result.scores;
    ranking.iterations = result.iterations;
    ranking.converged = result.converged;
    serve::SnapshotMeta meta;
    meta.snapshot_id = stats.epoch;
    meta.created_unix = static_cast<int64_t>(
        std::time(nullptr));  // NOLINT(determinism): wall-clock metadata stamp, never a score input
    meta.ranker_name = ranker.ranker_name();
    meta.corpus_name = corpus.name;
    SCHOLAR_ASSIGN_OR_RETURN(
        serve::ScoreSnapshot snapshot,
        serve::ScoreSnapshot::Build(graph, ranking, std::move(meta)));
    manager.Install(std::move(snapshot));
    return Status::OK();
  };
  stream::EpochPipeline pipeline(&streaming, &ranker, std::move(publisher));
  SCHOLAR_RETURN_NOT_OK(pipeline.Bootstrap());

  // With port= the replay doubles as a live server: queries are answered
  // from the freshest published epoch while batches keep landing. Each
  // event-loop worker gets its own engine replica over `manager`.
  std::unique_ptr<serve::Server> server;
  if (config.Has("port")) {
    const int64_t port = config.GetIntOr("port", 0);
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("port must be in [0, 65535]");
    }
    serve::QueryEngineOptions engine_options;
    engine_options.cache_entries =
        static_cast<size_t>(config.GetIntOr("cache_entries", 256));
    engine_options.topk_shards =
        static_cast<size_t>(config.GetIntOr("topk_shards", 0));
    serve::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(port);
    server_options.num_workers = static_cast<size_t>(
        config.GetIntOr("workers", config.GetIntOr("threads", 4)));
    server = std::make_unique<serve::Server>(&manager, engine_options,
                                             server_options);
    SCHOLAR_RETURN_NOT_OK(server->Start());
    *out << "streaming " << corpus.name << " port=" << server->port() << "\n"
         << std::flush;
  }

  *out << "epoch,applied,nodes,edges,iterations,converged,apply_ms,rank_ms,"
          "publish_ms\n";
  PrintEpochRow(pipeline.history().front(), out);
  for (stream::EdgeBatch& batch : plan.batches) {
    SCHOLAR_ASSIGN_OR_RETURN(stream::EpochStats stats,
                             pipeline.Step(std::move(batch)));
    PrintEpochRow(stats, out);
    *out << std::flush;
  }
  if (server != nullptr) {
    server->Stop();
    server->Wait();
    *out << "server stopped (" << server->connections_accepted()
         << " connections served)\n";
  }

  if (config.GetBoolOr("oracle", true)) {
    SCHOLAR_ASSIGN_OR_RETURN(
        stream::IncrementalRanker cold,
        stream::IncrementalRanker::Create(ranker_options));
    SCHOLAR_ASSIGN_OR_RETURN(RankResult oracle,
                             cold.RankCold(streaming.graph()));
    const std::vector<double>& warm = ranker.previous_scores();
    double max_abs_diff = 0.0;
    for (size_t i = 0; i < warm.size() && i < oracle.scores.size(); ++i) {
      max_abs_diff = std::max(max_abs_diff,
                              std::fabs(warm[i] - oracle.scores[i]));
    }
    *out << "oracle: max_abs_diff=" << FormatDouble(max_abs_diff, 12)
         << " cold_iterations=" << oracle.iterations
         << " warm_total_iterations=" << pipeline.total_iterations() << "\n";
  }
  *out << "stream: generations=" << manager.generation()
       << " dropped_forward_edges=" << plan.dropped_forward_edges << "\n";
  return Status::OK();
}

namespace {

/// SIGINT → one byte down a self-pipe; everything that is not
/// async-signal-safe (mutexes, joins) happens on the watcher thread that
/// reads the other end.
volatile int g_sigint_pipe_wr = -1;

void ServeSigintHandler(int) {
  const char byte = 1;
  if (g_sigint_pipe_wr >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_sigint_pipe_wr, &byte, 1);
  }
}

}  // namespace

Status RunServe(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(std::string path, config.GetString("snapshot"));
  serve::SnapshotManager manager;
  SCHOLAR_RETURN_NOT_OK(manager.LoadFile(path));
  const std::shared_ptr<const serve::LiveSnapshot> live = manager.Current();

  serve::QueryEngineOptions engine_options;
  engine_options.cache_entries =
      static_cast<size_t>(config.GetIntOr("cache_entries", 256));
  engine_options.max_k = static_cast<size_t>(config.GetIntOr("max_k", 1000));
  engine_options.allow_reload = config.GetBoolOr("allow_reload", true);
  engine_options.topk_shards =
      static_cast<size_t>(config.GetIntOr("topk_shards", 0));

  serve::ServerOptions server_options;
  const int64_t port = config.GetIntOr("port", 7601);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  server_options.port = static_cast<uint16_t>(port);
  server_options.num_workers = static_cast<size_t>(
      config.GetIntOr("workers", config.GetIntOr("threads", 4)));
  server_options.reuse_port = config.GetBoolOr("reuse_port", true);
  server_options.tcp_nodelay = config.GetBoolOr("tcp_nodelay", true);
  server_options.max_batch_requests =
      static_cast<size_t>(config.GetIntOr("max_batch_requests", 1024));
  serve::Server server(&manager, engine_options, server_options);
  SCHOLAR_RETURN_NOT_OK(server.Start());
  *out << "serving " << live->snapshot.meta().corpus_name << " ("
       << live->snapshot.num_nodes() << " nodes, ranker "
       << live->snapshot.meta().ranker_name << ") port=" << server.port()
       << " workers=" << server_options.num_workers
       << " — Ctrl-C for graceful shutdown\n"
       << std::flush;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    server.Stop();
    return Status::IOError("pipe() for signal handling failed");
  }
  g_sigint_pipe_wr = pipe_fds[1];
  struct sigaction action {};
  struct sigaction previous {};
  action.sa_handler = ServeSigintHandler;
  ::sigaction(SIGINT, &action, &previous);

  std::thread watcher([&server, read_fd = pipe_fds[0]] {  // NOLINT(dangling-capture): watcher.join() below runs before server leaves scope, so the reference cannot dangle
    char byte;
    while (::read(read_fd, &byte, 1) < 0 && errno == EINTR) {
    }
    server.Stop();  // idempotent; also runs on pipe close during teardown
  });
  server.Wait();

  ::sigaction(SIGINT, &previous, nullptr);
  g_sigint_pipe_wr = -1;
  ::close(pipe_fds[1]);  // unblocks the watcher if no signal ever arrived
  watcher.join();
  ::close(pipe_fds[0]);
  *out << "server stopped (" << server.connections_accepted()
       << " connections served)\n";
  return Status::OK();
}

Status RunConvert(const Config& config, std::ostream* out) {
  SCHOLAR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(config));
  size_t outputs = 0;
  SCHOLAR_RETURN_NOT_OK(WriteOutputs(corpus, config, out, &outputs));
  if (outputs == 0) {
    return Status::InvalidArgument("no output requested (out_aminer=, "
                                   "out_articles=+out_citations=, out_graph=)");
  }
  return Status::OK();
}

std::string UsageText() {
  return "scholar_cli <command> [key=value ...]\n"
         "\n"
         "commands:\n"
         "  generate   synthesize a corpus; profile=aminer|mag n=<count>\n"
         "             seed=<s>, outputs: out_aminer= | out_articles= +\n"
         "             out_citations= | out_graph=\n"
         "  stats      graph statistics; input: aminer= | articles= +\n"
         "             citations= | profile= n=\n"
         "  rank       rank a corpus; same inputs plus ranker=<name>,\n"
         "             algorithm keys (sigma=, num_slices=, ...), top=<k>,\n"
         "             threads=<t> (0 = all cores, 1 = serial; scores are\n"
         "             bit-identical at every setting);\n"
         "             ens_* rankers accept materialize_snapshots=true to\n"
         "             force legacy per-snapshot graph copies (bit-identical\n"
         "             to the default zero-copy snapshot views)\n"
         "  eval       benchmark rankers on a synthetic corpus;\n"
         "             rankers=<a,b,...> pairs=<count>\n"
         "  convert    read one format, write others (generate's out_*)\n"
         "  snapshot   rank a corpus and write the serving artifact;\n"
         "             corpus inputs + ranker keys + out_snapshot=<path>\n"
         "             [snapshot_id=<id>]\n"
         "  stream     replay a corpus as an ingest stream: apply batches,\n"
         "             warm re-rank, republish; base_fraction=<f> batches=<b>\n"
         "             ranker=<name> mode=full|frontier [frontier_tolerance=]\n"
         "             [out_batches=<path>] [port=<p|0>] [oracle=true|false]\n"
         "  serve      serve a snapshot over line-protocol TCP (N epoll\n"
         "             workers, one SO_REUSEPORT listener + engine replica\n"
         "             each); snapshot=<path> port=<p|0> workers=<n>\n"
         "             [max_k=] [cache_entries=] [allow_reload=true|false]\n"
         "             [topk_shards=<n>] [reuse_port=] [tcp_nodelay=]\n"
         "             [max_batch_requests=]\n"
         "  help       this text\n";
}

int Main(int argc, const char* const* argv, std::ostream* out,
         std::ostream* err) {
  if (argc < 2) {
    *err << UsageText();
    return 2;
  }
  const std::string command = argv[1];
  Result<Config> config = Config::FromArgs(argc - 2, argv + 2);
  if (!config.ok()) {
    *err << "error: " << config.status().ToString() << "\n";
    return 2;
  }
  Status status;
  if (command == "generate") {
    status = RunGenerate(*config, out);
  } else if (command == "stats") {
    status = RunStats(*config, out);
  } else if (command == "rank") {
    status = RunRank(*config, out);
  } else if (command == "eval") {
    status = RunEval(*config, out);
  } else if (command == "convert") {
    status = RunConvert(*config, out);
  } else if (command == "snapshot") {
    status = RunSnapshot(*config, out);
  } else if (command == "stream") {
    status = RunStream(*config, out);
  } else if (command == "serve") {
    status = RunServe(*config, out);
  } else if (command == "help" || command == "--help" || command == "-h") {
    *out << UsageText();
    return 0;
  } else {
    *err << "unknown command '" << command << "'\n" << UsageText();
    return 2;
  }
  if (!status.ok()) {
    *err << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace cli
}  // namespace scholar
