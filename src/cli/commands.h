#ifndef SCHOLARRANK_CLI_COMMANDS_H_
#define SCHOLARRANK_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/config.h"
#include "util/status.h"

namespace scholar {
namespace cli {

/// Loads a corpus as directed by config keys, in priority order:
///   aminer=<path>                      AMiner V8 text file
///   articles=<path> citations=<path>   TSV pair
///   profile=<aminer|mag> n=<count> [seed=<s>]   synthetic generation
Result<Corpus> LoadCorpus(const Config& config);

/// `generate`: synthesize a corpus and write it out.
/// Keys: profile, n, seed, plus outputs: out_aminer=<path> and/or
/// out_articles=<path> out_citations=<path> and/or out_graph=<path>
/// (native binary). At least one output is required.
Status RunGenerate(const Config& config, std::ostream* out);

/// `stats`: print graph statistics and component structure of a corpus.
Status RunStats(const Config& config, std::ostream* out);

/// `rank`: rank a corpus and emit "node_id,year,citations,score,rank" CSV.
/// Keys: corpus inputs (see LoadCorpus), ranker=<name> and its parameters,
/// top=<k> (0 = all rows, default 50).
Status RunRank(const Config& config, std::ostream* out);

/// `eval`: benchmark rankers on a synthetic corpus with ground truth.
/// Keys: profile/n/seed, rankers=<comma list> (default: all known),
/// pairs=<count>.
Status RunEval(const Config& config, std::ostream* out);

/// `convert`: read a corpus in one format and write it in others (same
/// output keys as `generate`).
Status RunConvert(const Config& config, std::ostream* out);

/// `snapshot`: rank a corpus and write the serving artifact.
/// Keys: corpus inputs (see LoadCorpus), ranker=<name> and its parameters,
/// out_snapshot=<path> (required), snapshot_id=<id>.
Status RunSnapshot(const Config& config, std::ostream* out);

/// `stream`: replay a corpus as a live ingest stream — split it into a
/// base graph plus year-ordered EdgeBatches, then run the epoch loop
/// (apply batch, warm re-rank, republish through SnapshotManager).
/// Keys: corpus inputs (see LoadCorpus), base_fraction=<f> (default 0.5),
/// batches=<b> (default 4), ranker=<name> (default pagerank),
/// mode=full|frontier, frontier_tolerance=<t>, out_batches=<path> (write
/// the generated wire-format stream), port=<p|0> (serve live during the
/// replay), oracle=true|false (default true: cold-rank the final graph
/// and report warm-vs-cold drift and iteration savings).
Status RunStream(const Config& config, std::ostream* out);

/// `serve`: answer line-protocol TCP queries from a snapshot file.
/// Keys: snapshot=<path> (required), port=<p> (default 7601, 0 =
/// ephemeral), threads=<t>, max_k=, cache_entries=, allow_reload=.
/// Prints "serving ... port=<p>" once listening, then blocks until SIGINT
/// (graceful: in-flight requests finish before exit).
Status RunServe(const Config& config, std::ostream* out);

/// Dispatches argv[1] to a command; `help` / unknown prints usage.
/// Returns the process exit code.
int Main(int argc, const char* const* argv, std::ostream* out,
         std::ostream* err);

/// The usage text.
std::string UsageText();

}  // namespace cli
}  // namespace scholar

#endif  // SCHOLARRANK_CLI_COMMANDS_H_
