#include "serve/request_framer.h"

namespace scholar {
namespace serve {

bool RequestFramer::HandleRequestBytes(std::string_view bytes,
                                       std::string* responses) {
  if (condemned_) return false;
  pending_.append(bytes.data(), bytes.size());

  size_t start = 0;
  for (size_t nl = pending_.find('\n', start); nl != std::string::npos;
       nl = pending_.find('\n', start)) {
    std::string_view line(pending_.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    *responses += handler_(line);
    *responses += '\n';
    start = nl + 1;
  }
  pending_.erase(0, start);
  if (pending_.size() > max_line_bytes_) {
    condemned_ = true;
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace scholar
