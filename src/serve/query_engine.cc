#include "serve/query_engine.h"

#include <algorithm>
#include <vector>

#include "serve/topk_merge.h"
#include "util/string_util.h"

namespace scholar {
namespace serve {
namespace {

/// Score formatting for wire responses: enough digits that two articles
/// with different scores render differently on a 20M-node corpus.
constexpr int kScoreDigits = 10;

/// Shard count for the explicit `top_k_merge` verb when the engine is not
/// configured for sharded serving (topk_shards == 0).
constexpr size_t kDefaultMergeShards = 4;

std::string Err(std::string message) { return "ERR " + std::move(message); }

/// Parses a non-negative integer request argument.
bool ParseSize(std::string_view token, size_t* out) {
  Result<int64_t> v = ParseInt64(token);
  if (!v.ok() || *v < 0) return false;
  *out = static_cast<size_t>(*v);
  return true;
}

bool ParseNode(std::string_view token, const ScoreSnapshot& snap,
               NodeId* out) {
  size_t id = 0;
  if (!ParseSize(token, &id) || id >= snap.num_nodes()) return false;
  *out = static_cast<NodeId>(id);
  return true;
}

void AppendIdScore(const ScoreSnapshot& snap, NodeId id, std::string* out) {
  *out += std::to_string(id);
  *out += ':';
  *out += FormatDouble(snap.score(id), kScoreDigits);
}

std::string RenderTopPage(const ScoreSnapshot& snap, size_t k,
                          size_t offset) {
  std::string response = "OK";
  for (NodeId id : snap.TopPage(offset, k)) {
    response += ' ';
    AppendIdScore(snap, id, &response);
  }
  return response;
}

std::string RenderMergedTopPage(const ScoreSnapshot& snap, size_t shards,
                                size_t k, size_t offset) {
  std::string response = "OK";
  for (const ScoredId& entry :
       ScatterGatherTopPage(snap.scores(), shards, offset, k)) {
    response += ' ';
    AppendIdScore(snap, entry.id, &response);
  }
  return response;
}

}  // namespace

QueryEngine::QueryEngine(SnapshotManager* manager, QueryEngineOptions options)
    : manager_(manager),
      options_(options),
      top_cache_(options.cache_entries) {}

std::string QueryEngine::Execute(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitSkipEmpty(line, ' ');
  if (tokens.empty()) return Err("empty request");
  const std::string_view command = tokens[0];

  if (command == "ping") return "OK pong";

  if (command == "reload") {
    if (!options_.allow_reload) return Err("reload disabled");
    if (tokens.size() != 2) return Err("usage: reload <path>");
    Status status = manager_->LoadFile(std::string(tokens[1]));
    if (!status.ok()) return Err(status.ToString());
    return "OK generation=" + std::to_string(manager_->generation());
  }

  std::shared_ptr<const LiveSnapshot> live = manager_->Current();
  if (live == nullptr) return Err("no snapshot loaded");
  const ScoreSnapshot& snap = live->snapshot;

  if (command == "info") {
    return "OK nodes=" + std::to_string(snap.num_nodes()) +
           " edges=" + std::to_string(snap.num_edges()) +
           " snapshot_id=" + std::to_string(snap.meta().snapshot_id) +
           " generation=" + std::to_string(live->generation) +
           " ranker=" + snap.meta().ranker_name +
           " corpus=" + snap.meta().corpus_name;
  }

  if (command == "top_k" || command == "top_k_merge") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      return Err("usage: " + std::string(command) + " <k> [offset]");
    }
    size_t k = 0, offset = 0;
    if (!ParseSize(tokens[1], &k)) return Err("bad k");
    if (tokens.size() == 3 && !ParseSize(tokens[2], &offset)) {
      return Err("bad offset");
    }
    if (k > options_.max_k) {
      return Err("k exceeds max_k=" + std::to_string(options_.max_k));
    }
    // Clamp audit: ParseSize admits at most INT64_MAX, so offset + k stays
    // below 2^64 (no size_t wraparound), and TopPage / ScatterGatherTopPage
    // both answer an offset at or past the end with an empty page. The
    // cache key spells out every bound that shapes the page — generation,
    // k AND offset — so distinct pages can never collide, and both render
    // paths produce identical bytes so they may share an entry.
    const bool merge = command == "top_k_merge" || options_.topk_shards > 0;
    const std::string cache_key = std::to_string(live->generation) + ":" +
                                  std::to_string(k) + ":" +
                                  std::to_string(offset);
    if (std::optional<std::string> cached = top_cache_.Get(cache_key)) {
      return *std::move(cached);
    }
    const size_t shards =
        options_.topk_shards > 0 ? options_.topk_shards : kDefaultMergeShards;
    std::string response = merge ? RenderMergedTopPage(snap, shards, k, offset)
                                 : RenderTopPage(snap, k, offset);
    top_cache_.Put(cache_key, response);
    return response;
  }

  if (command == "score" || command == "rank" || command == "percentile") {
    if (tokens.size() != 2) {
      return Err("usage: " + std::string(command) + " <id>");
    }
    NodeId id = 0;
    if (!ParseNode(tokens[1], snap, &id)) return Err("bad or unknown id");
    if (command == "score") {
      return "OK " + FormatDouble(snap.score(id), kScoreDigits);
    }
    if (command == "rank") return "OK " + std::to_string(snap.rank(id));
    return "OK " + FormatDouble(snap.percentile(id), kScoreDigits);
  }

  if (command == "neighbors") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return Err("usage: neighbors <id> citers|refs [k]");
    }
    NodeId id = 0;
    if (!ParseNode(tokens[1], snap, &id)) return Err("bad or unknown id");
    std::span<const NodeId> neighbors;
    if (tokens[2] == "citers") {
      neighbors = snap.Citers(id);
    } else if (tokens[2] == "refs") {
      neighbors = snap.References(id);
    } else {
      return Err("direction must be citers or refs");
    }
    size_t k = options_.max_k;
    if (tokens.size() == 4 && !ParseSize(tokens[3], &k)) return Err("bad k");
    k = std::min({k, options_.max_k, neighbors.size()});

    // Rank the neighborhood by snapshot score, best first; deterministic
    // id tie-break, matching the offline TopK convention.
    std::vector<NodeId> ranked(neighbors.begin(), neighbors.end());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), [&snap](NodeId a, NodeId b) {
                        if (snap.score(a) != snap.score(b)) {
                          return snap.score(a) > snap.score(b);
                        }
                        return a < b;
                      });
    ranked.resize(k);
    std::string response = "OK";
    for (NodeId v : ranked) {
      response += ' ';
      AppendIdScore(snap, v, &response);
    }
    return response;
  }

  return Err("unknown command '" + std::string(command) + "'");
}

}  // namespace serve
}  // namespace scholar
