#ifndef SCHOLARRANK_SERVE_SERVER_H_
#define SCHOLARRANK_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>

#include "serve/query_engine.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace scholar {
namespace serve {

struct ServerOptions {
  /// TCP port to bind on 0.0.0.0; 0 asks the kernel for an ephemeral port
  /// (read the result from Server::port()).
  uint16_t port = 7601;
  /// Connection-handler threads. Each connection is pinned to one worker
  /// for its lifetime, so this is also the concurrent-connection limit;
  /// further accepts queue inside the pool until a handler finishes.
  size_t num_threads = 4;
  /// listen(2) backlog.
  int backlog = 128;
  /// A request line longer than this kills the connection (protocol abuse).
  size_t max_line_bytes = 1 << 16;
};

/// Line-protocol TCP front end over a QueryEngine.
///
/// One request per '\n'-terminated line, one response line back, in order;
/// clients may pipeline. Lifecycle: Start() binds/listens and spawns the
/// accept loop, Stop() initiates shutdown (stops accepting, shuts down the
/// open connections so blocked reads return, drains workers) and is safe to
/// call from any thread — including a signal-watcher thread implementing
/// graceful SIGINT. Wait() blocks until Stop() has completed.
class Server {
 public:
  /// `engine` must outlive the server.
  Server(QueryEngine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. Fails with IOError when the
  /// port is unavailable.
  Status Start();

  /// The actually bound port (resolves port=0), valid after Start().
  uint16_t port() const { return port_; }

  /// Graceful shutdown; idempotent, callable from any thread.
  void Stop() EXCLUDES(stop_mu_, conn_mu_);

  /// Blocks until the server has fully stopped.
  void Wait() EXCLUDES(stop_mu_);

  /// Connections accepted since Start() (diagnostics).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd) EXCLUDES(conn_mu_);

  /// Tracks live connection fds so Stop() can shut them down to unblock
  /// handler reads.
  void TrackConnection(int fd) EXCLUDES(conn_mu_);
  void UntrackConnection(int fd) EXCLUDES(conn_mu_);

  QueryEngine* const engine_;  // not owned
  const ServerOptions options_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  Mutex conn_mu_;
  std::unordered_set<int> open_connections_ GUARDED_BY(conn_mu_);

  Mutex stop_mu_;  // serializes Stop() callers, guards stopped_
  CondVar stopped_cv_;
  bool stopped_ GUARDED_BY(stop_mu_) = false;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_SERVER_H_
