#ifndef SCHOLARRANK_SERVE_SERVER_H_
#define SCHOLARRANK_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/event_loop.h"
#include "serve/query_engine.h"
#include "serve/snapshot_manager.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace scholar {
namespace serve {

struct ServerOptions {
  /// TCP port to bind on 0.0.0.0; 0 asks the kernel for an ephemeral port
  /// (read the result from Server::port()).
  uint16_t port = 7601;
  /// Event-loop workers. Each owns its own SO_REUSEPORT listener, epoll
  /// instance, and QueryEngine replica; the kernel load-balances incoming
  /// connections across the listeners.
  size_t num_workers = 4;
  /// listen(2) backlog, per listener.
  int backlog = 128;
  /// A request line longer than this kills the connection (protocol abuse).
  size_t max_line_bytes = 1 << 16;
  /// SO_REUSEADDR on listeners: re-bind the port while old connections
  /// linger in TIME_WAIT (restart-friendly; off for exclusive binds).
  bool reuse_addr = true;
  /// SO_REUSEPORT on listeners. Required when num_workers > 1 — the
  /// per-worker listener design does not exist without it, so Start() fails
  /// with InvalidArgument rather than silently degrading.
  bool reuse_port = true;
  /// TCP_NODELAY on accepted sockets (see EventLoopOptions::tcp_nodelay).
  bool tcp_nodelay = true;
  /// Backpressure bounds, forwarded to every worker (see EventLoopOptions).
  size_t max_batch_requests = 1024;
  size_t max_cycle_requests = 8192;
  size_t max_pending_write_bytes = 4 << 20;
};

/// Applies the listener-level socket options of `options` (SO_REUSEADDR,
/// SO_REUSEPORT) to `fd`. Split out so tests can verify the plumbing with
/// getsockopt against both polarities without starting a server.
Status ApplyListenerOptions(int fd, const ServerOptions& options);

/// Line-protocol TCP front end: N event-loop workers, each an
/// edge-triggered epoll loop with its own SO_REUSEPORT listener and its own
/// QueryEngine replica over the shared SnapshotManager. Connections are
/// load-balanced across workers by the kernel's listener hash and stay on
/// one worker for life, so the request hot path touches no shared mutex —
/// each replica pins the snapshot generation per request and owns a private
/// response cache.
///
/// One request per '\n'-terminated line, one response line back, in order;
/// clients may pipeline (a batch arriving in one TCP segment is parsed and
/// answered with a single vectored write). Overload is shed with typed
/// `BUSY` lines instead of unbounded queueing. The server-level `stats`
/// verb answers with counters and a latency histogram merged across
/// workers.
///
/// Lifecycle: Start() binds/listens and spawns the worker threads, Stop()
/// initiates shutdown and is safe to call from any thread — including a
/// signal-watcher thread implementing graceful SIGINT. Wait() blocks until
/// Stop() has completed.
class Server {
 public:
  /// `manager` must outlive the server. Each worker gets its own
  /// QueryEngine replica constructed from `engine_options`.
  Server(SnapshotManager* manager, QueryEngineOptions engine_options,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the per-worker listeners and starts the loops. Fails with
  /// IOError when the port is unavailable and InvalidArgument on an
  /// inconsistent option set (num_workers == 0, or multiple workers
  /// without reuse_port).
  Status Start();

  /// The actually bound port (resolves port=0), valid after Start().
  uint16_t port() const { return port_; }

  /// Graceful shutdown; idempotent, callable from any thread.
  void Stop() EXCLUDES(stop_mu_);

  /// Blocks until the server has fully stopped.
  void Wait() EXCLUDES(stop_mu_);

  /// Counters summed across workers (diagnostics; relaxed reads).
  uint64_t connections_accepted() const;
  uint64_t requests_served() const;
  uint64_t requests_shed() const;

  /// The `stats` response line: worker count, summed counters, and
  /// latency percentiles from the merged per-worker histograms.
  std::string RenderStats() const;

 private:
  Status BindListener(uint16_t port, int* fd_out, uint16_t* bound_port_out);

  SnapshotManager* const manager_;  // not owned
  const QueryEngineOptions engine_options_;
  const ServerOptions options_;

  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<std::unique_ptr<EventLoopWorker>> workers_;

  uint16_t port_ = 0;
  std::atomic<bool> started_{false};

  Mutex stop_mu_;  // serializes Stop() callers, guards stopped_
  CondVar stopped_cv_;
  bool stopped_ GUARDED_BY(stop_mu_) = false;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_SERVER_H_
