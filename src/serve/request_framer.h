#ifndef SCHOLARRANK_SERVE_REQUEST_FRAMER_H_
#define SCHOLARRANK_SERVE_REQUEST_FRAMER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/query_engine.h"

namespace scholar {
namespace serve {

/// Socketless framing layer of the line protocol: turns raw bytes received
/// from an untrusted peer into QueryEngine requests and batched response
/// lines. Server feeds it each recv() chunk; tests and the fuzz harness
/// feed it arbitrary byte sequences directly — partial lines, many lines
/// per chunk, oversized garbage — without a TCP socket in the loop.
///
/// The framer owns the incomplete-line carry-over between chunks and the
/// protocol-abuse bound: when the unterminated tail outgrows
/// `max_line_bytes` the connection is condemned and every later chunk is
/// ignored.
class RequestFramer {
 public:
  /// `engine` must outlive the framer.
  RequestFramer(QueryEngine* engine, size_t max_line_bytes)
      : engine_(engine), max_line_bytes_(max_line_bytes) {}

  /// Consumes one chunk of connection bytes. Every '\n'-terminated request
  /// completed by this chunk is executed in order and its response line
  /// (with trailing '\n') appended to `*responses`; an unterminated tail is
  /// carried over to the next call. A trailing '\r' per line is stripped
  /// (telnet clients). Returns false — permanently, once tripped — when the
  /// carried tail exceeds the line bound; the caller must drop the
  /// connection and discard any batched responses.
  bool HandleRequestBytes(std::string_view bytes, std::string* responses);

  /// Unterminated bytes currently carried between chunks (diagnostics).
  size_t pending_bytes() const { return pending_.size(); }

 private:
  QueryEngine* const engine_;  // not owned
  const size_t max_line_bytes_;
  std::string pending_;
  bool condemned_ = false;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_REQUEST_FRAMER_H_
