#ifndef SCHOLARRANK_SERVE_REQUEST_FRAMER_H_
#define SCHOLARRANK_SERVE_REQUEST_FRAMER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "serve/query_engine.h"

namespace scholar {
namespace serve {

/// Answers one complete request line (no trailing newline) with one
/// response line (no trailing newline). The event loop installs a handler
/// that layers backpressure accounting and the STATS verb in front of its
/// QueryEngine replica; tests and the fuzz harness bind an engine directly.
using LineHandler = std::function<std::string(std::string_view)>;

/// Socketless framing layer of the line protocol: turns raw bytes received
/// from an untrusted peer into request lines and batched response lines.
/// The server feeds it each recv() chunk; tests and the fuzz harness feed
/// it arbitrary byte sequences directly — partial lines, many lines per
/// chunk, oversized garbage — without a TCP socket in the loop.
///
/// The framer owns the incomplete-line carry-over between chunks and the
/// protocol-abuse bound: when the unterminated tail outgrows
/// `max_line_bytes` the connection is condemned and every later chunk is
/// ignored.
class RequestFramer {
 public:
  /// Convenience binding: every complete line goes straight to
  /// `engine->Execute`. `engine` must outlive the framer.
  RequestFramer(QueryEngine* engine, size_t max_line_bytes)
      : RequestFramer(
            [engine](std::string_view line) { return engine->Execute(line); },
            max_line_bytes) {}

  /// General seam: the event loop wraps its engine replica with
  /// backpressure/shedding and server-level verbs before the framer sees a
  /// single byte. `handler` must remain valid for the framer's lifetime.
  RequestFramer(LineHandler handler, size_t max_line_bytes)
      : handler_(std::move(handler)), max_line_bytes_(max_line_bytes) {}

  /// Consumes one chunk of connection bytes. Every '\n'-terminated request
  /// completed by this chunk is executed in order and its response line
  /// (with trailing '\n') appended to `*responses`; an unterminated tail is
  /// carried over to the next call. A trailing '\r' per line is stripped
  /// (telnet clients). Returns false — permanently, once tripped — when the
  /// carried tail exceeds the line bound; the caller must drop the
  /// connection and discard any batched responses.
  bool HandleRequestBytes(std::string_view bytes, std::string* responses);

  /// Unterminated bytes currently carried between chunks (diagnostics).
  size_t pending_bytes() const { return pending_.size(); }

 private:
  const LineHandler handler_;
  const size_t max_line_bytes_;
  std::string pending_;
  bool condemned_ = false;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_REQUEST_FRAMER_H_
