#ifndef SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_
#define SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace scholar {
namespace serve {

/// A snapshot installed in a SnapshotManager, tagged with the manager's own
/// monotone generation counter. The generation disambiguates two installs
/// of byte-identical files, which matters to anything keyed on "which
/// snapshot answered this" (e.g. the query cache).
struct LiveSnapshot {
  uint64_t generation = 0;
  ScoreSnapshot snapshot;
};

/// Holds the snapshot a server is currently answering from, and swaps in
/// replacements with zero downtime.
///
/// Readers call Current() and keep the returned shared_ptr for the duration
/// of one request; a concurrent Install() publishes the replacement under a
/// brief mutex hold, after which new requests see the new snapshot while
/// in-flight requests finish against the old one. The old snapshot's memory
/// is released when its last reader drops its reference — the "drain" is the
/// shared_ptr refcount, no coordination required.
///
/// The publication point is a Mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic is not lock-free
/// either (it spins on a lock bit embedded in the control-block pointer),
/// and its reader path unlocks with a relaxed RMW, which TSan flags as a
/// formal data race between Install()'s pointer store and Current()'s load.
/// An annotated Mutex costs the same uncontended CAS, is checkable by the
/// thread-safety analysis, and keeps the suite TSan-clean.
///
/// LoadFile() fully reads and validates (checksums, structural invariants)
/// before publishing, so a corrupt or version-mismatched file can never
/// replace a healthy live snapshot: on any failure the previous snapshot
/// stays installed and the error Status is returned to the caller.
class SnapshotManager {
 public:
  SnapshotManager() = default;
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Reads + validates `path`, then atomically installs it. On failure the
  /// currently installed snapshot (if any) is untouched.
  Status LoadFile(const std::string& path);

  /// Atomically installs an in-memory snapshot (used by tests and by
  /// offline→online handoff within one process).
  void Install(ScoreSnapshot snapshot) EXCLUDES(mu_);

  /// The live snapshot, or nullptr when nothing has been installed yet.
  /// Safe from any thread; the lock is held only for a shared_ptr copy.
  std::shared_ptr<const LiveSnapshot> Current() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return current_;
  }

  /// Number of successful installs so far.
  uint64_t generation() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return generation_;
  }

 private:
  mutable Mutex mu_;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  std::shared_ptr<const LiveSnapshot> current_ GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_
