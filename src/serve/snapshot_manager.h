#ifndef SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_
#define SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/snapshot.h"
#include "util/status.h"

namespace scholar {
namespace serve {

/// A snapshot installed in a SnapshotManager, tagged with the manager's own
/// monotone generation counter. The generation disambiguates two installs
/// of byte-identical files, which matters to anything keyed on "which
/// snapshot answered this" (e.g. the query cache).
struct LiveSnapshot {
  uint64_t generation = 0;
  ScoreSnapshot snapshot;
};

/// Holds the snapshot a server is currently answering from, and swaps in
/// replacements with zero downtime.
///
/// Readers call Current() and keep the returned shared_ptr for the duration
/// of one request; a concurrent Install() publishes the replacement
/// atomically, after which new requests see the new snapshot while in-flight
/// requests finish against the old one. The old snapshot's memory is
/// released when its last reader drops its reference — the "drain" is the
/// shared_ptr refcount, no coordination required.
///
/// LoadFile() fully reads and validates (checksums, structural invariants)
/// before publishing, so a corrupt or version-mismatched file can never
/// replace a healthy live snapshot: on any failure the previous snapshot
/// stays installed and the error Status is returned to the caller.
class SnapshotManager {
 public:
  SnapshotManager() = default;
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Reads + validates `path`, then atomically installs it. On failure the
  /// currently installed snapshot (if any) is untouched.
  Status LoadFile(const std::string& path);

  /// Atomically installs an in-memory snapshot (used by tests and by
  /// offline→online handoff within one process).
  void Install(ScoreSnapshot snapshot);

  /// The live snapshot, or nullptr when nothing has been installed yet.
  /// Never blocks; safe from any thread.
  std::shared_ptr<const LiveSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Number of successful installs so far.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> generation_{0};
  std::atomic<std::shared_ptr<const LiveSnapshot>> current_{nullptr};
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_SNAPSHOT_MANAGER_H_
