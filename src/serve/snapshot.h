#ifndef SCHOLARRANK_SERVE_SNAPSHOT_H_
#define SCHOLARRANK_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/scholar_ranker.h"
#include "graph/citation_graph.h"
#include "util/status.h"

namespace scholar {
namespace serve {

/// Provenance carried inside a snapshot file, so an operator can always ask
/// a live server what it is serving.
struct SnapshotMeta {
  /// Monotonically increasing artifact version chosen by the producer
  /// (e.g. a pipeline run id). 0 is valid.
  uint64_t snapshot_id = 0;
  /// Build wall-clock time, seconds since the Unix epoch (0 = unknown).
  int64_t created_unix = 0;
  /// Ranker that produced the scores ("ens_twpr", ...).
  std::string ranker_name;
  /// Corpus the scores were computed over.
  std::string corpus_name;

  bool operator==(const SnapshotMeta&) const = default;
};

/// An immutable, self-verifying serving artifact: everything the online
/// half of the system needs to answer top-k / score / rank / percentile /
/// ranked-neighbor queries without touching the offline pipeline.
///
/// On-disk layout (little-endian, version 1):
///
///   magic "SRSS" | u32 version
///   u64 num_nodes | u64 num_edges
///   u64 snapshot_id | i64 created_unix
///   u32 len + bytes (ranker name) | u32 len + bytes (corpus name)
///   u32 num_sections
///   num_sections x { u32 tag | u64 payload_bytes | u32 crc32 }
///   payloads, in section-table order
///
/// Every payload section carries its own CRC32; the reader rejects any
/// mismatch with Status::Corruption, so a torn copy or bit rot can never be
/// hot-swapped into a live server. The descending score order is
/// precomputed at build time (`Top(k)` is an O(k) array slice, not an
/// O(n log n) sort), and both citation directions are embedded so ranked
/// neighbor queries need no side channel to the graph.
class ScoreSnapshot {
 public:
  /// Assembles a snapshot from an offline ranking of `graph`. Fails if the
  /// ranking shape does not match the graph.
  static Result<ScoreSnapshot> Build(const CitationGraph& graph,
                                     const RankingOutput& ranking,
                                     SnapshotMeta meta);

  size_t num_nodes() const { return scores_.size(); }
  size_t num_edges() const { return in_neighbors_.size(); }
  const SnapshotMeta& meta() const { return meta_; }

  /// Per-article lookups. Callers must pass id < num_nodes().
  double score(NodeId id) const { return scores_[id]; }
  /// The full score array, indexed by id — the scatter-gather top-k path
  /// partitions this id space into shards.
  std::span<const double> scores() const { return scores_; }
  uint32_t rank(NodeId id) const { return ranks_[id]; }
  double percentile(NodeId id) const { return percentiles_[id]; }
  Year year(NodeId id) const { return years_[id]; }

  /// The k best articles, best first — a view into the precomputed order,
  /// O(k). k is clamped to num_nodes().
  std::span<const NodeId> Top(size_t k) const;

  /// Articles ranked `offset .. offset+k` (0 = best), for paged top-k.
  /// Empty when offset is past the end.
  std::span<const NodeId> TopPage(size_t offset, size_t k) const;

  /// Articles citing `id` / cited by `id`, in snapshot storage order.
  std::span<const NodeId> Citers(NodeId id) const {
    return {in_neighbors_.data() + in_offsets_[id],
            static_cast<size_t>(in_offsets_[id + 1] - in_offsets_[id])};
  }
  std::span<const NodeId> References(NodeId id) const {
    return {out_neighbors_.data() + out_offsets_[id],
            static_cast<size_t>(out_offsets_[id + 1] - out_offsets_[id])};
  }

  /// Serialization. WriteTo emits the format documented above; Read
  /// validates magic, version, section table, checksums, and structural
  /// invariants (permutation order, monotone offsets, in-range neighbors)
  /// before returning.
  Status WriteTo(std::ostream* out) const;
  Status WriteToFile(const std::string& path) const;
  static Result<ScoreSnapshot> Read(std::istream* in);
  static Result<ScoreSnapshot> ReadFile(const std::string& path);

  bool operator==(const ScoreSnapshot&) const = default;

 private:
  SnapshotMeta meta_;
  std::vector<Year> years_;
  std::vector<double> scores_;
  std::vector<uint32_t> ranks_;
  std::vector<double> percentiles_;
  /// Node ids in descending score order (the top-k index).
  std::vector<NodeId> order_;
  /// Reverse adjacency (who cites me) and forward adjacency (whom I cite).
  std::vector<uint64_t> in_offsets_{0};
  std::vector<NodeId> in_neighbors_;
  std::vector<uint64_t> out_offsets_{0};
  std::vector<NodeId> out_neighbors_;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_SNAPSHOT_H_
