#ifndef SCHOLARRANK_SERVE_QUERY_ENGINE_H_
#define SCHOLARRANK_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/lru_cache.h"
#include "serve/snapshot_manager.h"

namespace scholar {
namespace serve {

struct QueryEngineOptions {
  /// Entries in the paged top-k response cache (0 disables it).
  size_t cache_entries = 256;
  /// Upper bound on k for list-shaped responses, so one request cannot ask
  /// the server to render the whole corpus.
  size_t max_k = 1000;
  /// When false, the `reload` admin command is rejected (loadgen-facing
  /// deployments may not want file paths accepted over the wire).
  bool allow_reload = true;
  /// When > 0, `top_k` answers through the scatter-gather merge path with
  /// this many id-space shards instead of slicing the precomputed order —
  /// bit-identical output (same score-desc/id-asc convention), exercised
  /// in production as the serving half of partitioned ranking. 0 keeps the
  /// O(k) order-slice fast path; `top_k_merge` remains available either
  /// way for side-by-side comparison.
  size_t topk_shards = 0;
};

/// Executes one line-protocol request against the live snapshot.
///
/// Requests (one per line, space-separated tokens):
///
///   top_k <k> [offset]            OK <id>:<score> ... (best first)
///   top_k_merge <k> [offset]      same page via scatter-gather shard merge
///   score <id>                    OK <score>
///   rank <id>                     OK <rank>            (0 = best)
///   percentile <id>               OK <pct>             (1 = best)
///   neighbors <id> citers|refs [k]  OK <id>:<score> ... (score-ranked)
///   info                          OK nodes=... edges=... snapshot_id=...
///   ping                          OK pong
///   reload <path>                 OK generation=<g>  (hot-swap snapshot)
///
/// Every failure is a one-line `ERR <message>`; the engine never throws and
/// never closes the connection itself. Responses for paged top-k are
/// memoized in an LRU cache; the key spells out every bound that shapes
/// the page — (generation, k, offset) — so no two distinct pages can ever
/// collide and a cache entry can never outlive a hot-swap: the swap bumps
/// the generation and old keys just age out.
///
/// The multithreaded server gives each event-loop worker its own
/// QueryEngine replica over the shared SnapshotManager: each replica pins
/// the manager's generation per request (the Current() shared_ptr) and
/// owns a private LRU cache, so the request hot path crosses no
/// shared-cache mutex.
class QueryEngine {
 public:
  explicit QueryEngine(SnapshotManager* manager, QueryEngineOptions options = {});

  /// Handles one request line (without trailing newline) and returns the
  /// one-line response (without trailing newline). Thread-safe.
  std::string Execute(std::string_view line);

  uint64_t cache_hits() const { return top_cache_.hits(); }
  uint64_t cache_misses() const { return top_cache_.misses(); }

 private:
  SnapshotManager* const manager_;  // not owned
  const QueryEngineOptions options_;
  LruCache<std::string, std::string> top_cache_;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_QUERY_ENGINE_H_
