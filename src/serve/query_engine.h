#ifndef SCHOLARRANK_SERVE_QUERY_ENGINE_H_
#define SCHOLARRANK_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/lru_cache.h"
#include "serve/snapshot_manager.h"

namespace scholar {
namespace serve {

struct QueryEngineOptions {
  /// Entries in the paged top-k response cache (0 disables it).
  size_t cache_entries = 256;
  /// Upper bound on k for list-shaped responses, so one request cannot ask
  /// the server to render the whole corpus.
  size_t max_k = 1000;
  /// When false, the `reload` admin command is rejected (loadgen-facing
  /// deployments may not want file paths accepted over the wire).
  bool allow_reload = true;
};

/// Executes one line-protocol request against the live snapshot.
///
/// Requests (one per line, space-separated tokens):
///
///   top_k <k> [offset]            OK <id>:<score> ... (best first)
///   score <id>                    OK <score>
///   rank <id>                     OK <rank>            (0 = best)
///   percentile <id>               OK <pct>             (1 = best)
///   neighbors <id> citers|refs [k]  OK <id>:<score> ... (score-ranked)
///   info                          OK nodes=... edges=... snapshot_id=...
///   ping                          OK pong
///   reload <path>                 OK generation=<g>  (hot-swap snapshot)
///
/// Every failure is a one-line `ERR <message>`; the engine never throws and
/// never closes the connection itself. Responses for paged top-k are
/// memoized in an LRU cache keyed by (generation, k, offset), so a cache
/// entry can never outlive a hot-swap: the swap bumps the generation and
/// old keys just age out.
class QueryEngine {
 public:
  explicit QueryEngine(SnapshotManager* manager, QueryEngineOptions options = {});

  /// Handles one request line (without trailing newline) and returns the
  /// one-line response (without trailing newline). Thread-safe.
  std::string Execute(std::string_view line);

  uint64_t cache_hits() const { return top_cache_.hits(); }
  uint64_t cache_misses() const { return top_cache_.misses(); }

 private:
  SnapshotManager* const manager_;  // not owned
  const QueryEngineOptions options_;
  LruCache<std::string, std::string> top_cache_;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_QUERY_ENGINE_H_
