#include "serve/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace scholar {
namespace serve {
namespace {

/// epoll user-data sentinels for the two non-connection fds. Never valid
/// heap pointers, so they cannot collide with a Connection*.
void* const kListenTag = reinterpret_cast<void*>(uintptr_t{1});
void* const kWakeTag = reinterpret_cast<void*>(uintptr_t{2});

}  // namespace

/// Per-connection state, confined to the owning worker thread.
struct EventLoopWorker::Connection {
  Connection(EventLoopWorker* worker, int fd_in, size_t max_line_bytes)
      : fd(fd_in),
        framer(
            [worker, this](std::string_view line) {
              return worker->HandleLine(this, line);
            },
            max_line_bytes) {}

  int fd;
  /// Kernel may hold more readable bytes (edge seen, not yet drained to
  /// EAGAIN). Left true when a drain pauses for write backpressure, so the
  /// flush path knows to resume reading.
  bool read_ready = false;
  /// Closed during this epoll batch; the entry survives until SweepDead()
  /// because later events of the same batch may still reference it.
  bool dead = false;
  /// Requests answered in the current drain (per-connection backpressure).
  size_t batch_requests = 0;

  /// Response bytes the kernel has not accepted yet: `carry` holds the
  /// unsent remainder of earlier batches (first `carry_offset` bytes
  /// already written), `batch` the responses of the current drain. A flush
  /// hands both to one sendmsg.
  std::string carry;
  size_t carry_offset = 0;
  std::string batch;

  size_t pending_write_bytes() const {
    return carry.size() - carry_offset + batch.size();
  }

  RequestFramer framer;
};

EventLoopWorker::EventLoopWorker(size_t index, QueryEngine* engine,
                                 EventLoopOptions options, LineHandler control)
    : index_(index),
      engine_(engine),
      options_(options),
      control_(std::move(control)),
      read_buf_(64 * 1024) {}

EventLoopWorker::~EventLoopWorker() {
  RequestStop();
  Join();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status EventLoopWorker::Start(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.ptr = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(listener): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN;  // level-triggered: never missed, drained on wake
  ev.data.ptr = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wakeup): ") +
                           std::strerror(errno));
  }

  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoopWorker::RequestStop() {
  stopping_.store(true, std::memory_order_release);  // NOLINT(atomic-confinement): release pairs with the acquire load in Run(); the eventfd write below orders the wakeup itself
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // Best effort: a full eventfd counter still wakes the loop.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void EventLoopWorker::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoopWorker::Run() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];

  while (!stopping_.load(std::memory_order_acquire)) {  // NOLINT(atomic-confinement): acquire pairs with the release store in RequestStop(); epoll_wait supplies no ordering of its own
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing left to serve
    }
    cycle_requests_ = 0;
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;  // stopping_ is re-checked by the outer loop
      }
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      auto* conn = static_cast<Connection*>(tag);
      if (conn->dead) continue;
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (ev & EPOLLOUT) {
        // The socket turned writable again after a short write: push the
        // carried bytes out, then resume a drain paused on backpressure.
        FlushConnection(conn);
        if (!conn->dead && conn->read_ready &&
            conn->pending_write_bytes() < options_.max_pending_write_bytes) {
          DrainConnection(conn);
        }
      }
      if (!conn->dead && (ev & (EPOLLIN | EPOLLRDHUP))) DrainConnection(conn);
    }
    SweepDead();
  }

  // Abrupt shutdown: the Server sequences any graceful draining above this
  // layer; by the time the loop exits the process is going down or tests
  // are tearing the server apart. The listener closes first so the kernel
  // stops queueing new connections into a backlog nobody will ever accept.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& conn : connections_) {
    if (!conn->dead) ::close(conn->fd);
  }
  connections_.clear();
  dead_connections_ = 0;
}

void EventLoopWorker::AcceptReady() {
  // Edge-triggered listener: accept until EAGAIN or the kernel hands the
  // connection to a sibling worker's SO_REUSEPORT listener.
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient per-connection accept failure
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone stat counter; readers tolerate staleness and never derive control flow needing ordering
    if (options_.tcp_nodelay) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Connection>(this, fd, options_.max_line_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.push_back(std::move(conn));
  }
}

void EventLoopWorker::DrainConnection(Connection* conn) {
  conn->read_ready = true;
  while (conn->read_ready && !conn->dead) {
    if (conn->pending_write_bytes() >= options_.max_pending_write_bytes) {
      // Slow reader: stop pulling requests until the flush path brings the
      // backlog under the bound (read_ready stays true so it resumes us).
      return;
    }
    conn->batch_requests = 0;
    while (conn->pending_write_bytes() < options_.max_pending_write_bytes) {
      const ssize_t n = ::recv(conn->fd, read_buf_.data(), read_buf_.size(), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          conn->read_ready = false;
          break;
        }
        CloseConnection(conn);
        return;
      }
      if (n == 0) {  // peer closed; anything unflushed is undeliverable
        CloseConnection(conn);
        return;
      }
      // The framer appends one response line per completed request to the
      // batch buffer; false means the protocol-abuse bound tripped, and the
      // contract is to drop the connection and its batched responses.
      if (!conn->framer.HandleRequestBytes(
              std::string_view(read_buf_.data(), static_cast<size_t>(n)),
              &conn->batch)) {
        CloseConnection(conn);
        return;
      }
    }
    FlushConnection(conn);
  }
}

void EventLoopWorker::FlushConnection(Connection* conn) {
  while (!conn->dead && conn->pending_write_bytes() > 0) {
    // One vectored write covers the carried remainder plus the fresh batch
    // (sendmsg is writev with MSG_NOSIGNAL: a dead peer must error out, not
    // raise SIGPIPE in a serving thread).
    iovec iov[2];
    int iovcnt = 0;
    size_t carry_left = conn->carry.size() - conn->carry_offset;
    if (carry_left > 0) {
      iov[iovcnt++] = {conn->carry.data() + conn->carry_offset, carry_left};
    }
    if (!conn->batch.empty()) {
      iov[iovcnt++] = {conn->batch.data(), conn->batch.size()};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // ET: EPOLLOUT later
      CloseConnection(conn);
      return;
    }
    size_t written = static_cast<size_t>(n);
    const size_t from_carry = std::min(written, carry_left);
    conn->carry_offset += from_carry;
    written -= from_carry;
    if (written > 0) {
      // The whole carry went out and part of the batch followed: the batch
      // remainder becomes the new carry.
      conn->carry.assign(conn->batch, written, std::string::npos);
      conn->carry_offset = 0;
      conn->batch.clear();
    }
  }
  if (conn->dead) return;
  if (conn->carry_offset == conn->carry.size()) {
    // Fully caught up on the carry; promote any batch remainder so the next
    // drain starts with an empty batch buffer.
    conn->carry = std::move(conn->batch);
    conn->carry_offset = 0;
  } else if (!conn->batch.empty()) {
    conn->carry.erase(0, conn->carry_offset);
    conn->carry_offset = 0;
    conn->carry += conn->batch;
  }
  conn->batch.clear();
}

void EventLoopWorker::CloseConnection(Connection* conn) {
  if (conn->dead) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
  ++dead_connections_;
}

void EventLoopWorker::SweepDead() {
  if (dead_connections_ == 0) return;
  for (size_t i = 0; i < connections_.size();) {
    if (!connections_[i]->dead) {
      ++i;
      continue;
    }
    if (i + 1 != connections_.size()) {
      connections_[i] = std::move(connections_.back());
    }
    connections_.pop_back();
  }
  dead_connections_ = 0;
}

std::string EventLoopWorker::HandleLine(Connection* conn,
                                        std::string_view line) {
  if (conn->batch_requests >= options_.max_batch_requests ||
      cycle_requests_ >= options_.max_cycle_requests) {
    counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone stat counter; readers tolerate staleness and never derive control flow needing ordering
    return "BUSY";
  }
  ++conn->batch_requests;
  ++cycle_requests_;
  counters_.requests_served.fetch_add(1, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone stat counter; readers tolerate staleness and never derive control flow needing ordering
  if (control_) {
    std::string response = control_(line);
    if (!response.empty()) return response;
  }
  const uint64_t start = NowNanos();
  std::string response = engine_->Execute(line);
  histogram_.Record(NowNanos() - start);
  return response;
}

}  // namespace serve
}  // namespace scholar
