#include "serve/latency_histogram.h"

#include <chrono>

namespace scholar {
namespace serve {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void MergedHistogram::Add(const LatencyHistogram& h) {
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const uint64_t c = h.bucket(i);
    counts_[i] += c;
    total_ += c;
  }
}

uint64_t MergedHistogram::PercentileNanos(double p) const {
  if (total_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(total_);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target && counts_[i] > 0) {
      // Upper boundary of bucket i is 2^(i+1) - 1 ns (bit-width i+1).
      return (i + 1 >= 64) ? ~uint64_t{0} : (uint64_t{1} << (i + 1)) - 1;
    }
  }
  return ~uint64_t{0};
}

}  // namespace serve
}  // namespace scholar
