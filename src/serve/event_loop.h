#ifndef SCHOLARRANK_SERVE_EVENT_LOOP_H_
#define SCHOLARRANK_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/latency_histogram.h"
#include "serve/query_engine.h"
#include "serve/request_framer.h"
#include "util/status.h"

namespace scholar {
namespace serve {

/// Knobs of one event-loop worker (shared by every worker of a Server).
struct EventLoopOptions {
  /// A request line longer than this kills the connection (protocol abuse).
  size_t max_line_bytes = 1 << 16;
  /// Backpressure, per connection: requests answered from one socket drain
  /// beyond this bound are shed with a typed `BUSY` line instead of being
  /// executed — a pipelining client that outruns the server by a whole
  /// batch gets an explicit signal, not unbounded queueing.
  size_t max_batch_requests = 1024;
  /// Backpressure, per worker: total requests executed in one epoll cycle.
  /// Bounds a cycle's wall-clock when many connections are ready at once
  /// with deep pipelines, so shed requests see a fast BUSY instead of
  /// inflating every connection's tail latency.
  size_t max_cycle_requests = 8192;
  /// Flow control for slow readers: once this many unflushed response
  /// bytes queue on a connection, the worker stops reading new requests
  /// from it until the kernel accepts the backlog.
  size_t max_pending_write_bytes = 4 << 20;
  /// Disable Nagle on accepted sockets. Small single-request responses
  /// otherwise wait out delayed-ACK timers, inflating p99 by ~40 ms.
  bool tcp_nodelay = true;
};

/// Monotonic counters of one worker, readable from any thread (relaxed
/// atomics; the worker thread is the only writer).
struct WorkerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> requests_shed{0};
};

/// One serving worker: an edge-triggered epoll loop owning a SO_REUSEPORT
/// listener, its private QueryEngine replica, and every connection the
/// kernel hashes to its listener.
///
/// All per-connection state is confined to the worker thread — no mutex on
/// the request path. Pipelined requests that arrive in one TCP segment are
/// parsed by the shared fuzz-hardened RequestFramer, answered as a batch,
/// and flushed with a single writev. Server-level verbs (`stats`) and the
/// backpressure policy wrap the engine through the framer's LineHandler
/// seam, so the framer byte-handling the fuzzer exercises is exactly what
/// runs here.
class EventLoopWorker {
 public:
  /// `engine` is this worker's replica and must outlive the worker.
  /// `control` answers server-scoped verbs (currently `stats`); empty
  /// means the verb falls through to the engine.
  EventLoopWorker(size_t index, QueryEngine* engine, EventLoopOptions options,
                  LineHandler control);
  ~EventLoopWorker();

  EventLoopWorker(const EventLoopWorker&) = delete;
  EventLoopWorker& operator=(const EventLoopWorker&) = delete;

  /// Takes ownership of `listen_fd` (already bound + listening,
  /// non-blocking) and starts the loop thread.
  Status Start(int listen_fd);

  /// Asks the loop to exit; returns immediately. Join() completes the
  /// shutdown (open connections are closed, not drained — the Server
  /// sequences stop-accepting vs. drain policy above this layer).
  void RequestStop();
  void Join();

  const WorkerCounters& counters() const { return counters_; }
  const LatencyHistogram& histogram() const { return histogram_; }

 private:
  struct Connection;

  void Run();
  void AcceptReady();
  void DrainConnection(Connection* conn);
  void FlushConnection(Connection* conn);
  void CloseConnection(Connection* conn);
  void SweepDead();
  std::string HandleLine(Connection* conn, std::string_view line);

  const size_t index_;
  QueryEngine* const engine_;  // not owned
  const EventLoopOptions options_;
  const LineHandler control_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  /// Owned connections. A close during event dispatch only marks the entry
  /// dead (later events of the same epoll batch may still carry its
  /// pointer); SweepDead() reclaims entries between batches.
  std::vector<std::unique_ptr<Connection>> connections_;
  size_t dead_connections_ = 0;
  /// Requests executed in the current epoll cycle (worker backpressure).
  size_t cycle_requests_ = 0;
  /// recv() scratch, reused across connections (single-threaded loop).
  std::vector<char> read_buf_;

  WorkerCounters counters_;
  LatencyHistogram histogram_;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_EVENT_LOOP_H_
