#ifndef SCHOLARRANK_SERVE_LRU_CACHE_H_
#define SCHOLARRANK_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace scholar {
namespace serve {

/// Thread-safe LRU map with a fixed entry capacity. Used to memoize
/// rendered responses for repeated paged top-k requests; capacity is a
/// count of entries because values there are bounded by max_k.
///
/// Entries are never invalidated in place — callers embed anything that
/// affects the answer (in serving: the snapshot generation) in the key, so
/// stale generations simply age out.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a copy of the cached value and refreshes its recency.
  std::optional<Value> Get(const Key& key) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when over capacity. A capacity of 0 disables caching.
  void Put(const Key& key, Value value) EXCLUDES(mu_) {
    if (capacity_ == 0) return;
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return index_.size();
  }
  uint64_t hits() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  uint64_t misses() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  /// Recency list, front = most recent.
  std::list<std::pair<Key, Value>> order_ GUARDED_BY(mu_);
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_LRU_CACHE_H_
