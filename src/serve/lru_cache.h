#ifndef SCHOLARRANK_SERVE_LRU_CACHE_H_
#define SCHOLARRANK_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace scholar {
namespace serve {

/// Thread-safe LRU map with a fixed entry capacity. Used to memoize
/// rendered responses for repeated paged top-k requests; capacity is a
/// count of entries because values there are bounded by max_k.
///
/// Entries are never invalidated in place — callers embed anything that
/// affects the answer (in serving: the snapshot generation) in the key, so
/// stale generations simply age out.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a copy of the cached value and refreshes its recency.
  std::optional<Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when over capacity. A capacity of 0 disables caching.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_LRU_CACHE_H_
