#ifndef SCHOLARRANK_SERVE_LATENCY_HISTOGRAM_H_
#define SCHOLARRANK_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace scholar {
namespace serve {

/// The serving tier's only wall-clock read. Everything in src/serve/ that
/// wants a timestamp calls through here so the scholar_analyze determinism
/// rule can scope its wall-clock check to exactly one module: latency
/// measurement is allowed to read the clock, request handling is not.
/// Monotonic (steady_clock), nanoseconds since an arbitrary epoch.
uint64_t NowNanos();

/// Log-bucketed latency histogram, one per event-loop worker.
///
/// Bucket b counts samples whose nanosecond value has bit-width b, i.e.
/// bucket boundaries are powers of two (1ns, 2ns, 4ns, ... ~4.6 hours).
/// Recording is a single relaxed atomic increment, so the hot path never
/// takes a lock and concurrent scrapes (the STATS verb merges every
/// worker's histogram) read without stopping the worker. Relaxed ordering
/// is fine: a scrape needs a consistent-enough snapshot for percentiles,
/// not a linearizable count.
class LatencyHistogram {
 public:
  /// 64 buckets covers the whole uint64_t nanosecond range.
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t nanos) {
    const int width = 64 - __builtin_clzll(nanos | 1);
    buckets_[static_cast<size_t>(width - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Scrape-side merge of one or more worker histograms: plain counters,
/// built fresh per STATS request, no synchronization with the hot path
/// beyond the relaxed bucket loads.
class MergedHistogram {
 public:
  void Add(const LatencyHistogram& h);

  uint64_t total() const { return total_; }

  /// Upper bucket boundary (in nanoseconds) below which a fraction >= p of
  /// samples fall; 0 when empty. Log-bucketed, so the answer is exact only
  /// at power-of-two boundaries — the resolution an overload dashboard
  /// needs, at one add per request.
  uint64_t PercentileNanos(double p) const;

 private:
  std::array<uint64_t, LatencyHistogram::kBuckets> counts_{};
  uint64_t total_ = 0;
};

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_LATENCY_HISTOGRAM_H_
