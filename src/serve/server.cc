#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request_framer.h"

namespace scholar {
namespace serve {
namespace {

/// Writes the whole buffer, absorbing short writes. MSG_NOSIGNAL turns a
/// dead peer into an error return instead of SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(QueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(options), pool_(options.num_threads) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(std::string("bind port ") +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listening socket down; anything else on a closed
      // or failing listener also ends the loop.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (!pool_.Submit([this, fd] { HandleConnection(fd); })) {
      ::close(fd);
    }
  }
}

void Server::HandleConnection(int fd) {
  {
    MutexLock lock(conn_mu_);
    // Checked under conn_mu_ so this cannot race Stop()'s sweep: either the
    // sweep sees the fd in the set, or we see stopping_ here and bail.
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    open_connections_.insert(fd);
  }

  // The framer owns line reassembly and the protocol-abuse bound; this loop
  // only moves bytes. Answering every complete line in a chunk with one
  // send lets a pipelining client pay one syscall round trip per batch.
  RequestFramer framer(engine_, options_.max_line_bytes);
  std::string responses;
  std::vector<char> buffer(64 * 1024);
  for (;;) {
    ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, connection reset, or shut down
    responses.clear();
    const bool keep = framer.HandleRequestBytes(
        std::string_view(buffer.data(), static_cast<size_t>(n)), &responses);
    if (!keep) break;  // protocol abuse
    if (!responses.empty() && !SendAll(fd, responses)) break;
  }

  UntrackConnection(fd);
  ::close(fd);
}

void Server::UntrackConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_connections_.erase(fd);
}

void Server::Stop() {
  MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);

  if (started_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
    // Wake the accept loop; shutdown() (not just close()) guarantees a
    // blocked accept(2) returns.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    // Unblock every in-flight handler read; handlers then drain their
    // final batch and exit.
    MutexLock lock(conn_mu_);
    for (int fd : open_connections_) ::shutdown(fd, SHUT_RDWR);  // NOLINT(determinism): shutdown order is irrelevant, side effects only
  }
  pool_.Shutdown();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_ = true;
  stopped_cv_.NotifyAll();
}

void Server::Wait() {
  MutexLock lock(stop_mu_);
  while (!stopped_) stopped_cv_.Wait(stop_mu_);
}

}  // namespace serve
}  // namespace scholar
