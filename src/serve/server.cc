#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "serve/latency_histogram.h"

namespace scholar {
namespace serve {

Status ApplyListenerOptions(int fd, const ServerOptions& options) {
  const int reuse_addr = options.reuse_addr ? 1 : 0;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse_addr,
                   sizeof(reuse_addr)) < 0) {
    return Status::IOError(std::string("setsockopt(SO_REUSEADDR): ") +
                           std::strerror(errno));
  }
  const int reuse_port = options.reuse_port ? 1 : 0;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &reuse_port,
                   sizeof(reuse_port)) < 0) {
    return Status::IOError(std::string("setsockopt(SO_REUSEPORT): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Server::Server(SnapshotManager* manager, QueryEngineOptions engine_options,
               ServerOptions options)
    : manager_(manager),
      engine_options_(engine_options),
      options_(options) {
  EventLoopOptions loop_options;
  loop_options.max_line_bytes = options_.max_line_bytes;
  loop_options.max_batch_requests = options_.max_batch_requests;
  loop_options.max_cycle_requests = options_.max_cycle_requests;
  loop_options.max_pending_write_bytes = options_.max_pending_write_bytes;
  loop_options.tcp_nodelay = options_.tcp_nodelay;

  // Server-scoped verbs, layered in front of every engine replica through
  // the framer seam. RenderStats reads only atomics, so answering from any
  // worker thread is safe.
  LineHandler control = [this](std::string_view line) {
    if (line == "stats") return RenderStats();
    return std::string();
  };

  for (size_t i = 0; i < options_.num_workers; ++i) {
    engines_.push_back(
        std::make_unique<QueryEngine>(manager_, engine_options_));
    workers_.push_back(std::make_unique<EventLoopWorker>(
        i, engines_.back().get(), loop_options, control));
  }
}

Server::~Server() { Stop(); }

Status Server::BindListener(uint16_t port, int* fd_out,
                            uint16_t* bound_port_out) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  Status status = ApplyListenerOptions(fd, options_);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    status = Status::IOError(std::string("bind port ") + std::to_string(port) +
                             ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    status = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  *fd_out = fd;
  *bound_port_out = ntohs(addr.sin_port);
  return Status::OK();
}

Status Server::Start() {
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options_.num_workers > 1 && !options_.reuse_port) {
    return Status::InvalidArgument(
        "multiple workers need one SO_REUSEPORT listener each; "
        "set reuse_port or use num_workers=1");
  }
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  port_ = options_.port;
  for (size_t i = 0; i < workers_.size(); ++i) {
    // The first bind resolves port=0 to a concrete port; siblings then bind
    // the same resolved port so the kernel balances across them.
    int listen_fd = -1;
    uint16_t bound_port = 0;
    Status status = BindListener(port_, &listen_fd, &bound_port);
    if (status.ok()) {
      port_ = bound_port;
      status = workers_[i]->Start(listen_fd);
    }
    if (!status.ok()) {
      for (size_t j = 0; j < i; ++j) workers_[j]->RequestStop();
      for (size_t j = 0; j < i; ++j) workers_[j]->Join();
      return status;
    }
  }
  return Status::OK();
}

void Server::Stop() {
  MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  if (started_.load(std::memory_order_acquire)) {  // NOLINT(atomic-confinement): acquire pairs with the release store in Start(); workers_ writes happen-before it
    // Signal every worker first, then join: the loops wind down in
    // parallel, each closing its own listener and connections.
    for (auto& worker : workers_) worker->RequestStop();
    for (auto& worker : workers_) worker->Join();
  }
  stopped_ = true;
  stopped_cv_.NotifyAll();
}

void Server::Wait() {
  MutexLock lock(stop_mu_);
  while (!stopped_) stopped_cv_.Wait(stop_mu_);
}

uint64_t Server::connections_accepted() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->counters().connections_accepted.load(
        std::memory_order_relaxed);  // NOLINT(atomic-confinement): sums monotone stat counters; totals are advisory and tolerate per-worker staleness
  }
  return total;
}

uint64_t Server::requests_served() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total +=
        worker->counters().requests_served.load(std::memory_order_relaxed);  // NOLINT(atomic-confinement): sums monotone stat counters; totals are advisory and tolerate per-worker staleness
  }
  return total;
}

uint64_t Server::requests_shed() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->counters().requests_shed.load(std::memory_order_relaxed);  // NOLINT(atomic-confinement): sums monotone stat counters; totals are advisory and tolerate per-worker staleness
  }
  return total;
}

std::string Server::RenderStats() const {
  MergedHistogram merged;
  for (const auto& worker : workers_) merged.Add(worker->histogram());
  return "OK workers=" + std::to_string(workers_.size()) +
         " accepted=" + std::to_string(connections_accepted()) +
         " served=" + std::to_string(requests_served()) +
         " shed=" + std::to_string(requests_shed()) +
         " p50_ns=" + std::to_string(merged.PercentileNanos(0.50)) +
         " p90_ns=" + std::to_string(merged.PercentileNanos(0.90)) +
         " p99_ns=" + std::to_string(merged.PercentileNanos(0.99));
}

}  // namespace serve
}  // namespace scholar
