#include "serve/snapshot_manager.h"

#include <utility>

namespace scholar {
namespace serve {

Status SnapshotManager::LoadFile(const std::string& path) {
  SCHOLAR_ASSIGN_OR_RETURN(ScoreSnapshot snapshot,
                           ScoreSnapshot::ReadFile(path));
  Install(std::move(snapshot));
  return Status::OK();
}

void SnapshotManager::Install(ScoreSnapshot snapshot) {
  auto live = std::make_shared<LiveSnapshot>();
  // fetch_add makes concurrent Installs each claim a distinct generation.
  live->generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  live->snapshot = std::move(snapshot);
  current_.store(std::move(live), std::memory_order_release);
}

}  // namespace serve
}  // namespace scholar
