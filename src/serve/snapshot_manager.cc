#include "serve/snapshot_manager.h"

#include <utility>

namespace scholar {
namespace serve {

Status SnapshotManager::LoadFile(const std::string& path) {
  SCHOLAR_ASSIGN_OR_RETURN(ScoreSnapshot snapshot,
                           ScoreSnapshot::ReadFile(path));
  Install(std::move(snapshot));
  return Status::OK();
}

void SnapshotManager::Install(ScoreSnapshot snapshot) {
  // Build the LiveSnapshot outside the lock; only the generation claim and
  // the pointer publication happen under mu_, so concurrent readers stall
  // for a pointer swap at most — never for a snapshot copy.
  auto live = std::make_shared<LiveSnapshot>();
  live->snapshot = std::move(snapshot);
  MutexLock lock(mu_);
  live->generation = ++generation_;
  current_ = std::move(live);
}

}  // namespace serve
}  // namespace scholar
