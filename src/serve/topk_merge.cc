#include "serve/topk_merge.h"

#include <algorithm>

namespace scholar {
namespace serve {
namespace {

/// Heap comparator for the per-shard bounded min-heap: the *worst* entry
/// sits on top so it can be evicted when a better candidate arrives.
bool WorstOnTop(const ScoredId& a, const ScoredId& b) {
  return RanksBefore(a, b);
}

}  // namespace

std::vector<ScoredId> ShardTopK(std::span<const double> scores, NodeId begin,
                                NodeId end, size_t k) {
  std::vector<ScoredId> heap;
  if (k == 0 || begin >= end) return heap;
  heap.reserve(std::min<size_t>(k, end - begin));
  for (NodeId id = begin; id < end; ++id) {
    const ScoredId candidate{scores[id], id};
    if (heap.size() < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), WorstOnTop);
      continue;
    }
    if (!RanksBefore(candidate, heap.front())) continue;
    std::pop_heap(heap.begin(), heap.end(), WorstOnTop);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), WorstOnTop);
  }
  // sort_heap produces ascending order under the comparator; "ascending"
  // under better-than means best first — the return contract.
  std::sort_heap(heap.begin(), heap.end(), WorstOnTop);
  return heap;
}

std::vector<ScoredId> MergeTopK(
    const std::vector<std::vector<ScoredId>>& partials, size_t k) {
  // k-way merge over sorted runs; the frontier heap holds one cursor per
  // shard with the best head on top.
  struct Cursor {
    const std::vector<ScoredId>* run;
    size_t pos;
  };
  auto head_worse = [](const Cursor& a, const Cursor& b) {
    // std::*_heap keeps the max on top, so "max" must mean best head.
    return RanksBefore((*b.run)[b.pos], (*a.run)[a.pos]);
  };
  std::vector<Cursor> frontier;
  frontier.reserve(partials.size());
  for (const std::vector<ScoredId>& run : partials) {
    if (!run.empty()) frontier.push_back({&run, 0});
  }
  std::make_heap(frontier.begin(), frontier.end(), head_worse);

  std::vector<ScoredId> merged;
  merged.reserve(k);
  while (merged.size() < k && !frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), head_worse);
    Cursor& best = frontier.back();
    merged.push_back((*best.run)[best.pos]);
    if (++best.pos < best.run->size()) {
      std::push_heap(frontier.begin(), frontier.end(), head_worse);
    } else {
      frontier.pop_back();
    }
  }
  return merged;
}

std::vector<ScoredId> ScatterGatherTopPage(std::span<const double> scores,
                                           size_t shards, size_t offset,
                                           size_t k) {
  const size_t n = scores.size();
  if (n == 0 || k == 0 || offset >= n) return {};
  shards = std::max<size_t>(1, std::min(shards, n));
  // A page [offset, offset+k) needs the global best offset+k; every shard
  // must over-fetch that many since one shard could hold the whole prefix.
  // offset < n and k <= n after this clamp, so offset + need cannot wrap.
  const size_t need = std::min(offset + std::min(k, n), n);

  std::vector<std::vector<ScoredId>> partials;
  partials.reserve(shards);
  const size_t per_shard = n / shards;
  const size_t remainder = n % shards;
  NodeId begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const NodeId end =
        begin + static_cast<NodeId>(per_shard + (s < remainder ? 1 : 0));
    partials.push_back(ShardTopK(scores, begin, end, need));
    begin = end;
  }
  std::vector<ScoredId> merged = MergeTopK(partials, need);
  if (offset >= merged.size()) return {};
  merged.erase(merged.begin(),
               merged.begin() + static_cast<ptrdiff_t>(offset));
  return merged;
}

}  // namespace serve
}  // namespace scholar
