#include "serve/snapshot.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "util/byte_reader.h"
#include "util/crc32.h"

namespace scholar {
namespace serve {
namespace {

constexpr char kMagic[4] = {'S', 'R', 'S', 'S'};
constexpr uint32_t kVersion = 1;

/// Section tags, in file order. The reader requires exactly this set.
enum SectionTag : uint32_t {
  kYears = 1,
  kScores = 2,
  kRanks = 3,
  kPercentiles = 4,
  kOrder = 5,
  kInOffsets = 6,
  kInNeighbors = 7,
  kOutOffsets = 8,
  kOutNeighbors = 9,
};

struct SectionHeader {
  uint32_t tag = 0;
  uint64_t payload_bytes = 0;
  uint32_t crc32 = 0;
};

/// Metadata strings are names; a corrupt length should not drive a giant
/// allocation.
constexpr uint32_t kMaxMetaStringBytes = 1u << 20;

template <typename T>
void WriteRaw(std::ostream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

Status WriteString(std::ostream* out, const std::string& s) {
  if (s.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("snapshot metadata string too long");
  }
  WriteRaw(out, static_cast<uint32_t>(s.size()));
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
  return Status::OK();
}

template <typename T>
SectionHeader MakeSection(SectionTag tag, const std::vector<T>& v) {
  SectionHeader h;
  h.tag = tag;
  h.payload_bytes = v.size() * sizeof(T);
  h.crc32 = Crc32(v.data(), h.payload_bytes);
  return h;
}

template <typename T>
void WritePayload(std::ostream* out, const std::vector<T>& v) {
  if (!v.empty()) {
    out->write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

/// Reads one section's payload into `v`, verifying the element-size match
/// against the header's expected count and the checksum. All raw byte
/// movement goes through the bounds-checked ByteReader (the unchecked-read
/// contract).
template <typename T>
Status ReadPayload(ByteReader* reader, const SectionHeader& header,
                   size_t expected_count, std::vector<T>* v) {
  if (header.payload_bytes != expected_count * sizeof(T)) {
    return Status::Corruption(
        "section " + std::to_string(header.tag) + " has " +
        std::to_string(header.payload_bytes) + " bytes, expected " +
        std::to_string(expected_count * sizeof(T)));
  }
  SCHOLAR_RETURN_NOT_OK(reader->ReadVector(
      expected_count,
      ("snapshot section " + std::to_string(header.tag)).c_str(), v));
  const uint32_t crc = Crc32(v->data(), v->size() * sizeof(T));
  if (crc != header.crc32) {
    return Status::Corruption("checksum mismatch in section " +
                              std::to_string(header.tag));
  }
  return Status::OK();
}

Status ValidateOffsets(const std::vector<uint64_t>& offsets, size_t n,
                       size_t m, const char* which) {
  if (offsets.size() != n + 1 || offsets.front() != 0 || offsets.back() != m) {
    return Status::Corruption(std::string("inconsistent ") + which +
                              " offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption(std::string("non-monotone ") + which +
                                " offsets");
    }
  }
  return Status::OK();
}

Status ValidateNeighbors(const std::vector<NodeId>& neighbors, size_t n,
                         const char* which) {
  for (NodeId v : neighbors) {
    if (v >= n) {
      return Status::Corruption(std::string(which) +
                                " neighbor id out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ScoreSnapshot> ScoreSnapshot::Build(const CitationGraph& graph,
                                           const RankingOutput& ranking,
                                           SnapshotMeta meta) {
  const size_t n = graph.num_nodes();
  if (ranking.scores.size() != n || ranking.ranks.size() != n ||
      ranking.percentiles.size() != n) {
    return Status::InvalidArgument(
        "ranking shape (" + std::to_string(ranking.scores.size()) +
        " scores) does not match graph (" + std::to_string(n) + " nodes)");
  }
  ScoreSnapshot snap;
  snap.meta_ = std::move(meta);
  snap.years_ = graph.years();
  snap.scores_ = ranking.scores;
  snap.ranks_ = ranking.ranks;
  snap.percentiles_ = ranking.percentiles;
  snap.order_ = ranking.Descending();
  snap.in_offsets_ = graph.in_offsets();
  snap.in_neighbors_ = graph.in_neighbors();
  snap.out_offsets_ = graph.out_offsets();
  snap.out_neighbors_ = graph.out_neighbors();
  return snap;
}

std::span<const NodeId> ScoreSnapshot::Top(size_t k) const {
  return TopPage(0, k);
}

std::span<const NodeId> ScoreSnapshot::TopPage(size_t offset,
                                               size_t k) const {
  if (offset >= order_.size()) return {};
  return {order_.data() + offset, std::min(k, order_.size() - offset)};
}

Status ScoreSnapshot::WriteTo(std::ostream* out) const {
  out->write(kMagic, sizeof(kMagic));
  WriteRaw(out, kVersion);
  WriteRaw(out, static_cast<uint64_t>(num_nodes()));
  WriteRaw(out, static_cast<uint64_t>(num_edges()));
  WriteRaw(out, meta_.snapshot_id);
  WriteRaw(out, meta_.created_unix);
  SCHOLAR_RETURN_NOT_OK(WriteString(out, meta_.ranker_name));
  SCHOLAR_RETURN_NOT_OK(WriteString(out, meta_.corpus_name));

  const SectionHeader sections[] = {
      MakeSection(kYears, years_),
      MakeSection(kScores, scores_),
      MakeSection(kRanks, ranks_),
      MakeSection(kPercentiles, percentiles_),
      MakeSection(kOrder, order_),
      MakeSection(kInOffsets, in_offsets_),
      MakeSection(kInNeighbors, in_neighbors_),
      MakeSection(kOutOffsets, out_offsets_),
      MakeSection(kOutNeighbors, out_neighbors_),
  };
  WriteRaw(out, static_cast<uint32_t>(std::size(sections)));
  for (const SectionHeader& h : sections) {
    WriteRaw(out, h.tag);
    WriteRaw(out, h.payload_bytes);
    WriteRaw(out, h.crc32);
  }
  WritePayload(out, years_);
  WritePayload(out, scores_);
  WritePayload(out, ranks_);
  WritePayload(out, percentiles_);
  WritePayload(out, order_);
  WritePayload(out, in_offsets_);
  WritePayload(out, in_neighbors_);
  WritePayload(out, out_offsets_);
  WritePayload(out, out_neighbors_);
  if (!*out) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Status ScoreSnapshot::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteTo(&out);
}

Result<ScoreSnapshot> ScoreSnapshot::Read(std::istream* in) {
  ByteReader reader(in);
  char magic[4];
  if (!reader.ReadRaw(&magic) ||
      !std::equal(magic, magic + sizeof(magic), kMagic)) {
    return Status::Corruption("bad snapshot magic (not a snapshot file?)");
  }
  uint32_t version = 0;
  if (!reader.ReadRaw(&version)) {
    return Status::Corruption("truncated snapshot header");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version) + " (reader supports " +
                              std::to_string(kVersion) + ")");
  }
  uint64_t n = 0, m = 0;
  ScoreSnapshot snap;
  if (!reader.ReadRaw(&n) || !reader.ReadRaw(&m) ||
      !reader.ReadRaw(&snap.meta_.snapshot_id) ||
      !reader.ReadRaw(&snap.meta_.created_unix)) {
    return Status::Corruption("truncated snapshot header");
  }
  // Plausibility bound (2^38 elements ≈ 2 TiB of scores) so a corrupted
  // header cannot drive unbounded allocation.
  constexpr uint64_t kMaxElements = uint64_t{1} << 38;
  if (n > kMaxElements || m > kMaxElements) {
    return Status::Corruption("implausible snapshot header counts");
  }
  SCHOLAR_ASSIGN_OR_RETURN(
      snap.meta_.ranker_name,
      reader.ReadLengthPrefixedString("ranker name", kMaxMetaStringBytes));
  SCHOLAR_ASSIGN_OR_RETURN(
      snap.meta_.corpus_name,
      reader.ReadLengthPrefixedString("corpus name", kMaxMetaStringBytes));

  uint32_t num_sections = 0;
  if (!reader.ReadRaw(&num_sections)) {
    return Status::Corruption("truncated section table");
  }
  constexpr uint32_t kExpectedSections = 9;
  if (num_sections != kExpectedSections) {
    return Status::Corruption("snapshot has " + std::to_string(num_sections) +
                              " sections, expected " +
                              std::to_string(kExpectedSections));
  }
  SectionHeader headers[kExpectedSections];
  uint64_t declared_payload_bytes = 0;
  for (SectionHeader& h : headers) {
    if (!reader.ReadRaw(&h.tag) || !reader.ReadRaw(&h.payload_bytes) ||
        !reader.ReadRaw(&h.crc32)) {
      return Status::Corruption("truncated section table");
    }
    declared_payload_bytes += h.payload_bytes;
  }
  constexpr SectionTag kExpectedOrder[kExpectedSections] = {
      kYears,     kScores,      kRanks,      kPercentiles,  kOrder,
      kInOffsets, kInNeighbors, kOutOffsets, kOutNeighbors,
  };
  for (uint32_t i = 0; i < kExpectedSections; ++i) {
    if (headers[i].tag != kExpectedOrder[i]) {
      return Status::Corruption("unexpected section tag " +
                                std::to_string(headers[i].tag) +
                                " at position " + std::to_string(i));
    }
  }
  // When the stream is seekable (files, string buffers), reject a section
  // table whose declared payload cannot fit in the remaining bytes before
  // touching any payload — the typed error for "declared count overflows
  // the file size". Pipes fall through to the per-section truncation
  // checks, which catch the same corruption one section later.
  if (std::optional<uint64_t> remaining = reader.RemainingBytes()) {
    if (declared_payload_bytes > *remaining) {
      return Status::Corruption(
          "section table declares " + std::to_string(declared_payload_bytes) +
          " payload bytes but only " + std::to_string(*remaining) +
          " remain in the file");
    }
  }
  const size_t nn = static_cast<size_t>(n);
  const size_t mm = static_cast<size_t>(m);
  SCHOLAR_RETURN_NOT_OK(ReadPayload(&reader, headers[0], nn, &snap.years_));
  SCHOLAR_RETURN_NOT_OK(ReadPayload(&reader, headers[1], nn, &snap.scores_));
  SCHOLAR_RETURN_NOT_OK(ReadPayload(&reader, headers[2], nn, &snap.ranks_));
  SCHOLAR_RETURN_NOT_OK(
      ReadPayload(&reader, headers[3], nn, &snap.percentiles_));
  SCHOLAR_RETURN_NOT_OK(ReadPayload(&reader, headers[4], nn, &snap.order_));
  SCHOLAR_RETURN_NOT_OK(
      ReadPayload(&reader, headers[5], nn + 1, &snap.in_offsets_));
  SCHOLAR_RETURN_NOT_OK(
      ReadPayload(&reader, headers[6], mm, &snap.in_neighbors_));
  SCHOLAR_RETURN_NOT_OK(
      ReadPayload(&reader, headers[7], nn + 1, &snap.out_offsets_));
  SCHOLAR_RETURN_NOT_OK(
      ReadPayload(&reader, headers[8], mm, &snap.out_neighbors_));

  // Structural invariants beyond checksums: the top-k index must be a
  // permutation of the node ids, and both adjacencies must be well formed.
  std::vector<bool> seen(nn, false);
  for (NodeId id : snap.order_) {
    if (id >= nn || seen[id]) {
      return Status::Corruption("top-k order is not a permutation");
    }
    seen[id] = true;
  }
  SCHOLAR_RETURN_NOT_OK(ValidateOffsets(snap.in_offsets_, nn, mm, "in"));
  SCHOLAR_RETURN_NOT_OK(ValidateOffsets(snap.out_offsets_, nn, mm, "out"));
  SCHOLAR_RETURN_NOT_OK(ValidateNeighbors(snap.in_neighbors_, nn, "in"));
  SCHOLAR_RETURN_NOT_OK(ValidateNeighbors(snap.out_neighbors_, nn, "out"));
  return snap;
}

Result<ScoreSnapshot> ScoreSnapshot::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  return Read(&in);
}

}  // namespace serve
}  // namespace scholar
