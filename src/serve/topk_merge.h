#ifndef SCHOLARRANK_SERVE_TOPK_MERGE_H_
#define SCHOLARRANK_SERVE_TOPK_MERGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace scholar {
namespace serve {

/// Scatter-gather top-k over a partitioned id space.
///
/// The serving-side half of the ROADMAP partitioning item: when scores are
/// sharded (per-worker replicas today, per-partition score files at MAG
/// scale), there is no global precomputed order to slice a page from.
/// Instead each shard keeps a bounded partial heap of its own best
/// articles and a gather step merges the per-shard heaps. Results are
/// bit-identical to the ScoreSnapshot fast path: ordering is score
/// descending with ascending-id tie-break, the same convention
/// SortedByScore() bakes into the snapshot's order section.

/// One (score, id) candidate. Ordering: higher score wins, equal scores
/// fall back to the smaller id.
struct ScoredId {
  double score = 0.0;
  NodeId id = 0;
};

/// True when `a` ranks strictly better than `b`.
inline bool RanksBefore(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// The best `k` articles among ids [begin, end), best first, via a bounded
/// min-heap (O(range * log k), O(k) memory — never materializes the shard).
std::vector<ScoredId> ShardTopK(std::span<const double> scores, NodeId begin,
                                NodeId end, size_t k);

/// Merges per-shard partial results (each sorted best-first, as ShardTopK
/// returns) into the global best `k`, best first. Heap-based k-way merge:
/// O(k log s) for s shards.
std::vector<ScoredId> MergeTopK(
    const std::vector<std::vector<ScoredId>>& partials, size_t k);

/// Partitions [0, scores.size()) into `shards` contiguous ranges, scatters
/// ShardTopK over them, and gathers with MergeTopK. Returns the page
/// [offset, offset + k) of the global order, best first; empty when offset
/// is past the end. `shards` is clamped to [1, scores.size()].
std::vector<ScoredId> ScatterGatherTopPage(std::span<const double> scores,
                                           size_t shards, size_t offset,
                                           size_t k);

}  // namespace serve
}  // namespace scholar

#endif  // SCHOLARRANK_SERVE_TOPK_MERGE_H_
