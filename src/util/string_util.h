#ifndef SCHOLARRANK_UTIL_STRING_UTIL_H_
#define SCHOLARRANK_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace scholar {

/// Splits `s` on `sep`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits and drops empty fields ("a  b" on ' ' -> {"a","b"}).
std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins elements with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict integer parse of the whole string (optional leading '-').
Result<int64_t> ParseInt64(std::string_view s);

/// Uniform diagnostic for line-oriented untrusted-input parsers:
/// Corruption("<what> line <line>: <message>"). Every decoder that rejects
/// a line of someone else's bytes says where, so an operator can fix the
/// offending record instead of re-exporting the whole dump.
Status ParseError(std::string_view what, size_t line, std::string_view message);

/// Strict double parse of the whole string.
Result<double> ParseDouble(std::string_view s);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Formats a double with `digits` significant decimal places, no trailing
/// exponent ("0.8123").
std::string FormatDouble(double v, int digits = 4);

/// Thousands-separated integer ("1,247,753").
std::string FormatWithCommas(int64_t v);

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_STRING_UTIL_H_
