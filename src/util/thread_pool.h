#ifndef SCHOLARRANK_UTIL_THREAD_POOL_H_
#define SCHOLARRANK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scholar {

/// Fixed-size worker pool with a bounded-ish FIFO queue. Small on purpose:
/// callers need "run this task on some worker" and nothing else. Two kinds
/// of users share it: the TCP serving loop (one long-lived task per
/// connection) and the offline ranking core (many short chunk tasks via
/// ParallelFor, see util/parallel_for.h).
///
/// Destruction (or Shutdown()) stops accepting new work, runs everything
/// already queued, and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false when the pool is shutting down (the
  /// task is dropped).
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void Drain();

  /// Stops accepting tasks, finishes queued ones, joins workers.
  /// Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::mutex shutdown_mu_;         // serializes Shutdown() callers
  std::condition_variable wake_;   // workers wait on this
  std::condition_variable idle_;   // Drain() waits on this
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_THREAD_POOL_H_
