#ifndef SCHOLARRANK_UTIL_THREAD_POOL_H_
#define SCHOLARRANK_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace scholar {

/// Fixed-size worker pool with a bounded-ish FIFO queue. Small on purpose:
/// callers need "run this task on some worker" and nothing else. Two kinds
/// of users share it: the TCP serving loop (one long-lived task per
/// connection) and the offline ranking core (many short chunk tasks via
/// ParallelFor, see util/parallel_for.h).
///
/// Destruction (or Shutdown()) stops accepting new work, runs everything
/// already queued, and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false when the pool is shutting down (the
  /// task is dropped).
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle.
  void Drain() EXCLUDES(mu_);

  /// Stops accepting tasks, finishes queued ones, joins workers.
  /// Idempotent.
  void Shutdown() EXCLUDES(mu_, shutdown_mu_);

  /// Worker count chosen at construction. Constant for the pool's
  /// lifetime (Shutdown() joins the workers but does not change it), so
  /// it is safe to read from any thread without a lock.
  size_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// True when nothing is queued and no worker is running a task.
  bool idle_locked() const REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  }

  /// True when a worker waking up has something to do (or should exit).
  bool runnable_locked() const REQUIRES(mu_) {
    return shutdown_ || !queue_.empty();
  }

  const size_t num_threads_;

  Mutex mu_;
  Mutex shutdown_mu_;       // serializes Shutdown() callers; guards joins
  CondVar wake_;            // workers wait on this
  CondVar idle_;            // Drain() waits on this
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GUARDED_BY(shutdown_mu_);
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_THREAD_POOL_H_
