#ifndef SCHOLARRANK_UTIL_STATUS_H_
#define SCHOLARRANK_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace scholar {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kNotImplemented,
  kInternal,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Follows the RocksDB/Arrow idiom: library functions return Status (or
/// Result<T>) instead of throwing; callers propagate with
/// SCHOLAR_RETURN_NOT_OK.
///
/// [[nodiscard]] makes the compiler reject a plainly dropped Status; the
/// scholar_analyze unchecked-status rule closes the remaining gap by also
/// flagging `(void)` / static_cast<void> discards.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of an operation that yields a T on success.
///
/// Holds either a value or a non-OK Status. Accessing the value of a failed
/// Result aborts the process (programming error), mirroring
/// arrow::Result<T>.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Failure status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfNotOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfNotOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void AbortIfNotOk() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void AbortOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal::AbortOnBadResultAccess(std::get<Status>(repr_));
}

}  // namespace scholar

/// Propagates a non-OK Status out of the current function.
#define SCHOLAR_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::scholar::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value or propagates the
/// failure Status. Usage: SCHOLAR_ASSIGN_OR_RETURN(auto g, LoadGraph(path));
#define SCHOLAR_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  SCHOLAR_ASSIGN_OR_RETURN_IMPL(                                \
      SCHOLAR_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define SCHOLAR_STATUS_CONCAT_INNER(a, b) a##b
#define SCHOLAR_STATUS_CONCAT(a, b) SCHOLAR_STATUS_CONCAT_INNER(a, b)
#define SCHOLAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // SCHOLARRANK_UTIL_STATUS_H_
