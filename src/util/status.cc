#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace scholar {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortOnBadResultAccess(const Status& status) {
  // Process-fatal path: write straight to stderr rather than through
  // util/logging, which sits above Status in the layering.
  std::fprintf(stderr, "FATAL: accessed value of failed Result: %s\n",  // NOLINT(raw-stdout)
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace scholar
