#ifndef SCHOLARRANK_UTIL_THREAD_ANNOTATIONS_H_
#define SCHOLARRANK_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros.
///
/// These expand to `__attribute__((...))` capability annotations under
/// clang and to nothing everywhere else, so annotated headers stay
/// portable. Build with -Wthread-safety (cmake option
/// SCHOLAR_ENABLE_THREAD_SAFETY_ANALYSIS) to turn the annotations into
/// compile errors instead of documentation.
///
/// Conventions in this codebase (see DESIGN.md, "Static analysis"):
///  - every mutable member protected by a mutex carries GUARDED_BY(mu_);
///  - private helpers that assume the lock is already held are named
///    *_locked() / *Locked() and carry REQUIRES(mu_);
///  - public entry points that must not be called with the lock held
///    carry EXCLUDES(mu_);
///  - the annotated scholar::Mutex / MutexLock / CondVar wrappers in
///    util/mutex.h are used instead of naked std::mutex, because the
///    analysis cannot see through libstdc++'s unannotated types.

#if defined(__clang__) && !defined(SCHOLAR_SWIG)
#define SCHOLAR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SCHOLAR_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) SCHOLAR_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY SCHOLAR_THREAD_ANNOTATION__(scoped_lockable)

/// Data member is protected by the given capability.
#define GUARDED_BY(x) SCHOLAR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) SCHOLAR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held (exclusively) on entry and
/// does not release it.
#define REQUIRES(...) \
  SCHOLAR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Shared (reader) flavor of REQUIRES.
#define REQUIRES_SHARED(...) \
  SCHOLAR_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  SCHOLAR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  SCHOLAR_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability acquired earlier.
#define RELEASE(...) \
  SCHOLAR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  SCHOLAR_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is the
/// return value meaning success.
#define TRY_ACQUIRE(...) \
  SCHOLAR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on
/// self-locking entry points).
#define EXCLUDES(...) SCHOLAR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Dynamic assertion that the capability is held (e.g. after a fork).
#define ASSERT_CAPABILITY(x) \
  SCHOLAR_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SCHOLAR_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function body is not analyzed. Use only for trusted code
/// the analysis cannot express, with a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCHOLAR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SCHOLARRANK_UTIL_THREAD_ANNOTATIONS_H_
