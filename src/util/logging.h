#ifndef SCHOLARRANK_UTIL_LOGGING_H_
#define SCHOLARRANK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace scholar {

/// Severity of a log record. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity; records below it are discarded. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log record, emitted on destruction. Not part of the public API; use
/// the SCHOLAR_LOG / SCHOLAR_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace scholar

#define SCHOLAR_LOG_ENABLED(level) \
  (::scholar::LogLevel::level >= ::scholar::GetLogLevel())

/// Streams a log record: SCHOLAR_LOG(kInfo) << "built graph n=" << n;
#define SCHOLAR_LOG(level)                                              \
  if (!SCHOLAR_LOG_ENABLED(level)) {                                    \
  } else                                                                \
    ::scholar::internal::LogMessage(::scholar::LogLevel::level,         \
                                    __FILE__, __LINE__)                 \
        .stream()

/// Aborts with a message when `condition` is false. Always enabled; use for
/// programmer-error invariants, not for recoverable input validation (those
/// return Status).
#define SCHOLAR_CHECK(condition)                                        \
  if (condition) {                                                      \
  } else                                                                \
    ::scholar::internal::LogMessage(::scholar::LogLevel::kFatal,        \
                                    __FILE__, __LINE__)                 \
            .stream()                                                   \
        << "Check failed: " #condition " "

#define SCHOLAR_CHECK_OP(a, b, op) SCHOLAR_CHECK((a)op(b))
#define SCHOLAR_CHECK_EQ(a, b) SCHOLAR_CHECK_OP(a, b, ==)
#define SCHOLAR_CHECK_NE(a, b) SCHOLAR_CHECK_OP(a, b, !=)
#define SCHOLAR_CHECK_LT(a, b) SCHOLAR_CHECK_OP(a, b, <)
#define SCHOLAR_CHECK_LE(a, b) SCHOLAR_CHECK_OP(a, b, <=)
#define SCHOLAR_CHECK_GT(a, b) SCHOLAR_CHECK_OP(a, b, >)
#define SCHOLAR_CHECK_GE(a, b) SCHOLAR_CHECK_OP(a, b, >=)

/// Aborts when a Status-returning expression fails. For call sites where
/// failure is a programming error (e.g., in tests and benchmarks).
#define SCHOLAR_CHECK_OK(expr)                                     \
  do {                                                             \
    ::scholar::Status _st = (expr);                                \
    SCHOLAR_CHECK(_st.ok()) << _st.ToString();                     \
  } while (0)

#endif  // SCHOLARRANK_UTIL_LOGGING_H_
