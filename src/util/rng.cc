#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace scholar {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256++ by Blackman & Vigna (public domain reference code).
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SCHOLAR_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SCHOLAR_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box-Muller; u1 guarded away from 0.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::NextExponential(double lambda) {
  SCHOLAR_CHECK_GT(lambda, 0.0);
  double u = NextDouble();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -std::log1p(-u) / lambda;
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

double Rng::NextPareto(double x_min, double alpha) {
  SCHOLAR_CHECK_GT(x_min, 0.0);
  SCHOLAR_CHECK_GT(alpha, 0.0);
  double u = NextDouble();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return x_min / std::pow(1.0 - u, 1.0 / alpha);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  SCHOLAR_CHECK_GT(n, 0u);
  SCHOLAR_CHECK_GE(s, 0.0);
  if (n == 1) return 0;
  if (s == 0.0) return NextBounded(n);
  // Rejection-inversion (Hormann & Derflinger). Ranks are 1..n internally.
  const double q = s;
  auto h = [q](double x) {
    if (std::abs(q - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - q) - 1.0) / (1.0 - q);
  };
  auto h_inv = [q](double y) {
    if (std::abs(q - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - q), 1.0 / (1.0 - q));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  while (true) {
    const double u = hx0 + NextDouble() * (hn - hx0);
    const double x = h_inv(u);
    const double k = std::floor(x + 0.5);
    if (k < 1.0 || k > static_cast<double>(n)) continue;
    if (u >= h(k + 0.5) - std::pow(k, -q)) continue;
    return static_cast<uint64_t>(k) - 1;
  }
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t label) {
  uint64_t seed = Next() ^ (label * 0x9e3779b97f4a7c15ULL);
  return Rng(seed);
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  SCHOLAR_CHECK(!weights.empty());
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    SCHOLAR_CHECK_GE(w, 0.0);
    acc += w;
    cumulative_.push_back(acc);
  }
  SCHOLAR_CHECK_GT(acc, 0.0) << "total weight must be positive";
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  double target = rng->NextDouble() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace scholar
