#ifndef SCHOLARRANK_UTIL_BYTE_READER_H_
#define SCHOLARRANK_UTIL_BYTE_READER_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace scholar {

/// Bounds-checked decoder over an untrusted byte stream.
///
/// Every parser that decodes other people's bytes (graph_io's binary
/// loader, the ScoreSnapshot deserializer, ...) funnels its raw reads
/// through this helper instead of hand-rolling `istream::read` +
/// `reinterpret_cast`. The contract backing the fuzzing gate is:
/// malformed input can only yield a `false`/`Status` return — never
/// undefined behavior, an unbounded allocation, or a silently short value.
///
/// scholar_lint's `unchecked-read` rule enforces the funnel at the source
/// level: in parser files, mutable `reinterpret_cast` / `memcpy` from
/// buffers is rejected, and the two low-level call sites inside this class
/// are the only sanctioned ones (marked NOLINT(unchecked-read) below).
class ByteReader {
 public:
  /// `in` must outlive the reader. The stream should be opened in binary
  /// mode; the reader never seeks except inside RemainingBytes().
  explicit ByteReader(std::istream* in) : in_(in) {}

  /// Reads one trivially copyable value. Returns false when the stream
  /// ends first; the stream is then in a failed state and every later
  /// read also returns false, so callers may batch `!r.ReadRaw(&a) ||
  /// !r.ReadRaw(&b)` checks.
  template <typename T>
  [[nodiscard]] bool ReadRaw(T* value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::ReadRaw requires a trivially copyable type");
    in_->read(reinterpret_cast<char*>(value), sizeof(T));  // NOLINT(unchecked-read): the sanctioned low-level scalar read
    return static_cast<bool>(*in_);
  }

  /// Reads exactly `count` elements into `*out`. Reads are chunked so that
  /// an attacker-declared (absurdly large) count fails with a truncation
  /// error once the stream runs dry instead of attempting one giant
  /// up-front allocation: memory use is bounded by the bytes actually
  /// present in the stream plus one chunk. `what` names the field in the
  /// Corruption message.
  template <typename T>
  [[nodiscard]] Status ReadVector(size_t count, const char* what,
                                  std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::ReadVector requires a trivially copyable type");
    constexpr size_t kChunkElements = size_t{1} << 20;
    out->clear();
    while (out->size() < count) {
      const size_t batch = std::min(kChunkElements, count - out->size());
      const size_t old_size = out->size();
      out->resize(old_size + batch);
      in_->read(reinterpret_cast<char*>(out->data() + old_size),  // NOLINT(unchecked-read): the sanctioned low-level bulk read
                static_cast<std::streamsize>(batch * sizeof(T)));
      if (!*in_) {
        return Status::Corruption(std::string("truncated ") + what + " (" +
                                  std::to_string(count) +
                                  " elements declared)");
      }
    }
    return Status::OK();
  }

  /// Reads a u32-length-prefixed string, rejecting declared lengths above
  /// `max_bytes` before allocating. `what` names the field in diagnostics.
  [[nodiscard]] Result<std::string> ReadLengthPrefixedString(
      const char* what, uint32_t max_bytes) {
    uint32_t len = 0;
    if (!ReadRaw(&len)) {
      return Status::Corruption(std::string("truncated ") + what + " length");
    }
    if (len > max_bytes) {
      return Status::Corruption(std::string("implausible ") + what +
                                " length " + std::to_string(len) +
                                " (limit " + std::to_string(max_bytes) + ")");
    }
    std::string s(len, '\0');
    in_->read(s.data(), static_cast<std::streamsize>(len));
    if (!*in_) {
      return Status::Corruption(std::string("truncated ") + what + " payload");
    }
    return s;
  }

  /// Bytes left between the current position and end-of-stream, or nullopt
  /// when the stream is not seekable (a pipe). Restores the read position;
  /// lets fixed-layout decoders reject a header whose declared payload
  /// exceeds the file before reading any of it.
  std::optional<uint64_t> RemainingBytes() {
    if (!*in_) return std::nullopt;
    const std::istream::pos_type here = in_->tellg();
    if (here == std::istream::pos_type(-1)) return std::nullopt;
    in_->seekg(0, std::ios::end);
    const std::istream::pos_type end = in_->tellg();
    in_->seekg(here);
    if (end == std::istream::pos_type(-1) || !*in_ || end < here) {
      return std::nullopt;
    }
    return static_cast<uint64_t>(end - here);
  }

 private:
  std::istream* const in_;  // not owned
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_BYTE_READER_H_
