#ifndef SCHOLARRANK_UTIL_TIMER_H_
#define SCHOLARRANK_UTIL_TIMER_H_

#include <chrono>

namespace scholar {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_TIMER_H_
