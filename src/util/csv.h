#ifndef SCHOLARRANK_UTIL_CSV_H_
#define SCHOLARRANK_UTIL_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace scholar {

/// Streams rows of comma-separated values with RFC-4180 quoting. Used by the
/// benchmark harnesses to emit table/figure data that plots directly.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Emits the header row. Call at most once, before any Row().
  void Header(const std::vector<std::string>& columns);

  /// Starts a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter* writer) : writer_(writer) {}
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& Add(const std::string& v);
    RowBuilder& Add(const char* v) { return Add(std::string(v)); }
    RowBuilder& Add(double v);
    RowBuilder& Add(int64_t v);
    RowBuilder& Add(uint64_t v) { return Add(static_cast<int64_t>(v)); }
    RowBuilder& Add(int v) { return Add(static_cast<int64_t>(v)); }

   private:
    CsvWriter* writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  /// Number of data rows written so far (header excluded).
  size_t rows_written() const { return rows_written_; }

 private:
  friend class RowBuilder;
  void WriteRow(const std::vector<std::string>& fields);
  static std::string Escape(const std::string& field);

  std::ostream* out_;
  bool header_written_ = false;
  size_t rows_written_ = 0;
};

/// Parses one CSV line into fields, honoring double-quote escaping.
/// Multi-line (embedded newline) fields are not supported.
[[nodiscard]] Result<std::vector<std::string>> ParseCsvLine(
    const std::string& line);

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_CSV_H_
