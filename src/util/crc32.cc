#include "util/crc32.h"

#include <array>

namespace scholar {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t num_bytes) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < num_bytes; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t num_bytes) {
  return Crc32Update(0, data, num_bytes);
}

}  // namespace scholar
