#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scholar {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // This is the logging sink itself — the one place stdio is the point.
  std::fputs(stream_.str().c_str(), stderr);  // NOLINT(raw-stdout)
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace scholar
