#include "util/csv.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace scholar {

void CsvWriter::Header(const std::vector<std::string>& columns) {
  SCHOLAR_CHECK(!header_written_) << "Header() called twice";
  SCHOLAR_CHECK_EQ(rows_written_, 0u) << "Header() after Row()";
  header_written_ = true;
  WriteRow(columns);
  --rows_written_;  // Header does not count as a data row.
}

CsvWriter::RowBuilder::~RowBuilder() { writer_->WriteRow(fields_); }

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(const std::string& v) {
  fields_.push_back(v);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(double v) {
  fields_.push_back(FormatDouble(v, 6));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(int64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_written_;
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::Corruption("quote in unquoted CSV field: " + line);
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return Status::Corruption("unterminated quote: " + line);
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace scholar
