#include "util/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace scholar {

size_t ResolveThreads(int threads) {
  if (threads >= 1) return static_cast<size_t>(threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ChunkCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

namespace {

/// State shared between the caller and its helper tasks. Held by
/// shared_ptr: a helper that wakes up after every chunk is already claimed
/// touches only this block (never the caller's stack), so the caller may
/// return while such stragglers are still winding down.
struct ParallelForState {
  explicit ParallelForState(size_t chunks) : num_chunks(chunks) {}

  const size_t num_chunks;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<bool> failed{false};
  Mutex mu;
  CondVar all_done;
  std::exception_ptr error GUARDED_BY(mu);  // first exception wins

  bool all_chunks_done() const {
    return done_chunks.load(std::memory_order_acquire) == num_chunks;  // NOLINT(atomic-confinement): acquire pairs with the acq_rel fetch_add below; the caller re-checks under mu before sleeping
  }
};

}  // namespace

void ParallelForChunks(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (grain == 0) grain = 1;
  const size_t chunks = ChunkCount(n, grain);
  if (chunks == 0) return;
  const size_t helpers =
      pool == nullptr ? 0 : std::min(pool->num_threads(), chunks - 1);
  if (helpers == 0) {
    for (size_t c = 0; c < chunks; ++c) {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>(chunks);
  // Claims chunks until none remain. After a failure the loop keeps
  // claiming (so the completion count still reaches num_chunks) but stops
  // executing fn. `fn` is captured by reference: safe, because the caller
  // waits until done_chunks == num_chunks and no chunk can be claimed
  // afterwards.
  auto work = [state, n, grain, &fn] {
    for (;;) {
      const size_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);  // NOLINT(atomic-confinement): chunk claim is a pure ticket counter; chunk data is ordered by done_chunks, not by the claim
      if (c >= state->num_chunks) return;
      if (!state->failed.load(std::memory_order_acquire)) {  // NOLINT(atomic-confinement): acquire pairs with the release store after a failure, so fn never runs on post-failure state
        try {
          fn(c, c * grain, std::min(n, (c + 1) * grain));
        } catch (...) {
          {
            MutexLock lock(state->mu);
            if (state->error == nullptr) {
              state->error = std::current_exception();
            }
          }
          state->failed.store(true, std::memory_order_release);  // NOLINT(atomic-confinement): release publishes the stored exception before any claimer skips work on seeing failed
        }
      }
      const size_t done =
          state->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1;  // NOLINT(atomic-confinement): acq_rel makes each chunk's writes visible to whoever observes the final count (the blocked caller)
      if (done == state->num_chunks) {
        // Taking mu orders the notify after the caller's predicate check,
        // so the completion wakeup cannot be lost.
        MutexLock lock(state->mu);
        state->all_done.NotifyAll();
      }
    }
  };

  for (size_t i = 0; i < helpers; ++i) {
    // A refused Submit (pool shutting down) just means fewer helpers; the
    // calling thread drains whatever is left.
    pool->Submit(work);  // NOLINT(dangling-capture): blocking handoff; the caller waits below until done_chunks == num_chunks, so &fn outlives every chunk
  }
  work();
  MutexLock lock(state->mu);
  while (!state->all_chunks_done()) state->all_done.Wait(state->mu);
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& fn) {
  ParallelForChunks(pool, n, grain,
                    [&fn](size_t, size_t begin, size_t end) {
                      fn(begin, end);
                    });
}

}  // namespace scholar
