#ifndef SCHOLARRANK_UTIL_CRC32_H_
#define SCHOLARRANK_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace scholar {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by zlib
/// and PNG. Guards the payload sections of serving snapshots against
/// silent on-disk corruption.
uint32_t Crc32(const void* data, size_t num_bytes);

/// Incremental form: feed `crc` the running value from a previous call
/// (start from 0) to checksum data that arrives in chunks.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t num_bytes);

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_CRC32_H_
