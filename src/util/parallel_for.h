#ifndef SCHOLARRANK_UTIL_PARALLEL_FOR_H_
#define SCHOLARRANK_UTIL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace scholar {

/// Worker count a `threads` knob resolves to: values >= 1 are taken
/// verbatim; 0 (the "auto" default of every ranking option struct) means
/// std::thread::hardware_concurrency(), with a floor of 1.
size_t ResolveThreads(int threads);

/// Number of grain-sized chunks covering [0, n). A pure function of
/// (n, grain) — chunk geometry never depends on the thread count, which is
/// what makes chunk-indexed reductions bit-identical at any parallelism
/// level (combine per-chunk partials in chunk-index order and the grouping
/// of floating-point additions is fixed).
size_t ChunkCount(size_t n, size_t grain);

/// Runs fn(chunk, begin, end) for every grain-sized chunk of [0, n).
///
/// Chunks are claimed dynamically by `pool`'s workers plus the calling
/// thread, so total parallelism is pool->num_threads() + 1. With a null
/// pool or a single chunk the loop degrades to a serial in-order sweep over
/// the same chunk geometry. The call returns only after every claimed chunk
/// has finished; the first exception thrown by fn is rethrown on the
/// calling thread, and chunks not yet started when it was thrown are
/// skipped. Never submits to a pool another ParallelFor is blocked on —
/// callers always make progress themselves, so nesting cannot deadlock.
void ParallelForChunks(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

/// Chunk-index-free convenience wrapper: fn(begin, end). Use
/// ParallelForChunks directly when the loop feeds an ordered reduction.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& fn);

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_PARALLEL_FOR_H_
