#include "util/config.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace scholar {

Result<Config> Config::FromArgs(int argc, const char* const* argv) {
  Config config;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    while (StartsWith(arg, "-")) arg.remove_prefix(1);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(argv[i]) + "'");
    }
    std::string key(Trim(arg.substr(0, eq)));
    if (key.empty()) {
      return Status::InvalidArgument("empty key in '" + std::string(argv[i]) +
                                     "'");
    }
    config.Set(key, std::string(Trim(arg.substr(eq + 1))));
  }
  return config;
}

Result<Config> Config::FromString(std::string_view text) {
  Config config;
  for (std::string_view raw_line : Split(text, '\n')) {
    std::string_view line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("expected key = value, got '" +
                                     std::string(raw_line) + "'");
    }
    std::string key(Trim(line.substr(0, eq)));
    if (key.empty()) {
      return Status::InvalidArgument("empty key in '" + std::string(raw_line) +
                                     "'");
    }
    config.Set(key, std::string(Trim(line.substr(eq + 1))));
  }
  return config;
}

void Config::Set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

void Config::SetInt(const std::string& key, int64_t value) {
  Set(key, std::to_string(value));
}

void Config::SetDouble(const std::string& key, double value) {
  Set(key, FormatDouble(value, 12));
}

void Config::SetBool(const std::string& key, bool value) {
  Set(key, value ? "true" : "false");
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

Result<std::string> Config::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("no key '" + key + "'");
  return it->second;
}

Result<int64_t> Config::GetInt(const std::string& key) const {
  SCHOLAR_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  return ParseInt64(raw);
}

Result<double> Config::GetDouble(const std::string& key) const {
  SCHOLAR_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  return ParseDouble(raw);
}

Result<bool> Config::GetBool(const std::string& key) const {
  SCHOLAR_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  std::string lower = ToLower(raw);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument("not a bool: '" + raw + "'");
}

std::string Config::GetStringOr(const std::string& key,
                                const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetIntOr(const std::string& key, int64_t fallback) const {
  if (!Has(key)) return fallback;
  Result<int64_t> r = GetInt(key);
  SCHOLAR_CHECK(r.ok()) << "config key '" << key
                        << "': " << r.status().ToString();
  return r.value();
}

double Config::GetDoubleOr(const std::string& key, double fallback) const {
  if (!Has(key)) return fallback;
  Result<double> r = GetDouble(key);
  SCHOLAR_CHECK(r.ok()) << "config key '" << key
                        << "': " << r.status().ToString();
  return r.value();
}

bool Config::GetBoolOr(const std::string& key, bool fallback) const {
  if (!Has(key)) return fallback;
  Result<bool> r = GetBool(key);
  SCHOLAR_CHECK(r.ok()) << "config key '" << key
                        << "': " << r.status().ToString();
  return r.value();
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += "\n";
  }
  return out;
}

}  // namespace scholar
