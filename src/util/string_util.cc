#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace scholar {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (std::string_view part : Split(s, sep)) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Status ParseError(std::string_view what, size_t line,
                  std::string_view message) {
  return Status::Corruption(std::string(what) + " line " +
                            std::to_string(line) + ": " +
                            std::string(message));
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double field");
  // std::from_chars for double is not available on all libstdc++ versions in
  // use; strtod on a bounded copy is portable and strict enough.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return value;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace scholar
