#ifndef SCHOLARRANK_UTIL_MUTEX_H_
#define SCHOLARRANK_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace scholar {

/// Annotated mutex for clang thread-safety analysis.
///
/// libstdc++'s std::mutex carries no capability attributes, so
/// -Wthread-safety cannot reason about it; this thin wrapper re-exposes it
/// as a CAPABILITY and is the project-wide replacement for naked
/// std::mutex members (enforced by scholar_lint's mutex-guard rule).
/// Zero overhead: every method is an inline forward.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling so CondVar (condition_variable_any) can
  /// unlock/relock the mutex during a wait.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // NOLINT(mutex-guard): the capability itself
};

/// RAII lock for Mutex, understood by the analysis as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with scholar::Mutex.
///
/// Wait() takes the Mutex directly (condition_variable_any relocks it via
/// the BasicLockable interface), so waits are written as explicit
/// predicate loops whose condition reads GUARDED_BY state — which the
/// analysis can check, unlike a predicate lambda handed to
/// std::condition_variable::wait:
///
///   MutexLock lock(mu_);
///   while (!ready_locked()) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups are possible: always wait in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }  // NOLINT(guard-consistency): notify without the lock is the sanctioned pattern; waiters re-check their predicate under mu

 private:
  std::condition_variable_any cv_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_MUTEX_H_
