#include "util/thread_pool.h"

#include <utility>

namespace scholar {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  // Serialized so a second concurrent caller blocks until the joins are
  // done instead of racing them (join() from two threads is UB).
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with an empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace scholar
