#include "util/thread_pool.h"

#include <utility>

namespace scholar {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  MutexLock lock(shutdown_mu_);
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
  return true;
}

void ThreadPool::Drain() {
  MutexLock lock(mu_);
  while (!idle_locked()) idle_.Wait(mu_);  // NOLINT(lock-order): idle_ is a CondVar; Wait releases mu_ and acquires nothing else
}

void ThreadPool::Shutdown() {
  // Serialized so a second concurrent caller blocks until the joins are
  // done instead of racing them (join() from two threads is UB).
  MutexLock shutdown_lock(shutdown_mu_);
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!runnable_locked()) wake_.Wait(mu_);  // NOLINT(lock-order): wake_ is a CondVar; Wait releases mu_ and acquires nothing else
      if (queue_.empty()) return;  // shutdown with an empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (idle_locked()) idle_.NotifyAll();
    }
  }
}

}  // namespace scholar
