#ifndef SCHOLARRANK_UTIL_RNG_H_
#define SCHOLARRANK_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scholar {

/// Deterministic pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// All randomness in the library flows through explicitly seeded Rng
/// instances so that every dataset and experiment is reproducible
/// bit-for-bit. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Unbiased
  /// (Lemire-style rejection).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double NextExponential(double lambda);

  /// Log-normal: exp(mu + sigma * N(0,1)).
  double NextLogNormal(double mu, double sigma);

  /// Pareto (power-law) sample >= x_min with tail exponent alpha > 0:
  /// density ~ x^-(alpha+1).
  double NextPareto(double x_min, double alpha);

  /// Zipf-distributed integer in [0, n) with exponent s >= 0 (s=0 is
  /// uniform). Uses rejection-inversion; O(1) expected time.
  uint64_t NextZipf(uint64_t n, double s);

  /// Index sampled proportionally to non-negative `weights` (linear scan).
  /// Returns weights.size() if the total weight is zero.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks an independent stream; deterministic in (this stream, label).
  Rng Fork(uint64_t label);

 private:
  uint64_t state_[4];
};

/// Pre-normalized cumulative distribution for repeated weighted sampling in
/// O(log n) per draw.
class DiscreteSampler {
 public:
  /// `weights` must be non-negative with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index proportional to its weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_RNG_H_
