#ifndef SCHOLARRANK_UTIL_CONFIG_H_
#define SCHOLARRANK_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace scholar {

/// Flat key=value configuration with typed accessors.
///
/// Used to parameterize rankers, generators and experiments from command
/// lines ("--sigma=0.4") or config files (one `key = value` per line,
/// '#' comments). Keys are case-sensitive.
class Config {
 public:
  Config() = default;

  /// Parses "--key=value" / "key=value" tokens; unknown formats are errors.
  [[nodiscard]] static Result<Config> FromArgs(int argc,
                                               const char* const* argv);

  /// Parses config-file text (one assignment per line, '#' comments).
  [[nodiscard]] static Result<Config> FromString(std::string_view text);

  void Set(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  /// Typed getters: return `fallback` when the key is absent, a Status when
  /// the key is present but malformed (via the *OrDie variants, abort).
  [[nodiscard]] Result<std::string> GetString(const std::string& key) const;
  [[nodiscard]] Result<int64_t> GetInt(const std::string& key) const;
  [[nodiscard]] Result<double> GetDouble(const std::string& key) const;
  [[nodiscard]] Result<bool> GetBool(const std::string& key) const;

  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  /// All keys in lexicographic order.
  std::vector<std::string> Keys() const;

  /// Serializes to config-file syntax (stable key order).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_UTIL_CONFIG_H_
