#include "stream/streaming_graph.h"

#include <algorithm>
#include <string>
#include <utility>

namespace scholar {
namespace stream {

StreamingGraph::StreamingGraph(CitationGraph base,
                               StreamingGraphOptions options)
    : options_(options),
      years_(base.years()),
      out_offsets_(base.out_offsets()),
      out_neighbors_(base.out_neighbors()),
      frontier_year_(base.max_year()),
      frozen_(std::move(base)) {}

Status StreamingGraph::Validate(const EdgeBatch& batch) const {
  const size_t old_n = years_.size();
  const size_t new_n = old_n + batch.num_nodes();
  if (new_n > static_cast<size_t>(kInvalidNode)) {
    return Status::OutOfRange("batch would overflow the 32-bit id space");
  }
  Year prev = frontier_year_;
  for (size_t i = 0; i < batch.node_years.size(); ++i) {
    const Year year = batch.node_years[i];
    if (year == kUnknownYear) {
      return Status::InvalidArgument(
          "streamed articles need a known year (batch node " +
          std::to_string(i) + ")");
    }
    if (prev != kUnknownYear && year < prev) {
      return Status::FailedPrecondition(
          "batch " + std::to_string(batch.sequence) + " is not year-"
          "monotone: node " + std::to_string(i) + " has year " +
          std::to_string(year) + " below the frontier " +
          std::to_string(prev));
    }
    prev = year;
  }
  for (size_t i = 0; i < batch.edges.size(); ++i) {
    const StreamEdge& e = batch.edges[i];
    if (e.src < old_n || e.src >= new_n) {
      return Status::InvalidArgument(
          "edge source " + std::to_string(e.src) + " is not a node of "
          "batch " + std::to_string(batch.sequence) +
          " (suffix-append streams may only add edges from new articles)");
    }
    if (e.dst >= new_n) {
      return Status::InvalidArgument(
          "edge destination " + std::to_string(e.dst) +
          " does not exist (graph will have " + std::to_string(new_n) +
          " nodes after batch " + std::to_string(batch.sequence) + ")");
    }
    if (e.dst == e.src) {
      return Status::InvalidArgument("self-citation " +
                                     std::to_string(e.src));
    }
    if (i > 0) {
      const StreamEdge& p = batch.edges[i - 1];
      if (e.src < p.src || (e.src == p.src && e.dst <= p.dst)) {
        return Status::InvalidArgument(
            "batch edges must be strictly sorted by (src, dst)");
      }
    }
  }
  return Status::OK();
}

void StreamingGraph::ApplyValidated(const EdgeBatch& batch) {
  const NodeId old_n = static_cast<NodeId>(years_.size());
  years_.insert(years_.end(), batch.node_years.begin(),
                batch.node_years.end());
  // Extend the forward CSR suffix: edges are sorted by src, so one sweep
  // emits each new row (empty rows for uncited-and-unciting newcomers
  // included) in id order.
  size_t edge = 0;
  for (NodeId u = old_n; u < years_.size(); ++u) {
    while (edge < batch.edges.size() && batch.edges[edge].src == u) {
      out_neighbors_.push_back(batch.edges[edge].dst);
      ++edge;
    }
    out_offsets_.push_back(static_cast<EdgeId>(out_neighbors_.size()));
  }
  if (!batch.node_years.empty()) {
    frontier_year_ = std::max(frontier_year_, batch.node_years.back());
  }
  ++next_sequence_;
  ++version_;
  frozen_stale_ = true;
}

Result<size_t> StreamingGraph::Ingest(EdgeBatch batch) {
  if (batch.sequence < next_sequence_) {
    return Status::AlreadyExists(
        "batch sequence " + std::to_string(batch.sequence) +
        " was already applied (next expected: " +
        std::to_string(next_sequence_) + ")");
  }
  if (batch.sequence > next_sequence_) {
    if (staged_.size() >= options_.max_staged_batches) {
      return Status::FailedPrecondition(
          "staging buffer full (" + std::to_string(staged_.size()) +
          " batches) while waiting for sequence " +
          std::to_string(next_sequence_));
    }
    // Validate what can be checked without knowing the intermediate graph
    // (the id-window check ran at parse time); full validation reruns when
    // the gap fills and the batch actually applies.
    if (staged_.count(batch.sequence) > 0) {
      return Status::AlreadyExists("batch sequence " +
                                   std::to_string(batch.sequence) +
                                   " is already staged");
    }
    staged_.emplace(batch.sequence, std::move(batch));
    return size_t{0};
  }
  SCHOLAR_RETURN_NOT_OK(Validate(batch));
  ApplyValidated(batch);
  size_t applied = 1;
  // Drain staged successors now contiguous with the applied prefix. A
  // staged batch that fails validation surfaces its error here; it has
  // already left the staging buffer, so the stream is not wedged by it.
  auto it = staged_.find(next_sequence_);
  while (it != staged_.end()) {
    const EdgeBatch staged = std::move(it->second);
    staged_.erase(it);
    Status status = Validate(staged);
    if (!status.ok()) return status;
    ApplyValidated(staged);
    ++applied;
    it = staged_.find(next_sequence_);
  }
  return applied;
}

const CitationGraph& StreamingGraph::graph() {
  if (frozen_stale_) {
    frozen_ = CitationGraph::FromCsr(years_, out_offsets_, out_neighbors_);
    frozen_stale_ = false;
  }
  return frozen_;
}

}  // namespace stream
}  // namespace scholar
