#ifndef SCHOLARRANK_STREAM_INCREMENTAL_RANKER_H_
#define SCHOLARRANK_STREAM_INCREMENTAL_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/registry.h"
#include "graph/citation_graph.h"
#include "graph/types.h"
#include "rank/ranker.h"
#include "util/config.h"
#include "util/status.h"

namespace scholar {
namespace stream {

struct IncrementalRankerOptions {
  /// Registry name: any of the iterative kernels (pagerank, twpr, hits,
  /// katz, sceas, ...) or an ens_* ensemble. Closed-form rankers work too;
  /// they simply ignore the seed.
  std::string ranker = "pagerank";
  /// Ranker parameters (tolerance=, threads=, sigma=, ...), passed to
  /// MakeRanker verbatim.
  Config config;
  /// "full": every epoch runs the kernel over the whole graph, warm-seeded
  /// from the previous scores — the fixed point is exact (identical to a
  /// cold rank up to the solver tolerance), only the round count shrinks.
  /// "frontier": active-set PageRank (pagerank only) that re-gathers just
  /// the subgraph the update can still move — cheapest, with the bounded
  /// drift documented on FrontierPowerIteration.
  std::string mode = "full";
  /// Frontier staleness knob (mode=frontier); see FrontierOptions.
  double frontier_tolerance = 1e-12;
};

/// Continuous re-ranking state: wraps a registry ranker and carries the
/// previous score vector (at its solver-native magnitude, via
/// RankResult::score_mass) from epoch to epoch. After a batch lands, the
/// new graph's iteration starts from the extended previous scores instead
/// of a cold start, so it converges in a fraction of the rounds — the
/// scores themselves shift smoothly under small suffix appends.
class IncrementalRanker {
 public:
  static Result<IncrementalRanker> Create(IncrementalRankerOptions options);

  /// Full-accuracy rank with no seed; resets the warm chain. Use for the
  /// bootstrap epoch and as the drift oracle.
  Result<RankResult> RankCold(const CitationGraph& graph);

  /// Warm rank of a grown graph, seeded from the previous result (falls
  /// back to a cold rank when there is none). `dirty` lists nodes whose
  /// adjacency the update changed — required by mode=frontier, ignored by
  /// mode=full.
  Result<RankResult> RankWarm(const CitationGraph& graph,
                              const std::vector<NodeId>& dirty = {});

  bool has_previous() const { return !previous_scores_.empty(); }
  const std::vector<double>& previous_scores() const {
    return previous_scores_;
  }
  const std::string& ranker_name() const { return options_.ranker; }
  const std::string& mode() const { return options_.mode; }

 private:
  IncrementalRanker(IncrementalRankerOptions options,
                    std::shared_ptr<const Ranker> ranker)
      : options_(std::move(options)), ranker_(std::move(ranker)) {}

  void Remember(const RankResult& result);

  IncrementalRankerOptions options_;
  std::shared_ptr<const Ranker> ranker_;
  std::vector<double> previous_scores_;
  double previous_mass_ = 1.0;
};

/// Extends a previous score vector (output-normalized, with its reported
/// score_mass) to `new_num_nodes` at the solver's natural magnitude: old
/// entries are rescaled by the mass, new articles get the mean old value.
/// Unlike rank/pagerank.h's ExtendScoresForGrownGraph this does NOT
/// renormalize — the affine-fixed-point kernels need the magnitude kept.
std::vector<double> ExtendSeedForGrownGraph(
    const std::vector<double>& old_scores, double old_mass,
    size_t new_num_nodes);

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_INCREMENTAL_RANKER_H_
