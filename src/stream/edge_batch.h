#ifndef SCHOLARRANK_STREAM_EDGE_BATCH_H_
#define SCHOLARRANK_STREAM_EDGE_BATCH_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace scholar {
namespace stream {

/// One appended citation, `src` cites `dst`. In a batch, `src` must be a
/// node introduced by that same batch: a paper's reference list is complete
/// at publication time, which is exactly what lets StreamingGraph extend
/// the forward CSR suffix in place instead of splicing existing rows.
struct StreamEdge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  bool operator==(const StreamEdge&) const = default;
};

/// The streaming ingest unit: a set of new articles (years, ids assigned
/// densely after the current graph) plus their complete reference lists.
///
/// Binary wire format (little-endian, version 1):
///
///   "SREB" | u32 version | u64 sequence | u32 num_nodes | u64 num_edges
///   | i32 year[num_nodes] | {u32 src, u32 dst}[num_edges]
///   | u32 crc32(year bytes + edge bytes)
///
/// Format contract enforced by the parser (typed Corruption errors, never
/// UB — this is a fuzzed surface, see fuzz/harness/fuzz_edge_batch.cc):
/// magic/version match, declared counts fit the remaining stream, years
/// are plausible and non-decreasing within the batch, edges are strictly
/// sorted by (src, dst) with no self-loops, and the payload CRC matches.
/// Graph-relative checks (source is batch-new, endpoint in range,
/// year-monotone vs. the frontier) belong to StreamingGraph::Ingest.
struct EdgeBatch {
  /// Position in the stream; StreamingGraph applies batches in strictly
  /// increasing sequence order and stages out-of-order arrivals.
  uint64_t sequence = 0;
  /// Publication year of each new article, in id order (non-decreasing).
  std::vector<Year> node_years;
  /// New citations, strictly sorted by (src, dst). `src` is relative to
  /// the graph the batch lands on: the first new article of the batch gets
  /// id `old_num_nodes`, so batch files are position-independent only for
  /// the stream they were cut from.
  std::vector<StreamEdge> edges;

  size_t num_nodes() const { return node_years.size(); }
  size_t num_edges() const { return edges.size(); }

  bool operator==(const EdgeBatch&) const = default;
};

/// Serializes one batch. Fails (InvalidArgument) when the batch violates
/// the format contract — the writer refuses to produce bytes the reader
/// would reject.
Status WriteEdgeBatch(const EdgeBatch& batch, std::ostream* out);

/// Decodes one batch from the stream. Malformed bytes yield a typed
/// Corruption/InvalidArgument status, never UB or an unbounded allocation.
Result<EdgeBatch> ReadEdgeBatch(std::istream* in);

/// Reads concatenated batches until end-of-stream. An empty stream is an
/// error (a miswired path must not yield an empty, "successful" stream).
Result<std::vector<EdgeBatch>> ReadEdgeBatches(std::istream* in);

/// File convenience wrappers around the stream forms.
Status WriteEdgeBatchFile(const std::vector<EdgeBatch>& batches,
                          const std::string& path);
Result<std::vector<EdgeBatch>> ReadEdgeBatchFile(const std::string& path);

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_EDGE_BATCH_H_
