#include "stream/epoch_pipeline.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace scholar {
namespace stream {

EpochPipeline::EpochPipeline(StreamingGraph* graph, IncrementalRanker* ranker,
                             EpochPublisher publisher)
    : graph_(graph), ranker_(ranker), publisher_(std::move(publisher)) {}

Status EpochPipeline::Bootstrap() {
  EpochStats stats;
  stats.epoch = next_epoch_;
  stats.graph_version = graph_->version();
  const CitationGraph& g = graph_->graph();
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();
  WallTimer timer;
  SCHOLAR_ASSIGN_OR_RETURN(RankResult result, ranker_->RankCold(g));
  stats.rank_ms = timer.ElapsedMillis();
  stats.iterations = result.iterations;
  stats.converged = result.converged;
  timer.Reset();
  SCHOLAR_RETURN_NOT_OK(publisher_(g, result, stats));
  stats.publish_ms = timer.ElapsedMillis();
  history_.push_back(stats);
  ++next_epoch_;
  return Status::OK();
}

std::vector<NodeId> EpochPipeline::DirtyNodes(const CitationGraph& graph,
                                              size_t old_n,
                                              size_t old_e) const {
  std::vector<NodeId> dirty;
  dirty.reserve((graph.num_nodes() - old_n) +
                (graph.num_edges() - old_e));
  for (size_t v = old_n; v < graph.num_nodes(); ++v) {
    dirty.push_back(static_cast<NodeId>(v));
  }
  const std::vector<NodeId>& targets = graph.out_neighbors();
  dirty.insert(dirty.end(), targets.begin() + static_cast<long>(old_e),
               targets.end());
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

Result<EpochStats> EpochPipeline::Step(EdgeBatch batch) {
  EpochStats stats;
  stats.epoch = next_epoch_;
  const size_t old_n = graph_->num_nodes();
  const size_t old_e = graph_->num_edges();

  WallTimer timer;
  SCHOLAR_ASSIGN_OR_RETURN(stats.batches_applied,
                           graph_->Ingest(std::move(batch)));
  stats.apply_ms = timer.ElapsedMillis();
  stats.graph_version = graph_->version();
  stats.nodes_added = graph_->num_nodes() - old_n;
  stats.edges_added = graph_->num_edges() - old_e;
  stats.num_nodes = graph_->num_nodes();
  stats.num_edges = graph_->num_edges();
  if (stats.batches_applied == 0) {
    // Staged: nothing new is rankable; the previous publish keeps serving.
    history_.push_back(stats);
    ++next_epoch_;
    return stats;
  }

  const CitationGraph& g = graph_->graph();
  timer.Reset();
  Result<RankResult> ranked =
      ranker_->mode() == "frontier"
          ? ranker_->RankWarm(g, DirtyNodes(g, old_n, old_e))
          : ranker_->RankWarm(g);
  SCHOLAR_RETURN_NOT_OK(ranked.status());
  stats.rank_ms = timer.ElapsedMillis();
  stats.iterations = ranked->iterations;
  stats.converged = ranked->converged;

  timer.Reset();
  SCHOLAR_RETURN_NOT_OK(publisher_(g, *ranked, stats));
  stats.publish_ms = timer.ElapsedMillis();
  history_.push_back(stats);
  ++next_epoch_;
  return stats;
}

int EpochPipeline::total_iterations() const {
  int total = 0;
  for (const EpochStats& stats : history_) total += stats.iterations;
  return total;
}

}  // namespace stream
}  // namespace scholar
