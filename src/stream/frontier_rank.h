#ifndef SCHOLARRANK_STREAM_FRONTIER_RANK_H_
#define SCHOLARRANK_STREAM_FRONTIER_RANK_H_

#include <vector>

#include "graph/graph_access.h"
#include "graph/types.h"
#include "rank/ranker.h"
#include "util/status.h"

namespace scholar {
namespace stream {

struct FrontierOptions {
  double damping = 0.85;
  /// Global stop: L1 change summed over the active set.
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// A node whose per-round score delta stays at or below this freezes
  /// (drops out of the active set) until a neighbor reactivates it. This
  /// is the staleness knob: 0 converges everything influence reaches
  /// (smallest drift, largest frontier); larger values shrink the frontier
  /// and admit proportionally more drift vs. the exact fixed point.
  double frontier_tolerance = 1e-12;
  /// 0 = hardware concurrency, 1 = serial. Scores are bit-identical at
  /// every setting (fixed chunk geometry, ordered reductions, serial
  /// frontier propagation).
  int threads = 0;
};

/// Active-set PageRank for streaming updates: power iteration over the
/// uniform-weight damped walk (the same system as the `pagerank` registry
/// kernel) that re-gathers only nodes whose inputs are still moving.
///
/// `seed` is the previous score vector extended to the grown graph (it is
/// L1-renormalized internally); `dirty` lists the nodes whose adjacency
/// the update touched — new articles plus the targets of new citations.
/// The first round re-gathers every node (a grown graph shifts the global
/// teleport term, an error no local delta can detect), then nodes whose
/// measured per-round delta stays at or below frontier_tolerance freeze,
/// and influence spreads from the still-moving set along out-edges (a
/// changed article reweights the papers it cites). From round two on, each
/// round costs O(n + edges(active)) instead of O(n + m).
///
/// Accuracy contract: a node freezes only after a gather against the
/// current graph showed its per-round change at or below
/// frontier_tolerance, so each freeze forgoes at most that much L1 change
/// per subsequent round (geometrically decaying with the damping factor).
/// The epoch tests bound the observed drift; full-accuracy callers use
/// mode=full (IncrementalRanker), which re-gathers everything.
Result<RankResult> FrontierPowerIteration(const GraphAccess& g,
                                          const std::vector<double>& seed,
                                          const std::vector<NodeId>& dirty,
                                          const FrontierOptions& options);

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_FRONTIER_RANK_H_
