#ifndef SCHOLARRANK_STREAM_FRONTIER_RANK_H_
#define SCHOLARRANK_STREAM_FRONTIER_RANK_H_

#include <vector>

#include "graph/graph_access.h"
#include "graph/types.h"
#include "rank/kernel/kernel_options.h"
#include "rank/ranker.h"
#include "util/status.h"

namespace scholar {
namespace stream {

struct FrontierOptions {
  double damping = 0.85;
  /// Global stop: L1 change summed over the active set.
  double tolerance = 1e-10;
  int max_iterations = 200;
  /// A node whose per-round score delta stays at or below this freezes
  /// (drops out of the active set) until a neighbor reactivates it. This
  /// is the staleness knob: 0 converges everything influence reaches
  /// (smallest drift, largest frontier); larger values shrink the frontier
  /// and admit proportionally more drift vs. the exact fixed point.
  double frontier_tolerance = 1e-12;
  /// 0 = hardware concurrency, 1 = serial. Scores are bit-identical at
  /// every setting (fixed chunk geometry, ordered reductions, serial
  /// frontier propagation).
  int threads = 0;
  /// Iteration-engine variant knobs (SIMD / precision / CSR layout); the
  /// engine's adaptive mode is always on here — it IS the frontier — with
  /// frontier_tolerance as its per-source freeze threshold, so the
  /// `adaptive`/`adaptive_tolerance` fields of this struct are ignored.
  kernel::KernelOptions kernel;
};

/// Active-set PageRank for streaming updates: power iteration over the
/// uniform-weight damped walk (the same system as the `pagerank` registry
/// kernel) that re-gathers only nodes whose inputs are still moving.
///
/// The active set lives in kernel::GatherEngine's adaptive mode (this
/// function is its streaming face): a source whose pull term moved by more
/// than frontier_tolerance since it was last observed wakes the rows it
/// feeds; every other row keeps its stored gather, and its score slot is
/// frozen bit-exactly. All other engine knobs (SIMD, precision,
/// compression, hub layout) compose with the frontier through
/// options.kernel.
///
/// `seed` is the previous score vector extended to the grown graph (it is
/// L1-renormalized internally); `dirty` lists the nodes whose adjacency
/// the update touched — new articles plus the targets of new citations.
/// The first round re-gathers every node (a grown graph shifts the global
/// teleport term, an error no local delta can detect), then influence
/// spreads from still-moving sources along out-edges (a changed article
/// reweights the papers it cites). From round two on, each round costs
/// O(n + edges(awake)) instead of O(n + m).
///
/// Accuracy contract: a row freezes only while every source it pulls from
/// stays within frontier_tolerance of its last-gathered value, so a frozen
/// row's stored sum is stale by at most ~2 * frontier_tolerance * indegree
/// (plus the geometrically decaying teleport drift the final
/// renormalization mops up). The epoch tests bound the observed drift;
/// full-accuracy callers use mode=full (IncrementalRanker), which
/// re-gathers everything.
Result<RankResult> FrontierPowerIteration(const GraphAccess& g,
                                          const std::vector<double>& seed,
                                          const std::vector<NodeId>& dirty,
                                          const FrontierOptions& options);

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_FRONTIER_RANK_H_
