#ifndef SCHOLARRANK_STREAM_STREAMING_GRAPH_H_
#define SCHOLARRANK_STREAM_STREAMING_GRAPH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/types.h"
#include "stream/edge_batch.h"
#include "util/status.h"

namespace scholar {
namespace stream {

struct StreamingGraphOptions {
  /// Most out-of-order batches held while waiting for a sequence gap to
  /// fill; one more arrival returns FailedPrecondition so a stalled
  /// producer surfaces as an error instead of unbounded buffering.
  size_t max_staged_batches = 64;
};

/// A citation graph that grows by year-monotone suffix appends.
///
/// The time-prefix CSR representation (graph/temporal_csr.h) orders nodes
/// by year, so "the corpus one batch later" is always "the same arrays,
/// longer": a new article appends its year and its complete, sorted
/// reference row to the forward CSR — nothing before the old suffix moves.
/// That is the append path here: `years_ / out_offsets_ / out_neighbors_`
/// are extended in place per applied batch, O(batch) work.
///
/// Validation on every batch (typed Status, never a crash — the fuzz
/// harness drives accepted parses straight into Ingest):
///   - sequence contiguity, with a bounded staging buffer for stragglers;
///   - year monotonicity: every new node's year >= the current frontier;
///   - edge sources must be nodes of the applying batch (the suffix-only
///     contract), endpoints must exist, no self-loops or duplicates.
///
/// The reverse CSR every ranking kernel pulls over is recomputed lazily in
/// graph(): one O(V+E) FromCsr pass per epoch, amortized against the many
/// O(V+E) iteration passes the warm start saves (DESIGN.md, streaming
/// pipeline section).
class StreamingGraph {
 public:
  /// Seeds the stream from an already-built corpus. The first expected
  /// batch sequence is 1 (0 is "the base"). The base does not need
  /// year-monotone node ids; the frontier starts at its max year.
  explicit StreamingGraph(CitationGraph base,
                          StreamingGraphOptions options = {});

  /// Accepts one batch. The next expected sequence is applied immediately,
  /// then any staged successors drain; later sequences are staged; earlier
  /// (duplicate) sequences are rejected with AlreadyExists. Returns how
  /// many batches were applied (0 = staged only). On a validation error
  /// the graph is unchanged and the batch is dropped.
  Result<size_t> Ingest(EdgeBatch batch);

  size_t num_nodes() const { return years_.size(); }
  size_t num_edges() const { return out_neighbors_.size(); }

  /// Max year applied so far; batches below it are rejected.
  Year frontier_year() const { return frontier_year_; }

  /// Sequence the next applied batch must carry.
  uint64_t next_sequence() const { return next_sequence_; }

  /// Out-of-order batches currently parked.
  size_t staged_batches() const { return staged_.size(); }

  /// Bumps once per applied batch; lets callers detect that graph() went
  /// stale without holding a reference to it.
  uint64_t version() const { return version_; }

  /// The grown graph, with the reverse CSR rebuilt if any batch was
  /// applied since the last call. The reference is invalidated by the next
  /// successful Ingest.
  const CitationGraph& graph();

 private:
  Status Validate(const EdgeBatch& batch) const;
  void ApplyValidated(const EdgeBatch& batch);

  StreamingGraphOptions options_;
  std::vector<Year> years_;
  std::vector<EdgeId> out_offsets_;
  std::vector<NodeId> out_neighbors_;
  Year frontier_year_ = kUnknownYear;
  uint64_t next_sequence_ = 1;
  uint64_t version_ = 0;
  std::map<uint64_t, EdgeBatch> staged_;
  CitationGraph frozen_;
  bool frozen_stale_ = false;
};

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_STREAMING_GRAPH_H_
