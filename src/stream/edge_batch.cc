#include "stream/edge_batch.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "util/byte_reader.h"
#include "util/crc32.h"

namespace scholar {
namespace stream {
namespace {

constexpr char kMagic[4] = {'S', 'R', 'E', 'B'};
constexpr uint32_t kVersion = 1;

/// Same plausibility window as the graph_io text parser; the stream
/// additionally rejects kUnknownYear because year-monotone ingest needs a
/// real year to compare against the frontier.
constexpr int64_t kMaxPlausibleYear = 1000000;

static_assert(sizeof(StreamEdge) == 2 * sizeof(NodeId),
              "StreamEdge must be two packed u32s — the wire format and "
              "the CRC both assume no padding");

/// The format contract shared by writer and reader, phrased over a decoded
/// batch. `what` distinguishes writer refusal from parser rejection.
Status ValidateBatchShape(const EdgeBatch& batch, const char* what) {
  Year prev_year = -1;
  for (size_t i = 0; i < batch.node_years.size(); ++i) {
    const Year year = batch.node_years[i];
    if (year < 0 || year > kMaxPlausibleYear) {
      return Status::Corruption(std::string(what) + ": implausible year " +
                                std::to_string(year) + " at batch node " +
                                std::to_string(i));
    }
    if (i > 0 && year < prev_year) {
      return Status::Corruption(
          std::string(what) + ": years must be non-decreasing within a "
          "batch; node " + std::to_string(i) + " has year " +
          std::to_string(year) + " after " + std::to_string(prev_year));
    }
    prev_year = year;
  }
  if (!batch.edges.empty() && batch.node_years.empty()) {
    return Status::Corruption(std::string(what) +
                              ": a batch with no new nodes cannot carry "
                              "edges (sources must be batch-new)");
  }
  NodeId min_src = kInvalidNode;
  NodeId max_src = 0;
  for (size_t i = 0; i < batch.edges.size(); ++i) {
    const StreamEdge& e = batch.edges[i];
    if (e.src == e.dst) {
      return Status::Corruption(std::string(what) + ": self-loop " +
                                std::to_string(e.src) + " -> " +
                                std::to_string(e.dst));
    }
    if (i > 0) {
      const StreamEdge& p = batch.edges[i - 1];
      if (e.src < p.src || (e.src == p.src && e.dst <= p.dst)) {
        return Status::Corruption(
            std::string(what) + ": edges must be strictly sorted by "
            "(src, dst); edge " + std::to_string(i) + " is (" +
            std::to_string(e.src) + ", " + std::to_string(e.dst) + ")");
      }
    }
    min_src = std::min(min_src, e.src);
    max_src = std::max(max_src, e.src);
  }
  if (!batch.edges.empty() &&
      static_cast<uint64_t>(max_src) - min_src >= batch.node_years.size()) {
    return Status::Corruption(
        std::string(what) + ": edge sources span " +
        std::to_string(static_cast<uint64_t>(max_src) - min_src + 1) +
        " ids but the batch declares only " +
        std::to_string(batch.node_years.size()) + " new nodes");
  }
  return Status::OK();
}

uint32_t PayloadCrc(const EdgeBatch& batch) {
  uint32_t crc = Crc32Update(0, batch.node_years.data(),
                             batch.node_years.size() * sizeof(Year));
  return Crc32Update(crc, batch.edges.data(),
                     batch.edges.size() * sizeof(StreamEdge));
}

}  // namespace

Status WriteEdgeBatch(const EdgeBatch& batch, std::ostream* out) {
  Status shape = ValidateBatchShape(batch, "refusing to write batch");
  if (!shape.ok()) return Status::InvalidArgument(shape.message());
  out->write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  out->write(reinterpret_cast<const char*>(&version), sizeof(version));
  out->write(reinterpret_cast<const char*>(&batch.sequence),
             sizeof(batch.sequence));
  const uint32_t num_nodes = static_cast<uint32_t>(batch.node_years.size());
  const uint64_t num_edges = batch.edges.size();
  out->write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
  out->write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  if (num_nodes > 0) {
    out->write(reinterpret_cast<const char*>(batch.node_years.data()),
               static_cast<std::streamsize>(num_nodes * sizeof(Year)));
  }
  if (num_edges > 0) {
    out->write(reinterpret_cast<const char*>(batch.edges.data()),
               static_cast<std::streamsize>(num_edges * sizeof(StreamEdge)));
  }
  const uint32_t crc = PayloadCrc(batch);
  out->write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!*out) return Status::IOError("short write while encoding edge batch");
  return Status::OK();
}

Result<EdgeBatch> ReadEdgeBatch(std::istream* in) {
  ByteReader reader(in);
  char magic[4] = {};
  if (!reader.ReadRaw(&magic)) {
    return Status::Corruption("truncated edge batch header");
  }
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return Status::Corruption("bad edge batch magic (want SREB)");
  }
  uint32_t version = 0;
  uint64_t sequence = 0;
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!reader.ReadRaw(&version) || !reader.ReadRaw(&sequence) ||
      !reader.ReadRaw(&num_nodes) || !reader.ReadRaw(&num_edges)) {
    return Status::Corruption("truncated edge batch header");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported edge batch version " +
                              std::to_string(version));
  }
  // Reject a header whose declared payload cannot fit the remaining bytes
  // before decoding any of it; ReadVector's chunked reads bound memory even
  // when the stream is not seekable and this check is unavailable.
  if (std::optional<uint64_t> remaining = reader.RemainingBytes()) {
    const uint64_t declared = uint64_t{num_nodes} * sizeof(Year) +
                              num_edges * sizeof(StreamEdge) +
                              sizeof(uint32_t);
    if (num_edges > (*remaining / sizeof(StreamEdge)) + 1 ||
        declared > *remaining) {
      return Status::Corruption(
          "edge batch declares " + std::to_string(declared) +
          " payload bytes but only " + std::to_string(*remaining) +
          " remain");
    }
  }
  EdgeBatch batch;
  batch.sequence = sequence;
  SCHOLAR_RETURN_NOT_OK(
      reader.ReadVector(num_nodes, "edge batch years", &batch.node_years));
  SCHOLAR_RETURN_NOT_OK(reader.ReadVector(
      static_cast<size_t>(num_edges), "edge batch edges", &batch.edges));
  uint32_t crc = 0;
  if (!reader.ReadRaw(&crc)) {
    return Status::Corruption("truncated edge batch checksum");
  }
  if (crc != PayloadCrc(batch)) {
    return Status::Corruption("edge batch payload checksum mismatch");
  }
  SCHOLAR_RETURN_NOT_OK(ValidateBatchShape(batch, "edge batch"));
  return batch;
}

Result<std::vector<EdgeBatch>> ReadEdgeBatches(std::istream* in) {
  std::vector<EdgeBatch> batches;
  while (in->peek() != std::istream::traits_type::eof()) {
    SCHOLAR_ASSIGN_OR_RETURN(EdgeBatch batch, ReadEdgeBatch(in));
    batches.push_back(std::move(batch));
  }
  if (batches.empty()) {
    return Status::Corruption("edge batch stream is empty");
  }
  return batches;
}

Status WriteEdgeBatchFile(const std::vector<EdgeBatch>& batches,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const EdgeBatch& batch : batches) {
    SCHOLAR_RETURN_NOT_OK(WriteEdgeBatch(batch, &out));
  }
  if (!out.flush()) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<std::vector<EdgeBatch>> ReadEdgeBatchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadEdgeBatches(&in);
}

}  // namespace stream
}  // namespace scholar
