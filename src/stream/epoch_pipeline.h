#ifndef SCHOLARRANK_STREAM_EPOCH_PIPELINE_H_
#define SCHOLARRANK_STREAM_EPOCH_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/citation_graph.h"
#include "rank/ranker.h"
#include "stream/edge_batch.h"
#include "stream/incremental_ranker.h"
#include "stream/streaming_graph.h"
#include "util/status.h"

namespace scholar {
namespace stream {

/// One epoch's accounting, handed to the publisher and kept in history().
struct EpochStats {
  uint64_t epoch = 0;            // 0 = bootstrap (cold rank of the base)
  uint64_t graph_version = 0;    // StreamingGraph::version() after apply
  size_t batches_applied = 0;    // 0 = the arriving batch was staged
  size_t nodes_added = 0;
  size_t edges_added = 0;
  size_t num_nodes = 0;          // graph size after the epoch
  size_t num_edges = 0;
  int iterations = 0;            // solver rounds this epoch (warm)
  bool converged = true;
  double apply_ms = 0.0;
  double rank_ms = 0.0;
  double publish_ms = 0.0;
};

/// Receives each epoch's freshly ranked graph. The CLI wires this to
/// ScoreSnapshot::Build + SnapshotManager::Install (serve lives *above*
/// stream in the module DAG, so the pipeline cannot name it — publication
/// is injected); tests capture the arguments instead. Both references are
/// only valid for the duration of the call.
using EpochPublisher = std::function<Status(
    const CitationGraph& graph, const RankResult& result,
    const EpochStats& stats)>;

/// The streaming epoch loop: apply a batch, re-rank warm, republish.
///
///   batch -> StreamingGraph::Ingest      (validate, suffix-append, stage)
///         -> IncrementalRanker::RankWarm (seed = previous scores)
///         -> publisher                   (snapshot build + hot swap)
///
/// A staged (out-of-order) batch produces an epoch with batches_applied=0
/// and no rank/publish — served scores simply stay at the previous epoch
/// until the gap fills, at which point one epoch applies the whole run.
class EpochPipeline {
 public:
  /// All pointers are borrowed and must outlive the pipeline.
  EpochPipeline(StreamingGraph* graph, IncrementalRanker* ranker,
                EpochPublisher publisher);

  /// Cold-ranks and publishes the base graph (epoch 0). Call once before
  /// streaming so queries never observe an unranked corpus.
  Status Bootstrap();

  /// Runs one epoch for an arriving batch. Returns the epoch's stats; on
  /// error the pipeline keeps serving the last published epoch.
  Result<EpochStats> Step(EdgeBatch batch);

  const std::vector<EpochStats>& history() const { return history_; }

  /// Sum of warm iterations across all ranked epochs (the number a cold
  /// re-rank per epoch would have to beat).
  int total_iterations() const;

 private:
  /// Nodes whose adjacency the suffix [old_n, old_e) -> [new_n, new_e)
  /// touched: the new articles and everything they cite.
  std::vector<NodeId> DirtyNodes(const CitationGraph& graph, size_t old_n,
                                 size_t old_e) const;

  StreamingGraph* const graph_;       // not owned
  IncrementalRanker* const ranker_;   // not owned
  EpochPublisher publisher_;
  uint64_t next_epoch_ = 0;
  std::vector<EpochStats> history_;
};

}  // namespace stream
}  // namespace scholar

#endif  // SCHOLARRANK_STREAM_EPOCH_PIPELINE_H_
