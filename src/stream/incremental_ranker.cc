#include "stream/incremental_ranker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/graph_access.h"
#include "stream/frontier_rank.h"

namespace scholar {
namespace stream {

std::vector<double> ExtendSeedForGrownGraph(
    const std::vector<double>& old_scores, double old_mass,
    size_t new_num_nodes) {
  std::vector<double> seed;
  seed.reserve(new_num_nodes);
  if (old_scores.empty() || old_scores.size() > new_num_nodes ||
      !(old_mass > 0.0) || !std::isfinite(old_mass)) {
    return seed;  // empty = "no seed"; the kernels fall back to cold
  }
  for (double s : old_scores) seed.push_back(s * old_mass);
  // New articles score like *recent* articles, not average ones — a fresh
  // paper has had no time to accumulate citations. Node ids are
  // year-monotone, so the tail decile of the old vector is exactly the
  // youngest cohort; its mean is a far closer guess than the global mean,
  // which is inflated by decades-old heavily cited work.
  const size_t cohort = std::max<size_t>(1, old_scores.size() / 10);
  double tail = 0.0;
  for (size_t i = seed.size() - cohort; i < seed.size(); ++i) tail += seed[i];
  seed.resize(new_num_nodes, tail / static_cast<double>(cohort));
  return seed;
}

Result<IncrementalRanker> IncrementalRanker::Create(
    IncrementalRankerOptions options) {
  if (options.mode != "full" && options.mode != "frontier") {
    return Status::InvalidArgument("mode must be 'full' or 'frontier', got '" +
                                   options.mode + "'");
  }
  if (options.mode == "frontier" && options.ranker != "pagerank") {
    return Status::InvalidArgument(
        "mode=frontier implements the uniform-weight pagerank system only; "
        "ranker '" + options.ranker + "' needs mode=full");
  }
  SCHOLAR_ASSIGN_OR_RETURN(std::shared_ptr<const Ranker> ranker,
                           MakeRanker(options.ranker, options.config));
  return IncrementalRanker(std::move(options), std::move(ranker));
}

void IncrementalRanker::Remember(const RankResult& result) {
  previous_scores_ = result.scores;
  previous_mass_ = result.score_mass;
}

Result<RankResult> IncrementalRanker::RankCold(const CitationGraph& graph) {
  RankContext ctx;
  ctx.graph = &graph;
  SCHOLAR_ASSIGN_OR_RETURN(RankResult result, ranker_->Rank(ctx));
  Remember(result);
  return result;
}

Result<RankResult> IncrementalRanker::RankWarm(
    const CitationGraph& graph, const std::vector<NodeId>& dirty) {
  if (previous_scores_.empty()) return RankCold(graph);
  if (previous_scores_.size() > graph.num_nodes()) {
    return Status::FailedPrecondition(
        "warm chain broken: previous scores cover " +
        std::to_string(previous_scores_.size()) +
        " nodes but the graph shrank to " +
        std::to_string(graph.num_nodes()) +
        " (streams only grow; call RankCold)");
  }
  const std::vector<double> seed = ExtendSeedForGrownGraph(
      previous_scores_, previous_mass_, graph.num_nodes());

  if (options_.mode == "frontier") {
    FrontierOptions frontier;
    frontier.damping = options_.config.GetDoubleOr("damping", 0.85);
    frontier.tolerance = options_.config.GetDoubleOr("tolerance", 1e-10);
    frontier.max_iterations =
        static_cast<int>(options_.config.GetIntOr("max_iterations", 200));
    frontier.threads =
        static_cast<int>(options_.config.GetIntOr("threads", 0));
    frontier.frontier_tolerance = options_.frontier_tolerance;
    SCHOLAR_ASSIGN_OR_RETURN(
        frontier.kernel, kernel::KernelOptionsFromConfig(options_.config));
    SCHOLAR_ASSIGN_OR_RETURN(
        RankResult result,
        FrontierPowerIteration(AccessOf(graph), seed, dirty, frontier));
    Remember(result);
    return result;
  }

  RankContext ctx;
  ctx.graph = &graph;
  if (!seed.empty()) ctx.initial_scores = &seed;
  SCHOLAR_ASSIGN_OR_RETURN(RankResult result, ranker_->Rank(ctx));
  Remember(result);
  return result;
}

}  // namespace stream
}  // namespace scholar
