#include "stream/frontier_rank.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "rank/kernel/gather_engine.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace scholar {
namespace stream {
namespace {

/// Same fixed chunk geometry as the rank kernels: reductions are per-chunk
/// partial sums combined in chunk order, so results are independent of the
/// thread count.
constexpr size_t kNodeGrain = 2048;

double OrderedSum(const std::vector<double>& partial, size_t chunks) {
  double total = 0.0;
  for (size_t c = 0; c < chunks; ++c) total += partial[c];
  return total;
}

}  // namespace

Result<RankResult> FrontierPowerIteration(const GraphAccess& g,
                                          const std::vector<double>& seed,
                                          const std::vector<NodeId>& dirty,
                                          const FrontierOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.frontier_tolerance < 0.0) {
    return Status::InvalidArgument("frontier_tolerance must be >= 0");
  }
  const size_t n = g.num_nodes;
  if (seed.size() != n) {
    return Status::InvalidArgument(
        "seed size " + std::to_string(seed.size()) +
        " does not match the graph (" + std::to_string(n) + " nodes)");
  }
  if (n == 0) return RankResult{};
  for (NodeId v : dirty) {
    if (v >= n) {
      return Status::InvalidArgument("dirty node " + std::to_string(v) +
                                     " out of range");
    }
  }

  const size_t workers = ResolveThreads(options.threads);
  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();
  const size_t chunks = ChunkCount(n, kNodeGrain);

  // Normalize the seed to a distribution; fall back to uniform on
  // degenerate input, mirroring the full solver's BuildInitialScores.
  std::vector<double> scores = seed;
  {
    std::vector<double> partial(chunks, 0.0);
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double mass = 0.0;
      for (size_t i = begin; i < end; ++i) mass += scores[i];
      partial[chunk] = mass;
    });
    const double mass = OrderedSum(partial, chunks);
    if (mass > 0.0 && std::isfinite(mass)) {
      const double inv = 1.0 / mass;
      ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) scores[i] *= inv;
      });
    } else {
      scores.assign(n, 1.0 / static_cast<double>(n));
    }
  }

  // share[u] = scores[u] / outdeg(u): the per-source pull term. Refreshed
  // for every node each round (O(n)); a frozen node's score is bit-frozen,
  // so its share is too, and the engine's movement tracking sees exactly
  // the nodes whose scores changed.
  std::vector<double> share(n);
  const auto refresh_share = [&] {
    ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        const size_t degree = g.OutDegree(u);
        share[u] = degree == 0
                       ? 0.0
                       : scores[u] / static_cast<double>(degree);
      }
    });
  };

  // The active set is the engine's adaptive mode with frontier_tolerance
  // as the per-source freeze threshold. Its first sweep is always full —
  // required here because a grown graph shifts the teleport term for EVERY
  // node (n and the dangling mass both changed), an error no local delta
  // can detect.
  kernel::KernelOptions kopts = options.kernel;
  kopts.adaptive = true;
  kopts.adaptive_tolerance = options.frontier_tolerance;
  kernel::GatherEngine engine;
  SCHOLAR_RETURN_NOT_OK(
      engine.Init(g, kernel::GatherDirection::kInEdges, kopts, pool));

  std::vector<double> partial(chunks, 0.0);
  RankResult result;
  result.converged = false;
  const double d = options.damping;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Dangling mass is global state (a dangling article teleports its whole
    // score), so it is re-summed exactly every round — O(n), no gather.
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double mass = 0.0;
      for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
        if (g.OutDegree(u) == 0) mass += scores[u];
      }
      partial[chunk] = mass;
    });
    const double dangling = OrderedSum(partial, chunks);
    const double teleport =
        (d * dangling + (1.0 - d)) / static_cast<double>(n);

    // Gather over the awake rows only (the engine re-gathers exactly the
    // rows some moved source feeds and returns its persistent buffer).
    refresh_share();
    const double* gathered = engine.Gather(share.data(), nullptr);
    const uint8_t* stale = engine.last_stale();

    // Commit the re-gathered slots; frozen rows keep their score
    // bit-exactly (their stale teleport is the drift the final
    // renormalization mops up). Residual is summed over the awake set, as
    // ordered per-chunk partials.
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double residual_part = 0.0;
      for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
        if (!stale[v]) continue;
        const double value = teleport + d * gathered[v];
        residual_part += std::abs(value - scores[v]);
        scores[v] = value;
      }
      partial[chunk] = residual_part;
    });
    const double residual = OrderedSum(partial, chunks);

    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options.tolerance || engine.last_rows_gathered() == 0) {
      result.converged = true;
      break;
    }
  }

  // Renormalize: frozen nodes kept slightly stale teleport terms, so the
  // vector's mass has drifted from 1 by (bounded) crumbs; project back
  // onto the simplex before returning.
  {
    ParallelForChunks(pool, n, kNodeGrain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double mass = 0.0;
      for (size_t i = begin; i < end; ++i) mass += scores[i];
      partial[chunk] = mass;
    });
    const double mass = OrderedSum(partial, chunks);
    if (mass > 0.0) {
      const double inv = 1.0 / mass;
      ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) scores[i] *= inv;
      });
    }
  }
  result.scores = std::move(scores);
  return result;
}

}  // namespace stream
}  // namespace scholar
