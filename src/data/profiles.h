#ifndef SCHOLARRANK_DATA_PROFILES_H_
#define SCHOLARRANK_DATA_PROFILES_H_

#include <string>

#include "data/synthetic.h"

namespace scholar {

/// Generator profile mimicking the AMiner computer-science citation network
/// used in the paper: ~30 years of publications, moderate exponential
/// growth, medium reference lists.
SyntheticOptions AMinerLikeProfile(size_t num_articles, uint64_t seed = 12345);

/// Profile mimicking a Microsoft Academic Graph slice: faster growth, more
/// venues, longer reference lists, heavier-tailed impact distribution.
SyntheticOptions MagLikeProfile(size_t num_articles, uint64_t seed = 54321);

/// Looks up a profile by name ("aminer" or "mag").
Result<SyntheticOptions> ProfileByName(const std::string& name,
                                       size_t num_articles, uint64_t seed);

}  // namespace scholar

#endif  // SCHOLARRANK_DATA_PROFILES_H_
