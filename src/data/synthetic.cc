#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace scholar {
namespace {

/// Poisson sample via Knuth's method (fine for the small means used here).
size_t SamplePoisson(Rng* rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  double product = rng->NextDouble();
  size_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng->NextDouble();
  }
  return count;
}

Status ValidateOptions(const SyntheticOptions& o) {
  if (o.num_articles == 0) {
    return Status::InvalidArgument("num_articles must be > 0");
  }
  if (o.num_years <= 0) {
    return Status::InvalidArgument("num_years must be > 0");
  }
  if (o.growth_rate <= 0.0) {
    return Status::InvalidArgument("growth_rate must be > 0");
  }
  if (o.pref_attach_weight < 0.0 || o.fitness_weight < 0.0 ||
      o.pref_attach_weight + o.fitness_weight > 1.0 + 1e-12) {
    return Status::InvalidArgument(
        "mixture weights must be non-negative with pa + fitness <= 1");
  }
  if (o.recency_tau <= 0.0) {
    return Status::InvalidArgument("recency_tau must be > 0");
  }
  if (o.discernment < 0.0 || o.discernment > 1.0) {
    return Status::InvalidArgument("discernment must be in [0, 1]");
  }
  if (o.noise_article_fraction < 0.0 || o.noise_article_fraction > 1.0) {
    return Status::InvalidArgument("noise_article_fraction must be in [0, 1]");
  }
  if (o.noise_refs_multiplier < 0.0) {
    return Status::InvalidArgument("noise_refs_multiplier must be >= 0");
  }
  if (o.noise_quality_factor <= 0.0 || o.noise_quality_factor > 1.0) {
    return Status::InvalidArgument("noise_quality_factor must be in (0, 1]");
  }
  if (o.num_venues == 0) {
    return Status::InvalidArgument("num_venues must be > 0");
  }
  if (o.mean_authors < 1.0) {
    return Status::InvalidArgument("mean_authors must be >= 1");
  }
  return Status::OK();
}

/// Number of new articles per year: proportional to growth_rate^i, scaled so
/// the total is exactly num_articles and every year has at least one.
std::vector<size_t> PerYearCounts(const SyntheticOptions& o) {
  std::vector<double> weights(o.num_years);
  double total = 0.0;
  for (int i = 0; i < o.num_years; ++i) {
    weights[i] = std::pow(o.growth_rate, i);
    total += weights[i];
  }
  std::vector<size_t> counts(o.num_years, 1);
  size_t assigned = static_cast<size_t>(o.num_years);
  // Largest-remainder allocation of the articles beyond the 1-per-year
  // floor.
  if (assigned >= o.num_articles) {
    // Degenerate: fewer articles than years; pile everything at the end.
    std::fill(counts.begin(), counts.end(), 0);
    counts.back() = o.num_articles;
    return counts;
  }
  const size_t remaining = o.num_articles - assigned;
  size_t given = 0;
  for (int i = 0; i < o.num_years; ++i) {
    size_t extra = static_cast<size_t>(remaining * weights[i] / total);
    counts[i] += extra;
    given += extra;
  }
  // Rounding residue goes to the most recent years.
  for (int i = o.num_years - 1; given < remaining; i = (i + o.num_years - 1) % o.num_years) {
    ++counts[i];
    ++given;
  }
  return counts;
}

}  // namespace

Result<Corpus> GenerateSyntheticCorpus(const SyntheticOptions& o,
                                       const std::string& name) {
  SCHOLAR_RETURN_NOT_OK(ValidateOptions(o));
  Rng rng(o.seed);

  // Venue prestige: log-normal, index 0 most popular (popularity is zipf in
  // the venue index, prestige correlates with popularity rank mildly via
  // sorting).
  std::vector<double> venue_prestige(o.num_venues);
  for (double& p : venue_prestige) p = rng.NextLogNormal(0.0, 0.8);
  std::sort(venue_prestige.rbegin(), venue_prestige.rend());

  const std::vector<size_t> per_year = PerYearCounts(o);

  Corpus corpus;
  corpus.name = name;
  GraphBuilder builder;
  corpus.true_impact.reserve(o.num_articles);
  corpus.venues.reserve(o.num_articles);

  // Reference sampling state.
  // endpoint_list implements preferential attachment: every article appears
  // once at creation plus once per citation received, so a uniform draw is
  // proportional to (in-degree + 1).
  std::vector<NodeId> endpoint_list;
  endpoint_list.reserve(o.num_articles * 8);
  // Per completed year: article id range and a fitness-weighted sampler.
  struct YearBlock {
    NodeId first;
    NodeId count;
    std::unique_ptr<DiscreteSampler> by_impact;
  };
  std::vector<YearBlock> year_blocks;

  // Author state: rich-get-richer productivity.
  std::vector<std::vector<AuthorId>> author_lists;
  author_lists.reserve(o.num_articles);
  std::vector<AuthorId> author_endpoint_list;
  AuthorId next_author = 0;

  std::vector<NodeId> refs_buffer;
  std::unordered_set<NodeId> refs_seen;

  NodeId next_id = 0;
  for (int yi = 0; yi < o.num_years; ++yi) {
    const Year year = o.start_year + yi;
    const NodeId year_first = next_id;
    // Reference budget ramps from 50% to 100% of mean_references.
    const double year_mean_refs =
        o.mean_references *
        (0.5 + 0.5 * static_cast<double>(yi) /
                   std::max(1, o.num_years - 1));
    std::vector<double> year_impacts;
    year_impacts.reserve(per_year[yi]);

    for (size_t a = 0; a < per_year[yi]; ++a, ++next_id) {
      const NodeId u = builder.AddNode(year);
      SCHOLAR_CHECK_EQ(u, next_id);

      // Venue and latent impact.
      const int32_t venue =
          static_cast<int32_t>(rng.NextZipf(o.num_venues, o.venue_zipf));
      const bool is_noise_article =
          rng.NextBernoulli(o.noise_article_fraction);
      const double q =
          rng.NextLogNormal(0.0, o.impact_sigma) *
          std::pow(venue_prestige[venue], o.venue_impact_boost) *
          (is_noise_article ? o.noise_quality_factor : 1.0);
      corpus.venues.push_back(venue);
      corpus.true_impact.push_back(q);
      year_impacts.push_back(q);

      // Authors.
      const size_t num_authors = 1 + SamplePoisson(&rng, o.mean_authors - 1.0);
      std::vector<AuthorId> article_authors;
      for (size_t s = 0; s < num_authors; ++s) {
        AuthorId author;
        if (author_endpoint_list.empty() ||
            rng.NextBernoulli(o.new_author_prob)) {
          author = next_author++;
        } else {
          author = author_endpoint_list[rng.NextBounded(
              author_endpoint_list.size())];
        }
        if (std::find(article_authors.begin(), article_authors.end(),
                      author) == article_authors.end()) {
          article_authors.push_back(author);
          author_endpoint_list.push_back(author);
        }
      }
      author_lists.push_back(std::move(article_authors));

      // References. Only articles created before this one are candidates.
      if (u == 0) {
        endpoint_list.push_back(u);
        continue;
      }
      const double mean_refs_here =
          is_noise_article ? year_mean_refs * o.noise_refs_multiplier
                           : year_mean_refs;
      const size_t target_refs =
          std::min<size_t>(SamplePoisson(&rng, mean_refs_here), u);
      refs_buffer.clear();
      refs_seen.clear();
      size_t attempts = 0;
      const size_t max_attempts = target_refs * 12 + 24;
      // A discerning (high-q) article directs more of its references
      // through the fitness channel; q/(q+1) maps quality into (0,1) with
      // value 0.5 at the log-normal median.
      const double focus = q / (q + 1.0);
      double fitness_prob =
          o.fitness_weight *
          ((1.0 - o.discernment) + 2.0 * o.discernment * focus);
      fitness_prob = std::min(fitness_prob, 0.98 - o.pref_attach_weight);
      while (refs_buffer.size() < target_refs && attempts < max_attempts) {
        ++attempts;
        NodeId v = kInvalidNode;
        if (is_noise_article) {
          // Indiscriminate citer: half canonical name-dropping (fame-
          // proportional, i.e., preferential attachment over the full
          // history) and half uniform padding. Both channels ignore
          // quality and spread over all ages, unlike genuine fitness
          // citations which concentrate on recent work.
          if (rng.NextBernoulli(0.5)) {
            v = endpoint_list[rng.NextBounded(endpoint_list.size())];
          } else {
            v = static_cast<NodeId>(rng.NextBounded(u));
          }
          if (v >= u || !refs_seen.insert(v).second) continue;
          refs_buffer.push_back(v);
          continue;
        }
        const double coin = rng.NextDouble();
        if (coin < o.pref_attach_weight) {
          v = endpoint_list[rng.NextBounded(endpoint_list.size())];
        } else if (coin < o.pref_attach_weight + fitness_prob &&
                   !year_blocks.empty()) {
          // Recency-biased year, then impact-biased article within it.
          const double age = rng.NextExponential(1.0 / o.recency_tau);
          int back = static_cast<int>(age) + 1;  // completed years only
          int target_year_index = yi - back;
          if (target_year_index < 0) target_year_index = 0;
          if (target_year_index >= static_cast<int>(year_blocks.size())) {
            target_year_index = static_cast<int>(year_blocks.size()) - 1;
          }
          const YearBlock& block = year_blocks[target_year_index];
          if (block.count > 0) {
            v = block.first +
                static_cast<NodeId>(block.by_impact->Sample(&rng));
          }
        } else {
          v = static_cast<NodeId>(rng.NextBounded(u));
        }
        if (v == kInvalidNode || v >= u) continue;  // same-year-later or bad
        if (!refs_seen.insert(v).second) continue;
        refs_buffer.push_back(v);
      }
      for (NodeId v : refs_buffer) {
        SCHOLAR_RETURN_NOT_OK(builder.AddEdge(u, v));
        endpoint_list.push_back(v);
      }
      endpoint_list.push_back(u);
    }

    // Seal this year for fitness-based sampling by later years.
    YearBlock block;
    block.first = year_first;
    block.count = next_id - year_first;
    if (block.count > 0) {
      block.by_impact = std::make_unique<DiscreteSampler>(year_impacts);
    }
    year_blocks.push_back(std::move(block));
  }

  SCHOLAR_ASSIGN_OR_RETURN(corpus.graph, std::move(builder).Build());
  corpus.authors = PaperAuthors::FromLists(author_lists);
  for (size_t v = 0; v < o.num_venues; ++v) {
    corpus.venue_names.push_back("venue_" + std::to_string(v));
  }
  SCHOLAR_RETURN_NOT_OK(corpus.ConsistencyCheck());
  return corpus;
}

}  // namespace scholar
