#include "data/profiles.h"

#include "util/string_util.h"

namespace scholar {

SyntheticOptions AMinerLikeProfile(size_t num_articles, uint64_t seed) {
  SyntheticOptions o;
  o.num_articles = num_articles;
  o.start_year = 1980;
  o.num_years = 30;
  o.growth_rate = 1.08;
  o.mean_references = 12.0;
  o.impact_sigma = 1.0;
  o.pref_attach_weight = 0.5;
  o.fitness_weight = 0.3;
  o.recency_tau = 6.0;
  o.discernment = 0.6;
  o.noise_article_fraction = 0.15;
  o.noise_refs_multiplier = 2.5;
  o.noise_quality_factor = 0.3;
  o.num_venues = 200;
  o.venue_zipf = 1.05;
  o.venue_impact_boost = 0.5;
  o.mean_authors = 2.8;
  o.new_author_prob = 0.35;
  o.seed = seed;
  return o;
}

SyntheticOptions MagLikeProfile(size_t num_articles, uint64_t seed) {
  SyntheticOptions o;
  o.num_articles = num_articles;
  o.start_year = 1975;
  o.num_years = 40;
  o.growth_rate = 1.12;
  o.mean_references = 18.0;
  o.impact_sigma = 1.3;
  o.pref_attach_weight = 0.55;
  o.fitness_weight = 0.25;
  o.recency_tau = 4.5;
  // MAG-style corpora are broader and dirtier than curated CS collections.
  o.discernment = 0.5;
  o.noise_article_fraction = 0.2;
  o.noise_refs_multiplier = 3.0;
  o.noise_quality_factor = 0.3;
  o.num_venues = 800;
  o.venue_zipf = 1.2;
  o.venue_impact_boost = 0.4;
  o.mean_authors = 3.4;
  o.new_author_prob = 0.4;
  o.seed = seed;
  return o;
}

Result<SyntheticOptions> ProfileByName(const std::string& name,
                                       size_t num_articles, uint64_t seed) {
  const std::string lower = ToLower(name);
  if (lower == "aminer") return AMinerLikeProfile(num_articles, seed);
  if (lower == "mag") return MagLikeProfile(num_articles, seed);
  return Status::NotFound("unknown profile '" + name +
                          "' (expected 'aminer' or 'mag')");
}

}  // namespace scholar
