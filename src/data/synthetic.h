#ifndef SCHOLARRANK_DATA_SYNTHETIC_H_
#define SCHOLARRANK_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace scholar {

/// Parameters of the synthetic scholarly-corpus generator.
///
/// The generator grows a citation network year by year with the three forces
/// that shape real citation data (and that the paper's rankers exploit):
///
///   * preferential attachment — already-cited articles attract more
///     citations (power-law in-degree),
///   * latent fitness — each article has a hidden impact q (log-normal,
///     venue-correlated) that biases citations toward genuinely good work;
///     q doubles as evaluation ground truth,
///   * recency — references concentrate on recent literature
///     (exponentially decaying citation-age distribution).
///
/// Articles are created in chronological order, so NodeIds are
/// non-decreasing in publication year.
struct SyntheticOptions {
  size_t num_articles = 50000;
  Year start_year = 1980;
  int num_years = 30;
  /// Per-year multiplicative growth of the publication rate.
  double growth_rate = 1.08;

  /// Mean reference-list length in the final year. Earlier years ramp
  /// linearly from half this value (reference lists grew historically).
  double mean_references = 12.0;

  /// Log-normal sigma of the latent impact q (heavier tail = starker
  /// quality differences).
  double impact_sigma = 1.0;

  /// Mixture weights of the reference-sampling process; the remainder
  /// (1 - pa - fitness) is uniform over existing articles. Must satisfy
  /// pa, fitness >= 0 and pa + fitness <= 1.
  double pref_attach_weight = 0.5;
  double fitness_weight = 0.3;

  /// Mean citation age, in years, for the recency-driven draws.
  double recency_tau = 6.0;

  /// How strongly a citing article's own quality focuses its reference
  /// list on genuinely good work (0 = everyone cites alike, 1 = high-impact
  /// articles are far more fitness-directed while weak articles cite
  /// near-randomly). This is what makes citations from important articles
  /// carry more evidence — the property PageRank-style propagation
  /// exploits on real citation data.
  double discernment = 0.6;

  /// Fraction of articles that are indiscriminate mass-citers (low-tier
  /// surveys, citation-padded manuscripts): their reference lists are
  /// `noise_refs_multiplier` times longer, their targets are chosen
  /// uniformly at random over all existing articles, and their own latent
  /// impact is scaled by `noise_quality_factor`. This models the citation
  /// noise that makes counting-based metrics fragile on real corpora —
  /// propagation-based rankers discount these votes (low citer importance,
  /// huge out-degree), counting cannot.
  double noise_article_fraction = 0.15;
  double noise_refs_multiplier = 2.5;
  double noise_quality_factor = 0.3;

  size_t num_venues = 200;
  /// Zipf exponent of venue popularity (larger = few venues dominate).
  double venue_zipf = 1.05;
  /// Exponent coupling an article's q to its venue's prestige
  /// (0 = independent).
  double venue_impact_boost = 0.5;

  /// Mean number of authors per article (>= 1).
  double mean_authors = 2.8;
  /// Probability that an author slot introduces a brand-new author rather
  /// than reusing a productive one.
  double new_author_prob = 0.35;

  uint64_t seed = 12345;
};

/// Generates a corpus. Deterministic in `options` (including seed).
/// Errors: invalid mixture weights, non-positive sizes.
Result<Corpus> GenerateSyntheticCorpus(const SyntheticOptions& options,
                                       const std::string& name);

}  // namespace scholar

#endif  // SCHOLARRANK_DATA_SYNTHETIC_H_
