#ifndef SCHOLARRANK_DATA_GROUND_TRUTH_H_
#define SCHOLARRANK_DATA_GROUND_TRUTH_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/types.h"
#include "util/status.h"

namespace scholar {

/// One labeled comparison: ground truth says `better` should outrank
/// `worse`.
struct EvalPair {
  NodeId better;
  NodeId worse;
};

/// How ground-truth pairs are sampled from a corpus's latent impact.
struct PairSamplingOptions {
  size_t num_pairs = 100000;
  /// Required relative impact gap: q(better) >= (1 + margin) * q(worse).
  /// The margin removes near-ties that even a perfect ranker could not
  /// order, mirroring how expert-labeled benchmarks only contain pairs the
  /// labelers were confident about.
  double margin = 0.1;
  /// When set (!= kUnknownYear), both articles must be published in or
  /// after this year — used for the "recent articles" experiment.
  Year min_year = kUnknownYear;
  /// When true, both articles of a pair are drawn from the same publication
  /// year, isolating quality from age.
  bool same_year_only = false;
  uint64_t seed = 7;
};

/// Samples labeled pairs. Requires corpus.has_ground_truth(). Rejection
/// sampling caps attempts at 200x num_pairs; fewer pairs are returned when
/// the margin filter is too strict for the corpus.
Result<std::vector<EvalPair>> SampleGroundTruthPairs(
    const Corpus& corpus, const PairSamplingOptions& options);

/// "Award articles" benchmark: per publication year, the top `top_fraction`
/// of that cohort by latent impact (at least one per non-empty year). Mimics
/// best-paper / test-of-time award lists used as ground truth in the paper.
struct AwardBenchmark {
  /// All award article ids.
  std::vector<NodeId> awards;
  /// Per-node membership flag (size = num articles).
  std::vector<bool> is_award;
};

Result<AwardBenchmark> BuildAwardBenchmark(const Corpus& corpus,
                                           double top_fraction = 0.02);

/// External impact-label exchange format. Real corpora do not carry latent
/// impact the way synthetic ones do (data/dataset.h); labels arrive from
/// outside — award lists, expert judgments — as text files:
///
///   #scholarrank-labels-v1
///   <num_articles> <num_labels>
///   <article_id> <impact>        (one line per label; '#' comments allowed)
///
/// Unlabeled articles default to impact 0. The reader treats the file as
/// untrusted input: out-of-range ids, duplicate labels, non-finite or
/// negative impact, and truncation all return a ParseError naming the
/// offending line. The returned vector has exactly `num_articles` entries
/// and is suitable for Corpus::true_impact.
Result<std::vector<double>> ReadGroundTruthLabels(std::istream* in);
Result<std::vector<double>> ReadGroundTruthLabelsFile(const std::string& path);

/// Writes every article's impact as a label line (the round-trip
/// counterpart of ReadGroundTruthLabels).
Status WriteGroundTruthLabels(const std::vector<double>& impact,
                              std::ostream* out);

}  // namespace scholar

#endif  // SCHOLARRANK_DATA_GROUND_TRUTH_H_
