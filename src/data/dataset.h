#ifndef SCHOLARRANK_DATA_DATASET_H_
#define SCHOLARRANK_DATA_DATASET_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/bipartite.h"
#include "graph/citation_graph.h"
#include "util/status.h"

namespace scholar {

/// A scholarly corpus: citation network plus the per-article metadata the
/// rankers and experiments consume.
///
/// Passive aggregate; ConsistencyCheck() verifies the cross-array size
/// invariants after loading or generation. Vectors indexed by NodeId are
/// either empty (field absent) or exactly graph.num_nodes() long.
struct Corpus {
  std::string name;
  CitationGraph graph;

  /// Stable external article ids (e.g., the #index of AMiner). Empty when
  /// the source had none; then the dense NodeId doubles as the id.
  std::vector<uint64_t> external_ids;

  /// Venue index per article (into venue_names), -1 when unknown.
  std::vector<int32_t> venues;
  std::vector<std::string> venue_names;

  /// Article titles; empty strings (or an empty vector) when absent.
  std::vector<std::string> titles;

  /// Paper-author incidence; num_papers() is 0 when author data is absent.
  PaperAuthors authors;

  /// Latent "true" article impact used as evaluation ground truth. Present
  /// only for synthetic corpora (real corpora get ground truth from
  /// external labels instead).
  std::vector<double> true_impact;

  size_t num_articles() const { return graph.num_nodes(); }
  size_t num_citations() const { return graph.num_edges(); }
  bool has_ground_truth() const { return !true_impact.empty(); }
  bool has_authors() const { return authors.num_papers() > 0; }

  /// Verifies all size invariants; Corruption on mismatch.
  Status ConsistencyCheck() const;
};

/// Reads the AMiner citation-network V8 text format:
///
///   #* title
///   #@ author1;author2
///   #t year
///   #c venue
///   #index 42
///   #% 7          (one line per reference, by external index)
///   (blank line separates records)
///
/// Unknown tags are ignored. References to articles absent from the file
/// are dropped (their count is logged); articles without a year get
/// kUnknownYear replaced by the corpus minimum year.
Result<Corpus> ReadAMinerCorpus(std::istream* in, const std::string& name);
Result<Corpus> ReadAMinerCorpusFile(const std::string& path);

/// Writes a corpus in the AMiner V8 format (titles/venues/authors included
/// when present). Round-trips with ReadAMinerCorpus.
Status WriteAMinerCorpus(const Corpus& corpus, std::ostream* out);
Status WriteAMinerCorpusFile(const Corpus& corpus, const std::string& path);

/// Tab-separated two-file interchange format.
///
/// articles.tsv: node_id <TAB> year <TAB> venue_name <TAB> a1;a2;...
/// citations.tsv: src_node_id <TAB> dst_node_id
///
/// Node ids must be dense 0..n-1 in the articles file (any order).
Result<Corpus> ReadTsvCorpus(std::istream* articles, std::istream* citations,
                             const std::string& name);
Result<Corpus> ReadTsvCorpusFiles(const std::string& articles_path,
                                  const std::string& citations_path);
Status WriteTsvCorpus(const Corpus& corpus, std::ostream* articles,
                      std::ostream* citations);
Status WriteTsvCorpusFiles(const Corpus& corpus,
                           const std::string& articles_path,
                           const std::string& citations_path);

}  // namespace scholar

#endif  // SCHOLARRANK_DATA_DATASET_H_
