#include "data/dataset.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace scholar {

Status Corpus::ConsistencyCheck() const {
  const size_t n = graph.num_nodes();
  auto check_size = [n](size_t got, const char* field) -> Status {
    if (got != 0 && got != n) {
      return Status::Corruption(std::string(field) + " has " +
                                std::to_string(got) + " entries, graph has " +
                                std::to_string(n) + " nodes");
    }
    return Status::OK();
  };
  SCHOLAR_RETURN_NOT_OK(check_size(external_ids.size(), "external_ids"));
  SCHOLAR_RETURN_NOT_OK(check_size(venues.size(), "venues"));
  SCHOLAR_RETURN_NOT_OK(check_size(titles.size(), "titles"));
  SCHOLAR_RETURN_NOT_OK(check_size(true_impact.size(), "true_impact"));
  if (authors.num_papers() != 0 && authors.num_papers() != n) {
    return Status::Corruption("authors map covers " +
                              std::to_string(authors.num_papers()) +
                              " papers, graph has " + std::to_string(n));
  }
  for (int32_t v : venues) {
    if (v < -1 || v >= static_cast<int32_t>(venue_names.size())) {
      return Status::Corruption("venue index " + std::to_string(v) +
                                " out of range");
    }
  }
  return Status::OK();
}

namespace {

/// One partially parsed AMiner record.
struct AMinerRecord {
  std::string title;
  std::vector<std::string> author_names;
  Year year = kUnknownYear;
  std::string venue;
  int64_t index = -1;
  std::vector<int64_t> refs;
  bool has_any_field = false;
};

Status FlushRecord(AMinerRecord* rec, std::vector<AMinerRecord>* out) {
  if (!rec->has_any_field) return Status::OK();
  if (rec->index < 0) {
    return Status::Corruption("AMiner record without #index (title: '" +
                              rec->title + "')");
  }
  out->push_back(std::move(*rec));
  *rec = AMinerRecord();
  return Status::OK();
}

}  // namespace

Result<Corpus> ReadAMinerCorpus(std::istream* in, const std::string& name) {
  std::vector<AMinerRecord> records;
  AMinerRecord current;
  std::string line;
  while (std::getline(*in, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty()) {
      SCHOLAR_RETURN_NOT_OK(FlushRecord(&current, &records));
      continue;
    }
    if (StartsWith(sv, "#index")) {
      // A new #index while the current record already has one starts a new
      // record even without a separating blank line.
      if (current.index >= 0) {
        SCHOLAR_RETURN_NOT_OK(FlushRecord(&current, &records));
      }
      SCHOLAR_ASSIGN_OR_RETURN(current.index, ParseInt64(sv.substr(6)));
      current.has_any_field = true;
    } else if (StartsWith(sv, "#*")) {
      current.title = std::string(Trim(sv.substr(2)));
      current.has_any_field = true;
    } else if (StartsWith(sv, "#@")) {
      for (auto a : Split(sv.substr(2), ';')) {
        std::string_view t = Trim(a);
        if (!t.empty()) current.author_names.emplace_back(t);
      }
      current.has_any_field = true;
    } else if (StartsWith(sv, "#t")) {
      SCHOLAR_ASSIGN_OR_RETURN(int64_t y, ParseInt64(sv.substr(2)));
      current.year = static_cast<Year>(y);
      current.has_any_field = true;
    } else if (StartsWith(sv, "#c")) {
      current.venue = std::string(Trim(sv.substr(2)));
      current.has_any_field = true;
    } else if (StartsWith(sv, "#%")) {
      SCHOLAR_ASSIGN_OR_RETURN(int64_t ref, ParseInt64(sv.substr(2)));
      current.refs.push_back(ref);
      current.has_any_field = true;
    }
    // Unknown tags (#!, abstract, ...) are ignored.
  }
  SCHOLAR_RETURN_NOT_OK(FlushRecord(&current, &records));
  if (records.empty()) return Status::Corruption("no AMiner records found");

  // External index -> dense id.
  std::unordered_map<int64_t, NodeId> dense;
  dense.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    auto [it, inserted] =
        dense.emplace(records[i].index, static_cast<NodeId>(i));
    if (!inserted) {
      return Status::Corruption("duplicate #index " +
                                std::to_string(records[i].index));
    }
  }

  // Year fallback: records without #t get the corpus minimum year.
  Year min_year = std::numeric_limits<Year>::max();
  bool any_year = false;
  for (const auto& r : records) {
    if (r.year != kUnknownYear) {
      min_year = std::min(min_year, r.year);
      any_year = true;
    }
  }
  if (!any_year) min_year = 0;

  Corpus corpus;
  corpus.name = name;
  GraphBuilder builder;
  std::unordered_map<std::string, int32_t> venue_index;
  std::unordered_map<std::string, AuthorId> author_index;
  std::vector<std::vector<AuthorId>> author_lists(records.size());
  size_t dropped_refs = 0;

  for (size_t i = 0; i < records.size(); ++i) {
    const AMinerRecord& r = records[i];
    builder.AddNode(r.year == kUnknownYear ? min_year : r.year);
    corpus.external_ids.push_back(static_cast<uint64_t>(r.index));
    corpus.titles.push_back(r.title);
    if (r.venue.empty()) {
      corpus.venues.push_back(-1);
    } else {
      auto [it, inserted] = venue_index.emplace(
          r.venue, static_cast<int32_t>(corpus.venue_names.size()));
      if (inserted) corpus.venue_names.push_back(r.venue);
      corpus.venues.push_back(it->second);
    }
    for (const std::string& a : r.author_names) {
      auto it = author_index.emplace(a, static_cast<AuthorId>(author_index.size()))
                    .first;
      author_lists[i].push_back(it->second);
    }
  }
  for (size_t i = 0; i < records.size(); ++i) {
    for (int64_t ref : records[i].refs) {
      auto it = dense.find(ref);
      if (it == dense.end()) {
        ++dropped_refs;
        continue;
      }
      SCHOLAR_RETURN_NOT_OK(
          builder.AddEdge(static_cast<NodeId>(i), it->second));
    }
  }
  if (dropped_refs > 0) {
    SCHOLAR_LOG(kWarning) << "dropped " << dropped_refs
                          << " references to articles outside the file";
  }
  SCHOLAR_ASSIGN_OR_RETURN(corpus.graph, std::move(builder).Build());
  corpus.authors = PaperAuthors::FromLists(author_lists);
  SCHOLAR_RETURN_NOT_OK(corpus.ConsistencyCheck());
  return corpus;
}

Result<Corpus> ReadAMinerCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadAMinerCorpus(&in, path);
}

Status WriteAMinerCorpus(const Corpus& corpus, std::ostream* out) {
  SCHOLAR_RETURN_NOT_OK(corpus.ConsistencyCheck());
  // Author names are not stored in Corpus; synthesize stable names from
  // author ids so the format round-trips structurally.
  for (NodeId i = 0; i < corpus.graph.num_nodes(); ++i) {
    if (!corpus.titles.empty() && !corpus.titles[i].empty()) {
      *out << "#* " << corpus.titles[i] << "\n";
    }
    if (corpus.has_authors()) {
      auto span = corpus.authors.AuthorsOf(i);
      if (!span.empty()) {
        *out << "#@ ";
        for (size_t a = 0; a < span.size(); ++a) {
          if (a > 0) *out << ";";
          *out << "author_" << span[a];
        }
        *out << "\n";
      }
    }
    *out << "#t " << corpus.graph.year(i) << "\n";
    if (!corpus.venues.empty() && corpus.venues[i] >= 0) {
      *out << "#c " << corpus.venue_names[corpus.venues[i]] << "\n";
    }
    uint64_t ext = corpus.external_ids.empty() ? i : corpus.external_ids[i];
    *out << "#index " << ext << "\n";
    for (NodeId ref : corpus.graph.References(i)) {
      uint64_t ref_ext =
          corpus.external_ids.empty() ? ref : corpus.external_ids[ref];
      *out << "#% " << ref_ext << "\n";
    }
    *out << "\n";
  }
  if (!*out) return Status::IOError("AMiner write failed");
  return Status::OK();
}

Status WriteAMinerCorpusFile(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteAMinerCorpus(corpus, &out);
}

Result<Corpus> ReadTsvCorpus(std::istream* articles, std::istream* citations,
                             const std::string& name) {
  struct Row {
    Year year;
    std::string venue;
    std::vector<std::string> author_names;
  };
  std::map<int64_t, Row> rows;
  std::string line;
  while (std::getline(*articles, line)) {
    if (Trim(line).empty() || line[0] == '#') continue;
    auto fields = Split(line, '\t');
    if (fields.size() < 2) {
      return Status::Corruption("articles.tsv row needs >=2 fields: '" +
                                line + "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t id, ParseInt64(fields[0]));
    SCHOLAR_ASSIGN_OR_RETURN(int64_t year, ParseInt64(fields[1]));
    Row row;
    row.year = static_cast<Year>(year);
    if (fields.size() >= 3) row.venue = std::string(Trim(fields[2]));
    if (fields.size() >= 4) {
      for (auto a : Split(fields[3], ';')) {
        std::string_view t = Trim(a);
        if (!t.empty()) row.author_names.emplace_back(t);
      }
    }
    if (!rows.emplace(id, std::move(row)).second) {
      return Status::Corruption("duplicate article id " + std::to_string(id));
    }
  }
  const size_t n = rows.size();
  if (n == 0) return Status::Corruption("articles.tsv is empty");
  // Require dense ids 0..n-1 (rows is ordered, so check ends).
  if (rows.begin()->first != 0 ||
      rows.rbegin()->first != static_cast<int64_t>(n) - 1) {
    return Status::Corruption("article ids must be dense 0..n-1");
  }

  Corpus corpus;
  corpus.name = name;
  GraphBuilder builder;
  std::unordered_map<std::string, int32_t> venue_index;
  std::unordered_map<std::string, AuthorId> author_index;
  std::vector<std::vector<AuthorId>> author_lists(n);
  for (const auto& [id, row] : rows) {
    builder.AddNode(row.year);
    if (row.venue.empty()) {
      corpus.venues.push_back(-1);
    } else {
      auto [it, inserted] = venue_index.emplace(
          row.venue, static_cast<int32_t>(corpus.venue_names.size()));
      if (inserted) corpus.venue_names.push_back(row.venue);
      corpus.venues.push_back(it->second);
    }
    for (const std::string& a : row.author_names) {
      auto it = author_index.emplace(a, static_cast<AuthorId>(author_index.size()))
                    .first;
      author_lists[static_cast<size_t>(id)].push_back(it->second);
    }
  }

  while (std::getline(*citations, line)) {
    if (Trim(line).empty() || line[0] == '#') continue;
    auto fields = Split(line, '\t');
    if (fields.size() != 2) {
      return Status::Corruption("citations.tsv row needs 2 fields: '" + line +
                                "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    SCHOLAR_ASSIGN_OR_RETURN(int64_t v, ParseInt64(fields[1]));
    if (u < 0 || v < 0 || u >= static_cast<int64_t>(n) ||
        v >= static_cast<int64_t>(n)) {
      return Status::Corruption("citation endpoint out of range: '" + line +
                                "'");
    }
    SCHOLAR_RETURN_NOT_OK(
        builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v)));
  }
  SCHOLAR_ASSIGN_OR_RETURN(corpus.graph, std::move(builder).Build());
  corpus.authors = PaperAuthors::FromLists(author_lists);
  SCHOLAR_RETURN_NOT_OK(corpus.ConsistencyCheck());
  return corpus;
}

Result<Corpus> ReadTsvCorpusFiles(const std::string& articles_path,
                                  const std::string& citations_path) {
  std::ifstream articles(articles_path);
  if (!articles) return Status::IOError("cannot open: " + articles_path);
  std::ifstream citations(citations_path);
  if (!citations) return Status::IOError("cannot open: " + citations_path);
  return ReadTsvCorpus(&articles, &citations, articles_path);
}

Status WriteTsvCorpus(const Corpus& corpus, std::ostream* articles,
                      std::ostream* citations) {
  SCHOLAR_RETURN_NOT_OK(corpus.ConsistencyCheck());
  for (NodeId i = 0; i < corpus.graph.num_nodes(); ++i) {
    *articles << i << '\t' << corpus.graph.year(i) << '\t';
    if (!corpus.venues.empty() && corpus.venues[i] >= 0) {
      *articles << corpus.venue_names[corpus.venues[i]];
    }
    *articles << '\t';
    if (corpus.has_authors()) {
      auto span = corpus.authors.AuthorsOf(i);
      for (size_t a = 0; a < span.size(); ++a) {
        if (a > 0) *articles << ';';
        *articles << "author_" << span[a];
      }
    }
    *articles << '\n';
  }
  for (NodeId u = 0; u < corpus.graph.num_nodes(); ++u) {
    for (NodeId v : corpus.graph.References(u)) {
      *citations << u << '\t' << v << '\n';
    }
  }
  if (!*articles || !*citations) return Status::IOError("TSV write failed");
  return Status::OK();
}

Status WriteTsvCorpusFiles(const Corpus& corpus,
                           const std::string& articles_path,
                           const std::string& citations_path) {
  std::ofstream articles(articles_path);
  if (!articles) {
    return Status::IOError("cannot open for writing: " + articles_path);
  }
  std::ofstream citations(citations_path);
  if (!citations) {
    return Status::IOError("cannot open for writing: " + citations_path);
  }
  return WriteTsvCorpus(corpus, &articles, &citations);
}

}  // namespace scholar
