#include "data/ground_truth.h"

#include <algorithm>
#include <map>
#include <string>

#include "util/rng.h"

namespace scholar {

Result<std::vector<EvalPair>> SampleGroundTruthPairs(
    const Corpus& corpus, const PairSamplingOptions& options) {
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("corpus has no ground-truth impact");
  }
  if (options.margin < 0.0) {
    return Status::InvalidArgument("margin must be >= 0");
  }
  const size_t n = corpus.num_articles();

  // Candidate pool honoring the year filter.
  std::vector<NodeId> pool;
  pool.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (options.min_year == kUnknownYear ||
        corpus.graph.year(v) >= options.min_year) {
      pool.push_back(v);
    }
  }
  if (pool.size() < 2) {
    return Status::InvalidArgument(
        "fewer than 2 articles satisfy the year filter");
  }

  // For same-year pairs, group the pool by year up front.
  std::map<Year, std::vector<NodeId>> by_year;
  if (options.same_year_only) {
    for (NodeId v : pool) by_year[corpus.graph.year(v)].push_back(v);
  }

  Rng rng(options.seed);
  std::vector<EvalPair> pairs;
  pairs.reserve(options.num_pairs);
  const size_t max_attempts = options.num_pairs * 200 + 1000;
  size_t attempts = 0;
  while (pairs.size() < options.num_pairs && attempts < max_attempts) {
    ++attempts;
    NodeId a, b;
    if (options.same_year_only) {
      NodeId probe = pool[rng.NextBounded(pool.size())];
      const std::vector<NodeId>& cohort = by_year[corpus.graph.year(probe)];
      if (cohort.size() < 2) continue;
      a = cohort[rng.NextBounded(cohort.size())];
      b = cohort[rng.NextBounded(cohort.size())];
    } else {
      a = pool[rng.NextBounded(pool.size())];
      b = pool[rng.NextBounded(pool.size())];
    }
    if (a == b) continue;
    const double qa = corpus.true_impact[a];
    const double qb = corpus.true_impact[b];
    if (qa >= (1.0 + options.margin) * qb) {
      pairs.push_back({a, b});
    } else if (qb >= (1.0 + options.margin) * qa) {
      pairs.push_back({b, a});
    }
  }
  return pairs;
}

Result<AwardBenchmark> BuildAwardBenchmark(const Corpus& corpus,
                                           double top_fraction) {
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("corpus has no ground-truth impact");
  }
  if (top_fraction <= 0.0 || top_fraction > 1.0) {
    return Status::InvalidArgument("top_fraction must be in (0, 1]");
  }
  const size_t n = corpus.num_articles();
  std::map<Year, std::vector<NodeId>> by_year;
  for (NodeId v = 0; v < n; ++v) by_year[corpus.graph.year(v)].push_back(v);

  AwardBenchmark bench;
  bench.is_award.assign(n, false);
  for (auto& [year, cohort] : by_year) {
    const size_t take = std::max<size_t>(
        1, static_cast<size_t>(top_fraction * cohort.size()));
    std::partial_sort(cohort.begin(),
                      cohort.begin() + std::min(take, cohort.size()),
                      cohort.end(), [&](NodeId x, NodeId y) {
                        if (corpus.true_impact[x] != corpus.true_impact[y]) {
                          return corpus.true_impact[x] >
                                 corpus.true_impact[y];
                        }
                        return x < y;
                      });
    for (size_t i = 0; i < std::min(take, cohort.size()); ++i) {
      bench.awards.push_back(cohort[i]);
      bench.is_award[cohort[i]] = true;
    }
  }
  std::sort(bench.awards.begin(), bench.awards.end());
  return bench;
}

}  // namespace scholar
