#include "data/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace scholar {
namespace {

constexpr char kLabelsSignature[] = "#scholarrank-labels-v1";

/// Counts are bounded so a corrupt header cannot drive an unbounded
/// `assign`: the declared article count sizes the output vector directly,
/// and 100M articles (~1 GiB of labels) is already far beyond what the
/// uint32-NodeId pipeline is run on.
constexpr int64_t kMaxLabelArticles = 100'000'000;

/// Reads the next content line (skipping blanks and comments after the
/// signature), tracking the 1-based source line for diagnostics.
bool NextLabelLine(std::istream* in, std::string* line, size_t* line_number) {
  while (std::getline(*in, *line)) {
    ++*line_number;
    std::string_view trimmed = Trim(*line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    *line = std::string(trimmed);
    return true;
  }
  return false;
}

}  // namespace

Result<std::vector<EvalPair>> SampleGroundTruthPairs(
    const Corpus& corpus, const PairSamplingOptions& options) {
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("corpus has no ground-truth impact");
  }
  if (options.margin < 0.0) {
    return Status::InvalidArgument("margin must be >= 0");
  }
  const size_t n = corpus.num_articles();

  // Candidate pool honoring the year filter.
  std::vector<NodeId> pool;
  pool.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (options.min_year == kUnknownYear ||
        corpus.graph.year(v) >= options.min_year) {
      pool.push_back(v);
    }
  }
  if (pool.size() < 2) {
    return Status::InvalidArgument(
        "fewer than 2 articles satisfy the year filter");
  }

  // For same-year pairs, group the pool by year up front.
  std::map<Year, std::vector<NodeId>> by_year;
  if (options.same_year_only) {
    for (NodeId v : pool) by_year[corpus.graph.year(v)].push_back(v);
  }

  Rng rng(options.seed);
  std::vector<EvalPair> pairs;
  pairs.reserve(options.num_pairs);
  const size_t max_attempts = options.num_pairs * 200 + 1000;
  size_t attempts = 0;
  while (pairs.size() < options.num_pairs && attempts < max_attempts) {
    ++attempts;
    NodeId a, b;
    if (options.same_year_only) {
      NodeId probe = pool[rng.NextBounded(pool.size())];
      const std::vector<NodeId>& cohort = by_year[corpus.graph.year(probe)];
      if (cohort.size() < 2) continue;
      a = cohort[rng.NextBounded(cohort.size())];
      b = cohort[rng.NextBounded(cohort.size())];
    } else {
      a = pool[rng.NextBounded(pool.size())];
      b = pool[rng.NextBounded(pool.size())];
    }
    if (a == b) continue;
    const double qa = corpus.true_impact[a];
    const double qb = corpus.true_impact[b];
    if (qa >= (1.0 + options.margin) * qb) {
      pairs.push_back({a, b});
    } else if (qb >= (1.0 + options.margin) * qa) {
      pairs.push_back({b, a});
    }
  }
  return pairs;
}

Result<AwardBenchmark> BuildAwardBenchmark(const Corpus& corpus,
                                           double top_fraction) {
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("corpus has no ground-truth impact");
  }
  if (top_fraction <= 0.0 || top_fraction > 1.0) {
    return Status::InvalidArgument("top_fraction must be in (0, 1]");
  }
  const size_t n = corpus.num_articles();
  std::map<Year, std::vector<NodeId>> by_year;
  for (NodeId v = 0; v < n; ++v) by_year[corpus.graph.year(v)].push_back(v);

  AwardBenchmark bench;
  bench.is_award.assign(n, false);
  for (auto& [year, cohort] : by_year) {
    const size_t take = std::max<size_t>(
        1, static_cast<size_t>(top_fraction * cohort.size()));
    std::partial_sort(cohort.begin(),
                      cohort.begin() + std::min(take, cohort.size()),
                      cohort.end(), [&](NodeId x, NodeId y) {
                        if (corpus.true_impact[x] != corpus.true_impact[y]) {
                          return corpus.true_impact[x] >
                                 corpus.true_impact[y];
                        }
                        return x < y;
                      });
    for (size_t i = 0; i < std::min(take, cohort.size()); ++i) {
      bench.awards.push_back(cohort[i]);
      bench.is_award[cohort[i]] = true;
    }
  }
  std::sort(bench.awards.begin(), bench.awards.end());
  return bench;
}

Result<std::vector<double>> ReadGroundTruthLabels(std::istream* in) {
  constexpr char kWhat[] = "ground-truth labels";
  std::string line;
  size_t line_number = 0;
  if (!std::getline(*in, line) || Trim(line) != kLabelsSignature) {
    return ParseError(kWhat, 1,
                      "missing signature line '" +
                          std::string(kLabelsSignature) + "'");
  }
  line_number = 1;
  if (!NextLabelLine(in, &line, &line_number)) {
    return ParseError(kWhat, line_number + 1,
                      "missing article/label count line");
  }
  auto counts = SplitSkipEmpty(line, ' ');
  if (counts.size() != 2) {
    return ParseError(kWhat, line_number, "bad count line: '" + line + "'");
  }
  SCHOLAR_ASSIGN_OR_RETURN(int64_t num_articles, ParseInt64(counts[0]));
  SCHOLAR_ASSIGN_OR_RETURN(int64_t num_labels, ParseInt64(counts[1]));
  if (num_articles < 0 || num_labels < 0) {
    return ParseError(kWhat, line_number, "negative counts");
  }
  if (num_articles > kMaxLabelArticles) {
    return ParseError(kWhat, line_number,
                      "implausible article count " +
                          std::to_string(num_articles));
  }
  if (num_labels > num_articles) {
    return ParseError(kWhat, line_number,
                      std::to_string(num_labels) + " labels declared for " +
                          std::to_string(num_articles) + " articles");
  }
  std::vector<double> impact(static_cast<size_t>(num_articles), 0.0);
  std::vector<bool> labeled(static_cast<size_t>(num_articles), false);
  for (int64_t i = 0; i < num_labels; ++i) {
    if (!NextLabelLine(in, &line, &line_number)) {
      return ParseError(kWhat, line_number,
                        "truncated label section at label " +
                            std::to_string(i));
    }
    auto fields = SplitSkipEmpty(line, ' ');
    if (fields.size() != 2) {
      return ParseError(kWhat, line_number, "bad label line: '" + line + "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(int64_t id, ParseInt64(fields[0]));
    SCHOLAR_ASSIGN_OR_RETURN(double value, ParseDouble(fields[1]));
    // Range-check as int64 before any narrowing, same contract as the
    // graph readers: a 2^32+k id fails loudly instead of wrapping.
    if (id < 0 || id >= num_articles) {
      return ParseError(kWhat, line_number,
                        "article id out of range: '" + line + "' (corpus has " +
                            std::to_string(num_articles) + " articles)");
    }
    if (!std::isfinite(value) || value < 0.0) {
      return ParseError(kWhat, line_number,
                        "impact must be finite and >= 0: '" + line + "'");
    }
    const size_t idx = static_cast<size_t>(id);
    if (labeled[idx]) {
      return ParseError(kWhat, line_number,
                        "duplicate label for article " + std::to_string(id));
    }
    labeled[idx] = true;
    impact[idx] = value;
  }
  return impact;
}

Result<std::vector<double>> ReadGroundTruthLabelsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return ReadGroundTruthLabels(&in);
}

Status WriteGroundTruthLabels(const std::vector<double>& impact,
                              std::ostream* out) {
  *out << kLabelsSignature << "\n"
       << impact.size() << " " << impact.size() << "\n";
  for (size_t v = 0; v < impact.size(); ++v) {
    *out << v << " " << impact[v] << "\n";
  }
  if (!*out) return Status::IOError("label write failed");
  return Status::OK();
}

}  // namespace scholar
