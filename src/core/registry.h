#ifndef SCHOLARRANK_CORE_REGISTRY_H_
#define SCHOLARRANK_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "rank/ranker.h"
#include "util/config.h"
#include "util/status.h"

namespace scholar {

/// Creates a ranker by name, parameterized from `config`. Known names:
///
///   cc, age_cc          — citation-count baselines (no parameters)
///   pagerank            — damping, tolerance, max_iterations
///   pagerank_gs         — same system, Gauss-Seidel solver (fewer sweeps)
///   pagerank_mc         — Monte Carlo approximation; mc_walks, mc_seed,
///                         damping
///   hits                — tolerance, max_iterations
///   katz                — katz_alpha, tolerance, max_iterations
///   sceas               — sceas_a, sceas_b, tolerance, max_iterations
///   venuerank           — vr_lambda, vr_iterations (needs ctx.venues)
///   citerank            — tau, plus the pagerank keys
///   futurerank          — fr_alpha, fr_beta, fr_gamma, fr_rho,
///                         tolerance, max_iterations
///   twpr                — sigma, recency_jump, rho, plus pagerank keys
///   ens_<base>          — ensemble over any base above; keys: num_slices,
///                         partition (span|count), normalizer
///                         (max|sum|percentile|zscore), scope
///                         (year|cohort|snapshot), combiner (mean|recency),
///                         ens_gamma, window, materialize_snapshots
///                         (force the legacy per-snapshot graph copies
///                         instead of zero-copy views; bit-identical)
///
/// Unknown names yield NotFound; malformed parameter values yield
/// InvalidArgument.
Result<std::shared_ptr<const Ranker>> MakeRanker(const std::string& name,
                                                 const Config& config);

/// Convenience: default-configured ranker.
Result<std::shared_ptr<const Ranker>> MakeRanker(const std::string& name);

/// All directly constructible ranker names (the ensemble variants listed
/// with the default bases).
std::vector<std::string> KnownRankerNames();

}  // namespace scholar

#endif  // SCHOLARRANK_CORE_REGISTRY_H_
