#ifndef SCHOLARRANK_CORE_SCHOLAR_RANKER_H_
#define SCHOLARRANK_CORE_SCHOLAR_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "rank/ranker.h"
#include "util/config.h"
#include "util/status.h"

namespace scholar {

/// Scores plus every derived view callers usually need.
struct RankingOutput {
  /// Raw scores (higher = more important).
  std::vector<double> scores;
  /// Dense ranks, 0 = best.
  std::vector<uint32_t> ranks;
  /// Rank percentiles in (0, 1], 1 = best.
  std::vector<double> percentiles;
  int iterations = 0;
  bool converged = true;

  /// The k best articles, best first. k larger than the corpus is clamped;
  /// an empty ranking yields an empty list. Costs O(n + k log k) via
  /// partial selection, not a full sort.
  std::vector<NodeId> Top(size_t k) const;

  /// Every article in descending score order (deterministic id tie-break)
  /// — the ranking→snapshot conversion: serving snapshots store this
  /// permutation verbatim as their precomputed top-k index
  /// (serve/snapshot.h), making online Top(k) an O(k) slice.
  std::vector<NodeId> Descending() const;
};

/// The library facade: one object that turns a corpus into a
/// query-independent ranking, configured entirely by key=value pairs.
///
///   Config config;
///   config.Set("ranker", "ens_twpr");
///   config.SetDouble("sigma", 0.4);
///   SCHOLAR_ASSIGN_OR_RETURN(auto ranker, ScholarRanker::Create(config));
///   SCHOLAR_ASSIGN_OR_RETURN(auto out, ranker.RankCorpus(corpus));
///
/// The default ranker is the paper's full method, ens_twpr. The "threads"
/// key sets the worker-thread count of the iterative rankers (0 = all
/// hardware cores, 1 = serial); scores are bit-identical at every setting.
class ScholarRanker {
 public:
  /// Builds from config; the "ranker" key picks the algorithm (see
  /// MakeRanker in core/registry.h for names and parameters).
  static Result<ScholarRanker> Create(const Config& config);

  /// Default configuration (ens_twpr with paper defaults).
  static Result<ScholarRanker> CreateDefault();

  /// Ranks all articles of `corpus` (author data is passed through when
  /// present, so FutureRank-based configurations work too).
  Result<RankingOutput> RankCorpus(const Corpus& corpus) const;

  /// Ranks a bare graph (no author data).
  Result<RankingOutput> RankGraph(const CitationGraph& graph) const;

  /// The underlying algorithm.
  const Ranker& ranker() const { return *ranker_; }
  std::string name() const { return ranker_->name(); }

 private:
  explicit ScholarRanker(std::shared_ptr<const Ranker> ranker)
      : ranker_(std::move(ranker)) {}

  std::shared_ptr<const Ranker> ranker_;
};

}  // namespace scholar

#endif  // SCHOLARRANK_CORE_SCHOLAR_RANKER_H_
