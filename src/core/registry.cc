#include "core/registry.h"

#include "ensemble/ensemble_ranker.h"
#include "rank/citation_count.h"
#include "rank/citerank.h"
#include "rank/futurerank.h"
#include "rank/gauss_seidel.h"
#include "rank/hits.h"
#include "rank/katz.h"
#include "rank/kernel/kernel_options.h"
#include "rank/monte_carlo.h"
#include "rank/pagerank.h"
#include "rank/sceas.h"
#include "rank/time_weighted_pagerank.h"
#include "rank/venue_rank.h"
#include "util/string_util.h"

namespace scholar {
namespace {

Result<PowerIterationOptions> PowerOptionsFromConfig(const Config& config) {
  PowerIterationOptions o;
  o.damping = config.GetDoubleOr("damping", o.damping);
  o.tolerance = config.GetDoubleOr("tolerance", o.tolerance);
  o.max_iterations = static_cast<int>(
      config.GetIntOr("max_iterations", o.max_iterations));
  o.threads = static_cast<int>(config.GetIntOr("threads", o.threads));
  SCHOLAR_ASSIGN_OR_RETURN(o.kernel, kernel::KernelOptionsFromConfig(config));
  return o;
}

}  // namespace

Result<std::shared_ptr<const Ranker>> MakeRanker(const std::string& name,
                                                 const Config& config) {
  const std::string lower = ToLower(name);
  if (StartsWith(lower, "ens_")) {
    SCHOLAR_ASSIGN_OR_RETURN(std::shared_ptr<const Ranker> base,
                             MakeRanker(lower.substr(4), config));
    EnsembleOptions o;
    o.num_slices =
        static_cast<int>(config.GetIntOr("num_slices", o.num_slices));
    const std::string partition = config.GetStringOr("partition", "count");
    if (partition == "span") {
      o.partition = PartitionStrategy::kEqualSpan;
    } else if (partition == "count") {
      o.partition = PartitionStrategy::kEqualCount;
    } else {
      return Status::InvalidArgument("unknown partition '" + partition + "'");
    }
    SCHOLAR_ASSIGN_OR_RETURN(
        o.normalizer, NormalizerKindFromString(
                          config.GetStringOr("normalizer", "percentile")));
    SCHOLAR_ASSIGN_OR_RETURN(
        o.scope, NormalizationScopeFromString(
                     config.GetStringOr("scope", "year")));
    SCHOLAR_ASSIGN_OR_RETURN(
        o.combiner,
        EnsembleCombinerFromString(config.GetStringOr("combiner", "mean")));
    o.gamma = config.GetDoubleOr("ens_gamma", o.gamma);
    o.window = static_cast<int>(config.GetIntOr("window", o.window));
    o.warm_start = config.GetBoolOr("warm_start", o.warm_start);
    o.materialize_snapshots =
        config.GetBoolOr("materialize_snapshots", o.materialize_snapshots);
    o.threads = static_cast<int>(config.GetIntOr("threads", o.threads));
    return std::shared_ptr<const Ranker>(
        std::make_shared<EnsembleRanker>(std::move(base), o));
  }
  if (lower == "cc") {
    return std::shared_ptr<const Ranker>(
        std::make_shared<CitationCountRanker>());
  }
  if (lower == "age_cc") {
    return std::shared_ptr<const Ranker>(
        std::make_shared<AgeNormalizedCitationCountRanker>());
  }
  if (lower == "pagerank" || lower == "pr") {
    SCHOLAR_ASSIGN_OR_RETURN(PowerIterationOptions o,
                             PowerOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(std::make_shared<PageRankRanker>(o));
  }
  if (lower == "pagerank_mc") {
    MonteCarloOptions o;
    o.walks_per_node = static_cast<int>(
        config.GetIntOr("mc_walks", o.walks_per_node));
    o.damping = config.GetDoubleOr("damping", o.damping);
    o.seed = static_cast<uint64_t>(config.GetIntOr("mc_seed", 99));
    return std::shared_ptr<const Ranker>(
        std::make_shared<MonteCarloPageRankRanker>(o));
  }
  if (lower == "pagerank_gs") {
    SCHOLAR_ASSIGN_OR_RETURN(PowerIterationOptions o,
                             PowerOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(
        std::make_shared<GaussSeidelPageRankRanker>(o));
  }
  if (lower == "hits") {
    HitsOptions o;
    o.tolerance = config.GetDoubleOr("tolerance", o.tolerance);
    o.max_iterations = static_cast<int>(
        config.GetIntOr("max_iterations", o.max_iterations));
    o.threads = static_cast<int>(config.GetIntOr("threads", o.threads));
    SCHOLAR_ASSIGN_OR_RETURN(o.kernel, kernel::KernelOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(std::make_shared<HitsRanker>(o));
  }
  if (lower == "citerank") {
    CiteRankOptions o;
    o.tau = config.GetDoubleOr("tau", o.tau);
    SCHOLAR_ASSIGN_OR_RETURN(o.power, PowerOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(std::make_shared<CiteRankRanker>(o));
  }
  if (lower == "futurerank") {
    FutureRankOptions o;
    o.alpha = config.GetDoubleOr("fr_alpha", o.alpha);
    o.beta = config.GetDoubleOr("fr_beta", o.beta);
    o.gamma = config.GetDoubleOr("fr_gamma", o.gamma);
    o.rho = config.GetDoubleOr("fr_rho", o.rho);
    o.tolerance = config.GetDoubleOr("tolerance", o.tolerance);
    o.max_iterations = static_cast<int>(
        config.GetIntOr("max_iterations", o.max_iterations));
    return std::shared_ptr<const Ranker>(
        std::make_shared<FutureRankRanker>(o));
  }
  if (lower == "katz") {
    KatzOptions o;
    o.alpha = config.GetDoubleOr("katz_alpha", o.alpha);
    o.tolerance = config.GetDoubleOr("tolerance", o.tolerance);
    o.max_iterations = static_cast<int>(
        config.GetIntOr("max_iterations", o.max_iterations));
    o.threads = static_cast<int>(config.GetIntOr("threads", o.threads));
    SCHOLAR_ASSIGN_OR_RETURN(o.kernel, kernel::KernelOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(std::make_shared<KatzRanker>(o));
  }
  if (lower == "sceas") {
    SceasOptions o;
    o.a = config.GetDoubleOr("sceas_a", o.a);
    o.b = config.GetDoubleOr("sceas_b", o.b);
    o.tolerance = config.GetDoubleOr("tolerance", o.tolerance);
    o.max_iterations = static_cast<int>(
        config.GetIntOr("max_iterations", o.max_iterations));
    o.threads = static_cast<int>(config.GetIntOr("threads", o.threads));
    SCHOLAR_ASSIGN_OR_RETURN(o.kernel, kernel::KernelOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(std::make_shared<SceasRanker>(o));
  }
  if (lower == "venuerank") {
    VenueRankOptions o;
    o.lambda = config.GetDoubleOr("vr_lambda", o.lambda);
    o.iterations = static_cast<int>(
        config.GetIntOr("vr_iterations", o.iterations));
    return std::shared_ptr<const Ranker>(
        std::make_shared<VenueRankRanker>(o));
  }
  if (lower == "twpr") {
    TwprOptions o;
    o.sigma = config.GetDoubleOr("sigma", o.sigma);
    o.recency_jump = config.GetBoolOr("recency_jump", o.recency_jump);
    o.rho = config.GetDoubleOr("rho", o.rho);
    SCHOLAR_ASSIGN_OR_RETURN(o.power, PowerOptionsFromConfig(config));
    return std::shared_ptr<const Ranker>(
        std::make_shared<TimeWeightedPageRank>(o));
  }
  return Status::NotFound("unknown ranker '" + name + "'");
}

Result<std::shared_ptr<const Ranker>> MakeRanker(const std::string& name) {
  return MakeRanker(name, Config());
}

std::vector<std::string> KnownRankerNames() {
  return {"cc",       "age_cc",     "pagerank",   "pagerank_gs", "pagerank_mc", "hits",
          "katz",     "sceas",      "venuerank",  "citerank",
          "futurerank", "twpr",     "ens_cc",     "ens_pagerank",
          "ens_twpr"};
}

}  // namespace scholar
