#include "core/scholar_ranker.h"

#include <utility>

#include "core/registry.h"

namespace scholar {

std::vector<NodeId> RankingOutput::Top(size_t k) const {
  return TopK(scores, k);
}

std::vector<NodeId> RankingOutput::Descending() const {
  return TopK(scores, scores.size());
}

Result<ScholarRanker> ScholarRanker::Create(const Config& config) {
  const std::string name = config.GetStringOr("ranker", "ens_twpr");
  SCHOLAR_ASSIGN_OR_RETURN(std::shared_ptr<const Ranker> ranker,
                           MakeRanker(name, config));
  return ScholarRanker(std::move(ranker));
}

Result<ScholarRanker> ScholarRanker::CreateDefault() {
  return Create(Config());
}

namespace {

Result<RankingOutput> ToOutput(Result<RankResult> result) {
  SCHOLAR_ASSIGN_OR_RETURN(RankResult r, std::move(result));
  RankingOutput out;
  out.ranks = ScoresToRanks(r.scores);
  out.percentiles = RankPercentiles(r.scores);
  out.scores = std::move(r.scores);
  out.iterations = r.iterations;
  out.converged = r.converged;
  return out;
}

}  // namespace

Result<RankingOutput> ScholarRanker::RankCorpus(const Corpus& corpus) const {
  RankContext ctx;
  ctx.graph = &corpus.graph;
  if (corpus.has_authors()) ctx.authors = &corpus.authors;
  if (!corpus.venues.empty()) ctx.venues = &corpus.venues;
  return ToOutput(ranker_->Rank(ctx));
}

Result<RankingOutput> ScholarRanker::RankGraph(
    const CitationGraph& graph) const {
  RankContext ctx;
  ctx.graph = &graph;
  return ToOutput(ranker_->Rank(ctx));
}

}  // namespace scholar
