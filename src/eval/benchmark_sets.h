#ifndef SCHOLARRANK_EVAL_BENCHMARK_SETS_H_
#define SCHOLARRANK_EVAL_BENCHMARK_SETS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"
#include "rank/ranker.h"
#include "util/status.h"

namespace scholar {

/// Knobs of the standard evaluation suite used across experiments.
struct EvalSuiteOptions {
  size_t num_pairs = 100000;
  double margin = 0.1;
  /// "Recent" means published within this many years of the corpus maximum
  /// (Table 3's restriction).
  int recent_window_years = 5;
  double award_top_fraction = 0.02;
  uint64_t seed = 7;
};

/// All ground-truth material for one corpus, derived once and reused across
/// rankers so every method is judged on the identical pairs.
struct EvalSuite {
  std::vector<EvalPair> overall_pairs;
  std::vector<EvalPair> recent_pairs;
  std::vector<EvalPair> same_year_pairs;
  AwardBenchmark awards;
  Year recent_cutoff = kUnknownYear;
};

/// Builds the suite. Requires corpus.has_ground_truth().
Result<EvalSuite> BuildEvalSuite(const Corpus& corpus,
                                 const EvalSuiteOptions& options);

/// One ranker's scorecard on a suite.
struct RankerEvaluation {
  std::string ranker;
  double overall_accuracy = 0.0;    ///< Pairwise accuracy, all pairs.
  double recent_accuracy = 0.0;     ///< Pairs among recent articles only.
  double same_year_accuracy = 0.0;  ///< Pairs within one publication year.
  double ndcg_awards_100 = 0.0;     ///< NDCG@100 against award articles.
  double map_awards = 0.0;          ///< Average precision of award recovery.
  double spearman_truth = 0.0;      ///< Correlation with latent impact.
  int iterations = 0;
  double seconds = 0.0;             ///< Wall time of the Rank() call.
};

/// Runs `ranker` on the corpus and scores it against the suite.
Result<RankerEvaluation> EvaluateRanker(const Corpus& corpus,
                                        const Ranker& ranker,
                                        const EvalSuite& suite);

/// Like EvaluateRanker but reuses precomputed scores (for callers that need
/// the raw scores too).
Result<RankerEvaluation> EvaluateScores(const Corpus& corpus,
                                        const std::string& ranker_name,
                                        const std::vector<double>& scores,
                                        const EvalSuite& suite);

}  // namespace scholar

#endif  // SCHOLARRANK_EVAL_BENCHMARK_SETS_H_
