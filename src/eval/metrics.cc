#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "rank/ranker.h"

namespace scholar {
namespace {

Status CheckSameSize(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vector sizes differ: " +
                                   std::to_string(a.size()) + " vs " +
                                   std::to_string(b.size()));
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least 2 items");
  }
  return Status::OK();
}

/// Counts inversions in `v` with merge sort; v is consumed.
uint64_t CountInversions(std::vector<uint32_t>* v) {
  const size_t n = v->size();
  std::vector<uint32_t> buffer(n);
  uint64_t inversions = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if ((*v)[i] <= (*v)[j]) {
          buffer[k++] = (*v)[i++];
        } else {
          inversions += mid - i;
          buffer[k++] = (*v)[j++];
        }
      }
      while (i < mid) buffer[k++] = (*v)[i++];
      while (j < hi) buffer[k++] = (*v)[j++];
      std::copy(buffer.begin() + lo, buffer.begin() + hi, v->begin() + lo);
    }
  }
  return inversions;
}

/// Fractional (midrank) ranks: equal values share the average of their
/// positions; rank 1 = smallest value.
std::vector<double> FractionalRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t x, uint32_t y) { return v[x] < v[y]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = mid;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

Result<double> PairwiseAccuracy(const std::vector<double>& scores,
                                const std::vector<EvalPair>& pairs) {
  if (pairs.empty()) return Status::InvalidArgument("no evaluation pairs");
  double correct = 0.0;
  for (const EvalPair& p : pairs) {
    if (p.better >= scores.size() || p.worse >= scores.size()) {
      return Status::InvalidArgument("pair references node beyond " +
                                     std::to_string(scores.size()));
    }
    if (scores[p.better] > scores[p.worse]) {
      correct += 1.0;
    } else if (scores[p.better] == scores[p.worse]) {
      correct += 0.5;
    }
  }
  return correct / static_cast<double>(pairs.size());
}

Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SCHOLAR_RETURN_NOT_OK(CheckSameSize(a, b));
  const size_t n = a.size();
  // Order items by a (desc, ties by index), then count inversions of b's
  // rank sequence in that order.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t x, uint32_t y) { return a[x] > a[y]; });
  std::vector<uint32_t> b_ranks = ScoresToRanks(b);
  std::vector<uint32_t> sequence(n);
  for (size_t i = 0; i < n; ++i) sequence[i] = b_ranks[order[i]];
  const uint64_t inversions = CountInversions(&sequence);
  const double total_pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return 1.0 - 2.0 * static_cast<double>(inversions) / total_pairs;
}

Result<double> SpearmanRho(const std::vector<double>& a,
                           const std::vector<double>& b) {
  SCHOLAR_RETURN_NOT_OK(CheckSameSize(a, b));
  std::vector<double> ra = FractionalRanks(a);
  std::vector<double> rb = FractionalRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) {
    return Status::InvalidArgument("constant input has undefined Spearman");
  }
  return cov / std::sqrt(va * vb);
}

Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<double>& relevance, size_t k) {
  if (scores.size() != relevance.size()) {
    return Status::InvalidArgument("scores/relevance size mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  k = std::min(k, scores.size());

  std::vector<NodeId> by_score = TopK(scores, k);
  double dcg = 0.0;
  for (size_t i = 0; i < by_score.size(); ++i) {
    dcg += relevance[by_score[i]] / std::log2(static_cast<double>(i) + 2.0);
  }

  std::vector<double> ideal = relevance;
  std::partial_sort(ideal.begin(), ideal.begin() + k, ideal.end(),
                    std::greater<double>());
  double idcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    idcg += ideal[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg == 0.0) return 0.0;
  return dcg / idcg;
}

Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<bool>& relevant, size_t k) {
  if (scores.size() != relevant.size()) {
    return Status::InvalidArgument("scores/relevant size mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  k = std::min(k, scores.size());
  std::vector<NodeId> top = TopK(scores, k);
  size_t hits = 0;
  for (NodeId v : top) {
    if (relevant[v]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> RecallAtK(const std::vector<double>& scores,
                         const std::vector<bool>& relevant, size_t k) {
  if (scores.size() != relevant.size()) {
    return Status::InvalidArgument("scores/relevant size mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  const size_t total =
      static_cast<size_t>(std::count(relevant.begin(), relevant.end(), true));
  if (total == 0) return 0.0;
  k = std::min(k, scores.size());
  std::vector<NodeId> top = TopK(scores, k);
  size_t hits = 0;
  for (NodeId v : top) {
    if (relevant[v]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<bool>& relevant) {
  if (scores.size() != relevant.size()) {
    return Status::InvalidArgument("scores/relevant size mismatch");
  }
  const size_t total =
      static_cast<size_t>(std::count(relevant.begin(), relevant.end(), true));
  if (total == 0) return 0.0;
  std::vector<NodeId> order = TopK(scores, scores.size());
  double ap = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (relevant[order[i]]) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return ap / static_cast<double>(total);
}

}  // namespace scholar
