#include "eval/cohort.h"

#include <algorithm>
#include <map>

#include "rank/ranker.h"

namespace scholar {

std::vector<CohortStats> PercentilesByYear(
    const CitationGraph& graph, const std::vector<double>& scores) {
  std::vector<double> percentiles = RankPercentiles(scores);
  std::map<Year, std::vector<double>> by_year;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    by_year[graph.year(v)].push_back(percentiles[v]);
  }
  std::vector<CohortStats> cohorts;
  cohorts.reserve(by_year.size());
  for (auto& [year, values] : by_year) {
    CohortStats c;
    c.year = year;
    c.count = values.size();
    double sum = 0.0;
    for (double p : values) sum += p;
    c.mean_percentile = sum / static_cast<double>(values.size());
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    c.median_percentile = values[values.size() / 2];
    cohorts.push_back(c);
  }
  return cohorts;
}

double RecencyBiasSlope(const std::vector<CohortStats>& cohorts) {
  if (cohorts.size() < 2) return 0.0;
  const double n = static_cast<double>(cohorts.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const CohortStats& c : cohorts) {
    const double x = static_cast<double>(c.year);
    sx += x;
    sy += c.mean_percentile;
    sxx += x * x;
    sxy += x * c.mean_percentile;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace scholar
