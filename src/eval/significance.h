#ifndef SCHOLARRANK_EVAL_SIGNIFICANCE_H_
#define SCHOLARRANK_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "util/status.h"

namespace scholar {

/// Bootstrap confidence interval for the pairwise accuracy of one score
/// vector over a pair benchmark.
struct BootstrapInterval {
  double point = 0.0;   ///< Accuracy on the full pair set.
  double lo = 0.0;      ///< Lower percentile bound.
  double hi = 0.0;      ///< Upper percentile bound.
};

struct BootstrapOptions {
  int num_resamples = 200;
  /// Two-sided coverage; 0.95 reports the [2.5%, 97.5%] percentiles.
  double confidence = 0.95;
  uint64_t seed = 1234;
};

/// Percentile bootstrap over the evaluation pairs (resampling pairs with
/// replacement). Errors: empty pairs, bad options.
Result<BootstrapInterval> BootstrapPairwiseAccuracy(
    const std::vector<double>& scores, const std::vector<EvalPair>& pairs,
    const BootstrapOptions& options = {});

/// Paired comparison of two rankers on the same pair benchmark.
struct PairedComparison {
  double accuracy_a = 0.0;
  double accuracy_b = 0.0;
  /// Pairs ranker A orders correctly and B does not.
  size_t a_only = 0;
  /// Pairs ranker B orders correctly and A does not.
  size_t b_only = 0;
  /// Two-sided sign-test p-value of "A and B are equally accurate"
  /// (normal approximation to the binomial for a_only + b_only >= 20,
  /// exact binomial otherwise).
  double p_value = 1.0;
};

/// Sign test over the discordant pairs (the standard paired significance
/// test for pairwise-accuracy comparisons; ties on either side are
/// excluded, as in McNemar's test).
Result<PairedComparison> ComparePairwise(const std::vector<double>& scores_a,
                                         const std::vector<double>& scores_b,
                                         const std::vector<EvalPair>& pairs);

}  // namespace scholar

#endif  // SCHOLARRANK_EVAL_SIGNIFICANCE_H_
