#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "util/rng.h"

namespace scholar {
namespace {

/// Correctness credit of one pair under one score vector (1, 0.5 tie, 0).
double PairCredit(const std::vector<double>& scores, const EvalPair& p) {
  if (scores[p.better] > scores[p.worse]) return 1.0;
  if (scores[p.better] == scores[p.worse]) return 0.5;
  return 0.0;
}

/// Exact two-sided binomial sign-test p-value for `k` successes out of `n`
/// under p = 1/2: 2 * min(P[X <= min(k, n-k)], 0.5).
double ExactSignTest(size_t k, size_t n) {
  if (n == 0) return 1.0;
  const size_t tail = std::min(k, n - k);
  // Cumulative binomial P[X <= tail] with log-space terms for stability.
  double cumulative = 0.0;
  double log_choose = 0.0;  // log C(n, 0)
  const double log_half_n = static_cast<double>(n) * std::log(0.5);
  for (size_t i = 0; i <= tail; ++i) {
    if (i > 0) {
      log_choose += std::log(static_cast<double>(n - i + 1)) -
                    std::log(static_cast<double>(i));
    }
    cumulative += std::exp(log_choose + log_half_n);
  }
  return std::min(1.0, 2.0 * cumulative);
}

/// Normal-approximation two-sided sign test with continuity correction.
double ApproxSignTest(size_t k, size_t n) {
  const double mean = static_cast<double>(n) / 2.0;
  const double sd = std::sqrt(static_cast<double>(n)) / 2.0;
  double z = (std::abs(static_cast<double>(k) - mean) - 0.5) / sd;
  z = std::max(0.0, z);
  // Two-sided tail of the standard normal via erfc.
  return std::erfc(z / std::sqrt(2.0));
}

}  // namespace

Result<BootstrapInterval> BootstrapPairwiseAccuracy(
    const std::vector<double>& scores, const std::vector<EvalPair>& pairs,
    const BootstrapOptions& options) {
  if (options.num_resamples < 2) {
    return Status::InvalidArgument("num_resamples must be >= 2");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  BootstrapInterval interval;
  SCHOLAR_ASSIGN_OR_RETURN(interval.point, PairwiseAccuracy(scores, pairs));

  // Per-pair credits once; resamples only index into them.
  std::vector<double> credits(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    credits[i] = PairCredit(scores, pairs[i]);
  }

  Rng rng(options.seed);
  std::vector<double> estimates(options.num_resamples);
  for (int r = 0; r < options.num_resamples; ++r) {
    double sum = 0.0;
    for (size_t i = 0; i < credits.size(); ++i) {
      sum += credits[rng.NextBounded(credits.size())];
    }
    estimates[r] = sum / static_cast<double>(credits.size());
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  const size_t lo_idx = static_cast<size_t>(alpha * (estimates.size() - 1));
  const size_t hi_idx =
      static_cast<size_t>((1.0 - alpha) * (estimates.size() - 1));
  interval.lo = estimates[lo_idx];
  interval.hi = estimates[hi_idx];
  return interval;
}

Result<PairedComparison> ComparePairwise(const std::vector<double>& scores_a,
                                         const std::vector<double>& scores_b,
                                         const std::vector<EvalPair>& pairs) {
  if (scores_a.size() != scores_b.size()) {
    return Status::InvalidArgument("score vectors differ in size");
  }
  PairedComparison cmp;
  SCHOLAR_ASSIGN_OR_RETURN(cmp.accuracy_a, PairwiseAccuracy(scores_a, pairs));
  SCHOLAR_ASSIGN_OR_RETURN(cmp.accuracy_b, PairwiseAccuracy(scores_b, pairs));
  for (const EvalPair& p : pairs) {
    const bool a_right = scores_a[p.better] > scores_a[p.worse];
    const bool b_right = scores_b[p.better] > scores_b[p.worse];
    if (a_right && !b_right) ++cmp.a_only;
    if (b_right && !a_right) ++cmp.b_only;
  }
  const size_t discordant = cmp.a_only + cmp.b_only;
  cmp.p_value = discordant < 20 ? ExactSignTest(cmp.a_only, discordant)
                                : ApproxSignTest(cmp.a_only, discordant);
  return cmp;
}

}  // namespace scholar
