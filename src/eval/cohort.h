#ifndef SCHOLARRANK_EVAL_COHORT_H_
#define SCHOLARRANK_EVAL_COHORT_H_

#include <vector>

#include "graph/citation_graph.h"

namespace scholar {

/// Per-publication-year summary of how a ranker treats that cohort.
/// The recency-bias figure (Fig. 3) plots mean_percentile against year: an
/// unbiased ranker is flat at 0.5; classic PageRank slopes down steeply for
/// recent years.
struct CohortStats {
  Year year = kUnknownYear;
  size_t count = 0;
  /// Mean rank percentile of the cohort under the evaluated scores
  /// (1 = best article, 1/n = worst).
  double mean_percentile = 0.0;
  /// Median rank percentile of the cohort.
  double median_percentile = 0.0;
};

/// Groups articles by publication year and summarizes their rank
/// percentiles under `scores`. Years are returned ascending.
std::vector<CohortStats> PercentilesByYear(const CitationGraph& graph,
                                           const std::vector<double>& scores);

/// Slope of a least-squares fit of mean cohort percentile against year — a
/// single-number recency-bias index (0 = age-neutral, negative = biased
/// against recent articles). Returns 0 for fewer than 2 cohorts.
double RecencyBiasSlope(const std::vector<CohortStats>& cohorts);

}  // namespace scholar

#endif  // SCHOLARRANK_EVAL_COHORT_H_
