#include "eval/benchmark_sets.h"

#include <utility>

#include "eval/metrics.h"
#include "util/timer.h"

namespace scholar {

Result<EvalSuite> BuildEvalSuite(const Corpus& corpus,
                                 const EvalSuiteOptions& options) {
  if (!corpus.has_ground_truth()) {
    return Status::FailedPrecondition("corpus has no ground truth");
  }
  EvalSuite suite;
  suite.recent_cutoff = corpus.graph.max_year() -
                        static_cast<Year>(options.recent_window_years) + 1;

  PairSamplingOptions pair_options;
  pair_options.num_pairs = options.num_pairs;
  pair_options.margin = options.margin;
  pair_options.seed = options.seed;
  SCHOLAR_ASSIGN_OR_RETURN(suite.overall_pairs,
                           SampleGroundTruthPairs(corpus, pair_options));

  pair_options.min_year = suite.recent_cutoff;
  pair_options.seed = options.seed + 1;
  SCHOLAR_ASSIGN_OR_RETURN(suite.recent_pairs,
                           SampleGroundTruthPairs(corpus, pair_options));

  pair_options.min_year = kUnknownYear;
  pair_options.same_year_only = true;
  pair_options.seed = options.seed + 2;
  SCHOLAR_ASSIGN_OR_RETURN(suite.same_year_pairs,
                           SampleGroundTruthPairs(corpus, pair_options));

  SCHOLAR_ASSIGN_OR_RETURN(
      suite.awards, BuildAwardBenchmark(corpus, options.award_top_fraction));
  return suite;
}

Result<RankerEvaluation> EvaluateScores(const Corpus& corpus,
                                        const std::string& ranker_name,
                                        const std::vector<double>& scores,
                                        const EvalSuite& suite) {
  RankerEvaluation eval;
  eval.ranker = ranker_name;
  SCHOLAR_ASSIGN_OR_RETURN(eval.overall_accuracy,
                           PairwiseAccuracy(scores, suite.overall_pairs));
  SCHOLAR_ASSIGN_OR_RETURN(eval.recent_accuracy,
                           PairwiseAccuracy(scores, suite.recent_pairs));
  SCHOLAR_ASSIGN_OR_RETURN(eval.same_year_accuracy,
                           PairwiseAccuracy(scores, suite.same_year_pairs));

  std::vector<double> award_relevance(corpus.num_articles(), 0.0);
  for (NodeId v : suite.awards.awards) award_relevance[v] = 1.0;
  SCHOLAR_ASSIGN_OR_RETURN(eval.ndcg_awards_100,
                           NdcgAtK(scores, award_relevance, 100));
  SCHOLAR_ASSIGN_OR_RETURN(eval.map_awards,
                           AveragePrecision(scores, suite.awards.is_award));
  SCHOLAR_ASSIGN_OR_RETURN(eval.spearman_truth,
                           SpearmanRho(scores, corpus.true_impact));
  return eval;
}

Result<RankerEvaluation> EvaluateRanker(const Corpus& corpus,
                                        const Ranker& ranker,
                                        const EvalSuite& suite) {
  RankContext ctx;
  ctx.graph = &corpus.graph;
  if (corpus.has_authors()) ctx.authors = &corpus.authors;
  if (!corpus.venues.empty()) ctx.venues = &corpus.venues;

  WallTimer timer;
  SCHOLAR_ASSIGN_OR_RETURN(RankResult result, ranker.Rank(ctx));
  const double seconds = timer.ElapsedSeconds();

  SCHOLAR_ASSIGN_OR_RETURN(
      RankerEvaluation eval,
      EvaluateScores(corpus, ranker.name(), result.scores, suite));
  eval.iterations = result.iterations;
  eval.seconds = seconds;
  return eval;
}

}  // namespace scholar
