#ifndef SCHOLARRANK_EVAL_METRICS_H_
#define SCHOLARRANK_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "graph/types.h"
#include "util/status.h"

namespace scholar {

/// Fraction of ground-truth pairs ordered correctly by `scores`
/// (score[better] > score[worse]); exact ties count 0.5. The paper's main
/// quality metric. Errors: empty pair list or out-of-range node ids.
Result<double> PairwiseAccuracy(const std::vector<double>& scores,
                                const std::vector<EvalPair>& pairs);

/// Kendall tau-a rank correlation in [-1, 1] between two score vectors of
/// equal length (>= 2). Ties are broken deterministically by index before
/// counting inversions (O(n log n) merge sort).
Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation with fractional (midrank) tie handling.
Result<double> SpearmanRho(const std::vector<double>& a,
                           const std::vector<double>& b);

/// NDCG@k: `scores` induce the ranking, `relevance` holds per-item gains
/// (>= 0). Standard log2 discount, gain = relevance (not exponentiated).
/// Returns 0 when no item has positive relevance.
Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<double>& relevance, size_t k);

/// Precision@k over a binary relevance mask.
Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<bool>& relevant, size_t k);

/// Recall@k over a binary relevance mask (0 when nothing is relevant).
Result<double> RecallAtK(const std::vector<double>& scores,
                         const std::vector<bool>& relevant, size_t k);

/// Average precision of the full ranking against a binary relevance mask
/// (the per-query quantity averaged by MAP).
Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<bool>& relevant);

}  // namespace scholar

#endif  // SCHOLARRANK_EVAL_METRICS_H_
