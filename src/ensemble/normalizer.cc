#include "ensemble/normalizer.h"

#include <algorithm>
#include <cmath>

#include "rank/ranker.h"

namespace scholar {

Result<NormalizerKind> NormalizerKindFromString(const std::string& name) {
  if (name == "max") return NormalizerKind::kMax;
  if (name == "sum") return NormalizerKind::kSum;
  if (name == "percentile") return NormalizerKind::kRankPercentile;
  if (name == "zscore") return NormalizerKind::kZScore;
  return Status::InvalidArgument("unknown normalizer '" + name + "'");
}

std::string NormalizerKindToString(NormalizerKind kind) {
  switch (kind) {
    case NormalizerKind::kMax:
      return "max";
    case NormalizerKind::kSum:
      return "sum";
    case NormalizerKind::kRankPercentile:
      return "percentile";
    case NormalizerKind::kZScore:
      return "zscore";
  }
  return "unknown";
}

std::vector<double> NormalizeScores(const std::vector<double>& scores,
                                    NormalizerKind kind) {
  const size_t n = scores.size();
  if (n == 0) return {};
  switch (kind) {
    case NormalizerKind::kMax: {
      double mx = *std::max_element(scores.begin(), scores.end());
      if (mx <= 0.0) return scores;
      std::vector<double> out(n);
      for (size_t i = 0; i < n; ++i) out[i] = scores[i] / mx;
      return out;
    }
    case NormalizerKind::kSum: {
      double sum = 0.0;
      for (double s : scores) sum += s;
      if (sum <= 0.0) return scores;
      std::vector<double> out(n);
      for (size_t i = 0; i < n; ++i) out[i] = scores[i] / sum;
      return out;
    }
    case NormalizerKind::kRankPercentile:
      return MidrankPercentiles(scores);
    case NormalizerKind::kZScore: {
      double mean = 0.0;
      for (double s : scores) mean += s;
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (double s : scores) var += (s - mean) * (s - mean);
      var /= static_cast<double>(n);
      double sd = std::sqrt(var);
      std::vector<double> out(n, 0.0);
      if (sd > 0.0) {
        for (size_t i = 0; i < n; ++i) out[i] = (scores[i] - mean) / sd;
      }
      return out;
    }
  }
  return scores;
}

}  // namespace scholar
