#ifndef SCHOLARRANK_ENSEMBLE_TIME_PARTITIONER_H_
#define SCHOLARRANK_ENSEMBLE_TIME_PARTITIONER_H_

#include <vector>

#include "graph/citation_graph.h"
#include "util/status.h"

namespace scholar {

/// How slice boundaries are placed along the publication-time axis.
enum class PartitionStrategy {
  /// Boundaries split [min_year, max_year] into equal-length year spans.
  kEqualSpan,
  /// Boundaries are chosen so each slice adds roughly the same number of
  /// articles (better for corpora with exponential growth, where the last
  /// years dominate).
  kEqualCount,
};

/// Computes `num_slices` strictly increasing boundary years
/// T_1 < ... < T_k with T_k = max_year. Snapshot i is the subgraph of
/// articles with year <= T_i (boundaries are inclusive).
///
/// Fewer than `num_slices` boundaries are returned when the graph spans
/// fewer distinct years than requested (never more, never duplicates).
/// Errors: empty graph or num_slices < 1.
Result<std::vector<Year>> ComputeSliceBoundaries(const CitationGraph& graph,
                                                 int num_slices,
                                                 PartitionStrategy strategy);

}  // namespace scholar

#endif  // SCHOLARRANK_ENSEMBLE_TIME_PARTITIONER_H_
