#ifndef SCHOLARRANK_ENSEMBLE_ENSEMBLE_RANKER_H_
#define SCHOLARRANK_ENSEMBLE_ENSEMBLE_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "ensemble/normalizer.h"
#include "ensemble/time_partitioner.h"
#include "rank/ranker.h"

namespace scholar {

/// How per-snapshot normalized scores are combined into one final score.
enum class EnsembleCombiner {
  /// Plain mean over the snapshots containing the article.
  kMean,
  /// Recency-weighted mean: snapshot i (of k) gets weight gamma^(k-i),
  /// gamma in (0,1], so later (larger, more complete) snapshots count more.
  kRecencyWeighted,
};

Result<EnsembleCombiner> EnsembleCombinerFromString(const std::string& name);
std::string EnsembleCombinerToString(EnsembleCombiner combiner);

/// Which population a raw score is normalized against inside one snapshot.
enum class NormalizationScope {
  /// Against every article of the snapshot. Simple, but articles of
  /// different eras share one pool, so older articles keep their
  /// accumulation advantage inside every snapshot.
  kSnapshot,
  /// Against the articles of the same time slice only (the article's
  /// "generation"). Scores then measure within-era standing, which is the
  /// quantity that is comparable across eras — the core of the paper's
  /// fairness argument.
  kSliceCohort,
  /// Against articles of the same publication year — the finest generation
  /// granularity. Removes the residual within-slice age gradient that
  /// kSliceCohort leaves (articles from the first year of a slice are
  /// older than their slice-mates at every boundary).
  kYearCohort,
};

Result<NormalizationScope> NormalizationScopeFromString(
    const std::string& name);
std::string NormalizationScopeToString(NormalizationScope scope);

/// Parameters of the ensemble framework.
struct EnsembleOptions {
  int num_slices = 8;
  PartitionStrategy partition = PartitionStrategy::kEqualCount;
  NormalizerKind normalizer = NormalizerKind::kRankPercentile;
  NormalizationScope scope = NormalizationScope::kYearCohort;
  EnsembleCombiner combiner = EnsembleCombiner::kMean;
  /// Base of the recency weights (only for kRecencyWeighted).
  double gamma = 0.8;
  /// How many snapshots, counted from the first one containing an article,
  /// contribute to its score; 0 (the default) means all snapshots from the
  /// article's first appearance onward. A bounded window judges every
  /// article over the same stretch of its own life (its "contemporary"
  /// networks only) — stricter fairness at the cost of discarding the
  /// article's later history; the ablation bench (Table 4) quantifies the
  /// trade-off.
  int window = 0;
  /// Seed each snapshot's iteration with the previous (smaller) snapshot's
  /// scores. Purely a speedup — the fixed points are unchanged — and it
  /// typically halves the total power-iteration count of the ensemble.
  bool warm_start = true;
  /// Force the legacy materialized-snapshot path (each snapshot extracted
  /// as a full CitationGraph copy) instead of zero-copy temporal views.
  /// Bit-identical scores either way — this is the oracle the view path is
  /// verified against (tests, bench/ensemble_scaling) and an escape hatch;
  /// it costs O(k·(V+E)) snapshot memory instead of O(V+E). Only
  /// meaningful for base rankers that support views; others always
  /// materialize.
  bool materialize_snapshots = false;
  /// Worker threads: 0 = hardware concurrency, 1 = serial. With
  /// warm_start=false the k snapshot rankings are independent and run
  /// concurrently (the base ranker is capped to one thread per snapshot so
  /// the two levels never oversubscribe); with warm_start=true the chain
  /// stays sequential but the per-snapshot warm-start extraction,
  /// normalization scatter, and accumulation run on the pool, and the base
  /// ranker inherits the full thread budget. Scores are bit-identical at
  /// every setting.
  int threads = 0;
};

/// The paper's ensemble-enabled query-independent ranking framework.
///
/// The citation network is sliced into accumulative temporal snapshots
/// G_1 ⊆ … ⊆ G_k (G_k is the full graph). The base ranker runs on every
/// snapshot; its raw scores are normalized within each snapshot to be
/// size-comparable; an article's final score combines its normalized scores
/// over all snapshots that contain it.
///
/// Why this fixes the recency bias: a 2-year-old article is hopeless in the
/// full network (it has had no time to accumulate citations), but inside the
/// snapshot ending near its publication year it competes only against
/// near-contemporaries. Averaging across snapshots blends "how it stands
/// today" with "how it stood in its own era".
class EnsembleRanker : public Ranker {
 public:
  /// `base` ranks each snapshot; it must outlive this ranker (shared
  /// ownership).
  EnsembleRanker(std::shared_ptr<const Ranker> base,
                 EnsembleOptions options = {});

  /// "ens_<base>" (e.g. "ens_twpr").
  std::string name() const override;

  Result<RankResult> RankImpl(const RankContext& ctx) const override;

  /// Per-snapshot detail for diagnostics and the ablation bench.
  struct SnapshotDetail {
    Year boundary_year;
    size_t num_nodes;
    size_t num_edges;
    int iterations;
  };
  /// Like Rank() but also reports what each snapshot looked like.
  Result<RankResult> RankWithDetails(
      const RankContext& ctx, std::vector<SnapshotDetail>* details) const;

  const EnsembleOptions& options() const { return options_; }
  const Ranker& base() const { return *base_; }

 private:
  /// The zero-copy path: one TemporalCsr build, every snapshot a prefix
  /// view of the sorted parent (or, under options_.materialize_snapshots,
  /// a materialized copy of the same prefix — the bit-identical oracle).
  /// All internal state lives in year-sorted node space; the final scores
  /// are scattered back through the permutation. Taken whenever the base
  /// ranker supports views and the context carries no authors/venues.
  Result<RankResult> RankViaTemporalViews(
      const RankContext& ctx, std::vector<SnapshotDetail>* details,
      const std::vector<Year>& boundaries) const;

  std::shared_ptr<const Ranker> base_;
  EnsembleOptions options_;
};

/// Restricts a paper-author map to the papers of a snapshot; author ids are
/// preserved. `to_parent[i]` gives the parent paper of snapshot paper i.
PaperAuthors RestrictAuthorsToSnapshot(const PaperAuthors& parent,
                                       const std::vector<NodeId>& to_parent);

}  // namespace scholar

#endif  // SCHOLARRANK_ENSEMBLE_ENSEMBLE_RANKER_H_
