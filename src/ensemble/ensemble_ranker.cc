#include "ensemble/ensemble_ranker.h"

#include <cmath>
#include <utility>

#include "graph/time_slicer.h"
#include "util/logging.h"

namespace scholar {

Result<EnsembleCombiner> EnsembleCombinerFromString(const std::string& name) {
  if (name == "mean") return EnsembleCombiner::kMean;
  if (name == "recency") return EnsembleCombiner::kRecencyWeighted;
  return Status::InvalidArgument("unknown combiner '" + name + "'");
}

std::string EnsembleCombinerToString(EnsembleCombiner combiner) {
  switch (combiner) {
    case EnsembleCombiner::kMean:
      return "mean";
    case EnsembleCombiner::kRecencyWeighted:
      return "recency";
  }
  return "unknown";
}

Result<NormalizationScope> NormalizationScopeFromString(
    const std::string& name) {
  if (name == "snapshot") return NormalizationScope::kSnapshot;
  if (name == "cohort") return NormalizationScope::kSliceCohort;
  if (name == "year") return NormalizationScope::kYearCohort;
  return Status::InvalidArgument("unknown normalization scope '" + name +
                                 "'");
}

std::string NormalizationScopeToString(NormalizationScope scope) {
  switch (scope) {
    case NormalizationScope::kSnapshot:
      return "snapshot";
    case NormalizationScope::kSliceCohort:
      return "cohort";
    case NormalizationScope::kYearCohort:
      return "year";
  }
  return "unknown";
}

EnsembleRanker::EnsembleRanker(std::shared_ptr<const Ranker> base,
                               EnsembleOptions options)
    : base_(std::move(base)), options_(options) {
  SCHOLAR_CHECK(base_ != nullptr);
}

std::string EnsembleRanker::name() const { return "ens_" + base_->name(); }

Result<RankResult> EnsembleRanker::RankImpl(const RankContext& ctx) const {
  return RankWithDetails(ctx, nullptr);
}

Result<RankResult> EnsembleRanker::RankWithDetails(
    const RankContext& ctx, std::vector<SnapshotDetail>* details) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.num_slices < 1) {
    return Status::InvalidArgument("num_slices must be >= 1");
  }
  if (options_.combiner == EnsembleCombiner::kRecencyWeighted &&
      (options_.gamma <= 0.0 || options_.gamma > 1.0)) {
    return Status::InvalidArgument("gamma must be in (0, 1]");
  }
  const CitationGraph& g = *ctx.graph;
  if (g.num_nodes() == 0) return RankResult{};

  if (options_.window < 0) {
    return Status::InvalidArgument("window must be >= 0 (0 = all snapshots)");
  }
  SCHOLAR_ASSIGN_OR_RETURN(
      std::vector<Year> boundaries,
      ComputeSliceBoundaries(g, options_.num_slices, options_.partition));
  const size_t k = boundaries.size();

  // First snapshot containing each article: the first boundary at or after
  // its publication year.
  std::vector<size_t> first_snapshot(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Year y = g.year(v);
    size_t f = 0;
    while (f < k && boundaries[f] < y) ++f;
    first_snapshot[v] = f;
  }

  std::vector<double> accumulated(g.num_nodes(), 0.0);
  std::vector<double> weight_sum(g.num_nodes(), 0.0);
  // Raw scores of the previous snapshot, scattered to parent ids; feeds the
  // warm start of the next (accumulative, therefore larger) snapshot.
  std::vector<double> parent_scores;

  RankResult result;
  result.converged = true;
  for (size_t i = 0; i < k; ++i) {
    Snapshot snap = ExtractSnapshot(g, boundaries[i]);
    if (snap.graph.num_nodes() == 0) continue;

    PaperAuthors snap_authors;
    std::vector<int32_t> snap_venues;
    RankContext sub_ctx;
    sub_ctx.graph = &snap.graph;
    sub_ctx.now_year = boundaries[i];
    if (ctx.authors != nullptr) {
      snap_authors = RestrictAuthorsToSnapshot(*ctx.authors, snap.to_parent);
      sub_ctx.authors = &snap_authors;
    }
    if (ctx.venues != nullptr) {
      snap_venues.reserve(snap.to_parent.size());
      for (NodeId parent : snap.to_parent) {
        snap_venues.push_back((*ctx.venues)[parent]);
      }
      sub_ctx.venues = &snap_venues;
    }

    std::vector<double> initial;
    if (options_.warm_start && !parent_scores.empty()) {
      // Nodes new to this snapshot start at the mean previous score.
      initial.resize(snap.graph.num_nodes());
      double total = 0.0;
      size_t known = 0;
      for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
        const double prev = parent_scores[snap.to_parent[s]];
        if (prev > 0.0) {
          total += prev;
          ++known;
        }
      }
      const double fallback =
          known > 0 ? total / static_cast<double>(known)
                    : 1.0 / static_cast<double>(snap.graph.num_nodes());
      for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
        const double prev = parent_scores[snap.to_parent[s]];
        initial[s] = prev > 0.0 ? prev : fallback;
      }
      sub_ctx.initial_scores = &initial;
    }

    SCHOLAR_ASSIGN_OR_RETURN(RankResult sub, base_->Rank(sub_ctx));
    if (options_.warm_start) {
      parent_scores.assign(g.num_nodes(), 0.0);
      for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
        parent_scores[snap.to_parent[s]] = sub.scores[s];
      }
    }
    result.iterations += sub.iterations;
    result.converged = result.converged && sub.converged;
    result.final_residual =
        std::max(result.final_residual, sub.final_residual);
    if (details != nullptr) {
      details->push_back({boundaries[i], snap.graph.num_nodes(),
                          snap.graph.num_edges(), sub.iterations});
    }

    std::vector<double> normalized;
    if (options_.scope == NormalizationScope::kSnapshot) {
      normalized = NormalizeScores(sub.scores, options_.normalizer);
    } else {
      // Normalize each generation separately: gather the snapshot nodes of
      // every group (time slice or publication year), normalize within the
      // group, and scatter back.
      normalized.assign(sub.scores.size(), 0.0);
      const bool by_year = options_.scope == NormalizationScope::kYearCohort;
      const Year min_year = g.min_year();
      const size_t num_groups =
          by_year ? static_cast<size_t>(g.max_year() - min_year) + 1 : k;
      std::vector<std::vector<NodeId>> groups(num_groups);
      for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
        const NodeId parent = snap.to_parent[s];
        const size_t key =
            by_year ? static_cast<size_t>(g.year(parent) - min_year)
                    : first_snapshot[parent];
        groups[key].push_back(s);
      }
      std::vector<double> group_scores;
      for (const std::vector<NodeId>& group : groups) {
        if (group.empty()) continue;
        group_scores.clear();
        for (NodeId s : group) group_scores.push_back(sub.scores[s]);
        std::vector<double> group_norm =
            NormalizeScores(group_scores, options_.normalizer);
        for (size_t t = 0; t < group.size(); ++t) {
          normalized[group[t]] = group_norm[t];
        }
      }
    }
    const double weight =
        options_.combiner == EnsembleCombiner::kMean
            ? 1.0
            : std::pow(options_.gamma, static_cast<double>(k - 1 - i));
    for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
      const NodeId parent = snap.to_parent[s];
      if (options_.window > 0 &&
          i >= first_snapshot[parent] + static_cast<size_t>(options_.window)) {
        continue;  // beyond this article's contemporary window
      }
      accumulated[parent] += weight * normalized[s];
      weight_sum[parent] += weight;
    }
  }

  result.scores.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Every article appears in at least the final snapshot, so the weight
    // sum is positive; the guard keeps degenerate subclasses safe.
    result.scores[v] =
        weight_sum[v] > 0.0 ? accumulated[v] / weight_sum[v] : 0.0;
  }
  return result;
}

PaperAuthors RestrictAuthorsToSnapshot(const PaperAuthors& parent,
                                       const std::vector<NodeId>& to_parent) {
  std::vector<std::vector<AuthorId>> lists(to_parent.size());
  for (size_t i = 0; i < to_parent.size(); ++i) {
    auto span = parent.AuthorsOf(to_parent[i]);
    lists[i].assign(span.begin(), span.end());
  }
  return PaperAuthors::FromLists(lists);
}

}  // namespace scholar
