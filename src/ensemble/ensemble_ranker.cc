#include "ensemble/ensemble_ranker.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "graph/temporal_csr.h"
#include "graph/time_slicer.h"
#include "rank/pagerank.h"
#include "rank/time_weighted_pagerank.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace scholar {
namespace {

/// Chunk size of the per-node ensemble loops (warm-start extraction,
/// scatter, accumulation); fixed so chunked reductions are thread-count
/// independent.
constexpr size_t kNodeGrain = 2048;

/// Everything one snapshot produces before it is folded into the ensemble.
struct SnapshotRun {
  Snapshot snap;
  RankResult sub;
  std::vector<double> normalized;
};

}  // namespace

Result<EnsembleCombiner> EnsembleCombinerFromString(const std::string& name) {
  if (name == "mean") return EnsembleCombiner::kMean;
  if (name == "recency") return EnsembleCombiner::kRecencyWeighted;
  return Status::InvalidArgument("unknown combiner '" + name + "'");
}

std::string EnsembleCombinerToString(EnsembleCombiner combiner) {
  switch (combiner) {
    case EnsembleCombiner::kMean:
      return "mean";
    case EnsembleCombiner::kRecencyWeighted:
      return "recency";
  }
  return "unknown";
}

Result<NormalizationScope> NormalizationScopeFromString(
    const std::string& name) {
  if (name == "snapshot") return NormalizationScope::kSnapshot;
  if (name == "cohort") return NormalizationScope::kSliceCohort;
  if (name == "year") return NormalizationScope::kYearCohort;
  return Status::InvalidArgument("unknown normalization scope '" + name +
                                 "'");
}

std::string NormalizationScopeToString(NormalizationScope scope) {
  switch (scope) {
    case NormalizationScope::kSnapshot:
      return "snapshot";
    case NormalizationScope::kSliceCohort:
      return "cohort";
    case NormalizationScope::kYearCohort:
      return "year";
  }
  return "unknown";
}

EnsembleRanker::EnsembleRanker(std::shared_ptr<const Ranker> base,
                               EnsembleOptions options)
    : base_(std::move(base)), options_(options) {
  SCHOLAR_CHECK(base_ != nullptr);
}

std::string EnsembleRanker::name() const { return "ens_" + base_->name(); }

Result<RankResult> EnsembleRanker::RankImpl(const RankContext& ctx) const {
  return RankWithDetails(ctx, nullptr);
}

Result<RankResult> EnsembleRanker::RankWithDetails(
    const RankContext& ctx, std::vector<SnapshotDetail>* details) const {
  SCHOLAR_RETURN_NOT_OK(ValidateContext(ctx, /*requires_authors=*/false));
  if (options_.num_slices < 1) {
    return Status::InvalidArgument("num_slices must be >= 1");
  }
  if (options_.combiner == EnsembleCombiner::kRecencyWeighted &&
      (options_.gamma <= 0.0 || options_.gamma > 1.0)) {
    return Status::InvalidArgument("gamma must be in (0, 1]");
  }
  const CitationGraph& g = *ctx.graph;
  if (g.num_nodes() == 0) return RankResult{};

  if (options_.window < 0) {
    return Status::InvalidArgument("window must be >= 0 (0 = all snapshots)");
  }
  SCHOLAR_ASSIGN_OR_RETURN(
      std::vector<Year> boundaries,
      ComputeSliceBoundaries(g, options_.num_slices, options_.partition));
  const size_t k = boundaries.size();

  // Zero-copy path: when the base ranker can consume snapshot views, all k
  // snapshots share one time-prefix CSR instead of k materialized graph
  // copies. Authors/venues stay on the legacy path (no view-capable base
  // consumes them, and their restriction maps are id-space specific).
  if (base_->SupportsSnapshotViews() && ctx.authors == nullptr &&
      ctx.venues == nullptr) {
    return RankViaTemporalViews(ctx, details, boundaries);
  }

  const size_t n = g.num_nodes();
  const size_t workers = EffectiveThreads(options_.threads, ctx);
  // The ensemble owns its pool outright: scratch.PoolFor() rebuilds its pool
  // whenever a base ranker asks for a different width, so lending scratch to
  // base rankers while also borrowing its pool would dangle.
  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();
  // In the sequential (warm-start) mode every base-ranker call reuses this
  // scratch's buffers instead of reallocating per snapshot.
  PowerIterationScratch scratch;

  // First snapshot containing each article: the first boundary at or after
  // its publication year. boundaries is sorted ascending, so this is one
  // binary search per node.
  std::vector<size_t> first_snapshot(n, 0);
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      first_snapshot[v] = static_cast<size_t>(
          std::lower_bound(boundaries.begin(), boundaries.end(), g.year(v)) -
          boundaries.begin());
    }
  });

  std::vector<double> accumulated(n, 0.0);
  std::vector<double> weight_sum(n, 0.0);
  // Raw scores of the previous snapshot, scattered to parent ids; feeds the
  // warm start of the next (accumulative, therefore larger) snapshot.
  std::vector<double> parent_scores;

  RankResult result;
  result.converged = true;

  // Ranks one extracted snapshot and normalizes its scores. Runs entirely on
  // the calling thread; inner parallelism is bounded by `sub_max_threads`
  // (the base ranker clamp) and `norm_pool` (the cohort-normalization pool).
  auto run_snapshot = [&](size_t i, SnapshotRun* run,
                          const std::vector<double>* initial,
                          int sub_max_threads,
                          PowerIterationScratch* sub_scratch,
                          ThreadPool* norm_pool) -> Status {
    const Snapshot& snap = run->snap;
    PaperAuthors snap_authors;
    std::vector<int32_t> snap_venues;
    RankContext sub_ctx;
    sub_ctx.graph = &snap.graph;
    sub_ctx.now_year = boundaries[i];
    sub_ctx.max_threads = sub_max_threads;
    sub_ctx.scratch = sub_scratch;
    if (ctx.authors != nullptr) {
      snap_authors = RestrictAuthorsToSnapshot(*ctx.authors, snap.to_parent);
      sub_ctx.authors = &snap_authors;
    }
    if (ctx.venues != nullptr) {
      snap_venues.reserve(snap.to_parent.size());
      for (NodeId parent : snap.to_parent) {
        snap_venues.push_back((*ctx.venues)[parent]);
      }
      sub_ctx.venues = &snap_venues;
    }
    if (initial != nullptr) sub_ctx.initial_scores = initial;

    SCHOLAR_ASSIGN_OR_RETURN(run->sub, base_->Rank(sub_ctx));

    if (options_.scope == NormalizationScope::kSnapshot) {
      run->normalized = NormalizeScores(run->sub.scores, options_.normalizer);
      return Status::OK();
    }
    // Normalize each generation separately: gather the snapshot nodes of
    // every group (time slice or publication year), normalize within the
    // group, and scatter back. Groups touch disjoint slots of normalized,
    // so whole groups parallelize safely.
    run->normalized.assign(run->sub.scores.size(), 0.0);
    const bool by_year = options_.scope == NormalizationScope::kYearCohort;
    const Year min_year = g.min_year();
    const size_t num_groups =
        by_year ? static_cast<size_t>(g.max_year() - min_year) + 1 : k;
    std::vector<std::vector<NodeId>> groups(num_groups);
    for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
      const NodeId parent = snap.to_parent[s];
      const size_t key = by_year
                             ? static_cast<size_t>(g.year(parent) - min_year)
                             : first_snapshot[parent];
      groups[key].push_back(s);
    }
    ParallelFor(norm_pool, num_groups, 1, [&](size_t gb, size_t ge) {
      std::vector<double> group_scores;
      for (size_t gi = gb; gi < ge; ++gi) {
        const std::vector<NodeId>& group = groups[gi];
        if (group.empty()) continue;
        group_scores.clear();
        for (NodeId s : group) group_scores.push_back(run->sub.scores[s]);
        std::vector<double> group_norm =
            NormalizeScores(group_scores, options_.normalizer);
        for (size_t t = 0; t < group.size(); ++t) {
          run->normalized[group[t]] = group_norm[t];
        }
      }
    });
    return Status::OK();
  };

  // Folds one finished snapshot into the running totals, then releases its
  // memory. Called in snapshot-index order in both execution modes, so the
  // floating-point accumulation order — and therefore the scores — is
  // independent of the thread count.
  auto accumulate = [&](size_t i, SnapshotRun* run) {
    const Snapshot& snap = run->snap;
    result.iterations += run->sub.iterations;
    result.converged = result.converged && run->sub.converged;
    result.final_residual =
        std::max(result.final_residual, run->sub.final_residual);
    if (details != nullptr) {
      details->push_back({boundaries[i], snap.graph.num_nodes(),
                          snap.graph.num_edges(), run->sub.iterations});
    }
    const double weight =
        options_.combiner == EnsembleCombiner::kMean
            ? 1.0
            : std::pow(options_.gamma, static_cast<double>(k - 1 - i));
    const std::vector<double>& normalized = run->normalized;
    // Distinct snapshot nodes map to distinct parents, so the scatter is
    // race-free.
    ParallelFor(pool, snap.graph.num_nodes(), kNodeGrain,
                [&](size_t begin, size_t end) {
      for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
        const NodeId parent = snap.to_parent[s];
        if (options_.window > 0 &&
            i >= first_snapshot[parent] +
                     static_cast<size_t>(options_.window)) {
          continue;  // beyond this article's contemporary window
        }
        accumulated[parent] += weight * normalized[s];
        weight_sum[parent] += weight;
      }
    });
    *run = SnapshotRun{};
  };

  const bool parallel_snapshots =
      !options_.warm_start && workers > 1 && k > 1;
  if (parallel_snapshots) {
    // Without warm starts the k snapshot rankings are independent: extract
    // and rank them concurrently (base ranker clamped to one thread each so
    // the two levels never oversubscribe), then fold in index order.
    std::vector<SnapshotRun> runs(k);
    std::vector<Status> statuses(k);
    ParallelForChunks(pool, k, 1, [&](size_t c, size_t, size_t) {
      // Legacy path: the base ranker cannot consume views.
      runs[c].snap = ExtractSnapshot(g, boundaries[c]);  // NOLINT(materialize-snapshot)
      if (runs[c].snap.graph.num_nodes() == 0) return;
      statuses[c] = run_snapshot(c, &runs[c], /*initial=*/nullptr,
                                 /*sub_max_threads=*/1,
                                 /*sub_scratch=*/nullptr,
                                 /*norm_pool=*/nullptr);
    });
    for (size_t i = 0; i < k; ++i) {
      SCHOLAR_RETURN_NOT_OK(statuses[i]);
      if (runs[i].snap.graph.num_nodes() == 0) continue;
      accumulate(i, &runs[i]);
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      SnapshotRun run;
      // Legacy path: the base ranker cannot consume views.
      run.snap = ExtractSnapshot(g, boundaries[i]);  // NOLINT(materialize-snapshot)
      const size_t sn = run.snap.graph.num_nodes();
      if (sn == 0) continue;

      std::vector<double> initial;
      const std::vector<double>* initial_ptr = nullptr;
      if (options_.warm_start && !parent_scores.empty()) {
        // Nodes new to this snapshot start at the mean previous score. The
        // mean is a chunked reduction combined in chunk order, so it is
        // exact across thread counts.
        initial.resize(sn);
        const size_t chunks = ChunkCount(sn, kNodeGrain);
        std::vector<double> part_total(chunks, 0.0);
        std::vector<size_t> part_known(chunks, 0);
        ParallelForChunks(pool, sn, kNodeGrain,
                          [&](size_t chunk, size_t begin, size_t end) {
          double total = 0.0;
          size_t known = 0;
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            const double prev = parent_scores[run.snap.to_parent[s]];
            if (prev > 0.0) {
              total += prev;
              ++known;
            }
          }
          part_total[chunk] = total;
          part_known[chunk] = known;
        });
        double total = 0.0;
        size_t known = 0;
        for (size_t c = 0; c < chunks; ++c) {
          total += part_total[c];
          known += part_known[c];
        }
        const double fallback = known > 0
                                    ? total / static_cast<double>(known)
                                    : 1.0 / static_cast<double>(sn);
        ParallelFor(pool, sn, kNodeGrain, [&](size_t begin, size_t end) {
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            const double prev = parent_scores[run.snap.to_parent[s]];
            initial[s] = prev > 0.0 ? prev : fallback;
          }
        });
        initial_ptr = &initial;
      }

      SCHOLAR_RETURN_NOT_OK(run_snapshot(i, &run, initial_ptr,
                                         ctx.max_threads, &scratch, pool));
      if (options_.warm_start) {
        parent_scores.assign(n, 0.0);
        ParallelFor(pool, sn, kNodeGrain, [&](size_t begin, size_t end) {
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            parent_scores[run.snap.to_parent[s]] = run.sub.scores[s];
          }
        });
      }
      accumulate(i, &run);
    }
  }

  result.scores.resize(n);
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      // Every article appears in at least the final snapshot, so the weight
      // sum is positive; the guard keeps degenerate subclasses safe.
      result.scores[v] =
          weight_sum[v] > 0.0 ? accumulated[v] / weight_sum[v] : 0.0;
    }
  });
  return result;
}

Result<RankResult> EnsembleRanker::RankViaTemporalViews(
    const RankContext& ctx, std::vector<SnapshotDetail>* details,
    const std::vector<Year>& boundaries) const {
  const CitationGraph& g = *ctx.graph;
  const size_t n = g.num_nodes();
  const size_t k = boundaries.size();
  const size_t workers = EffectiveThreads(options_.threads, ctx);
  std::unique_ptr<ThreadPool> owned_pool =
      workers > 1 ? std::make_unique<ThreadPool>(workers - 1) : nullptr;
  ThreadPool* pool = owned_pool.get();
  PowerIterationScratch scratch;

  // One index serves all k snapshots. TWPR's decay weights are cached once
  // on the sorted parent and shared read-only by every snapshot rank (the
  // cache is thread-safe, so the parallel mode shares it too).
  const TemporalCsr tcsr(g);
  const CitationGraph& sg = tcsr.sorted_graph();
  TwprWeightCache twpr_cache;

  // Everything below runs in year-sorted node space, where snapshot i is
  // the id prefix [0, sn_i) — no per-snapshot id maps. Under
  // materialize_snapshots the same prefixes are extracted from the sorted
  // graph (identity id maps), so both modes execute identical arithmetic in
  // identical order: bit-identical scores, which is what makes that mode
  // the oracle.
  const bool materialize = options_.materialize_snapshots;

  std::vector<size_t> first_snapshot(n, 0);
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      first_snapshot[v] = static_cast<size_t>(
          std::lower_bound(boundaries.begin(), boundaries.end(), sg.year(v)) -
          boundaries.begin());
    }
  });

  std::vector<double> accumulated(n, 0.0);
  std::vector<double> weight_sum(n, 0.0);
  // Raw scores of the previous snapshot in sorted space; because snapshots
  // are nested prefixes, the warm start of the next snapshot is a direct
  // prefix read — no scatter/gather through id maps.
  std::vector<double> prev_scores;

  RankResult result;
  result.converged = true;

  struct ViewRun {
    SnapshotView view;     // zero-copy mode
    Snapshot snap;         // oracle mode (materialize_snapshots)
    size_t num_nodes = 0;
    RankResult sub;
    std::vector<double> normalized;
  };

  auto make_run = [&](size_t i, ViewRun* run) {
    if (materialize) {
      // The oracle: the same time prefix, materialized from the sorted
      // graph so its node numbering matches sorted space.
      run->snap = ExtractSnapshot(sg, boundaries[i]);  // NOLINT(materialize-snapshot)
      run->num_nodes = run->snap.graph.num_nodes();
    } else {
      run->view = tcsr.MakeView(boundaries[i]);
      run->num_nodes = run->view.num_nodes();
    }
  };

  // Ranks one snapshot and normalizes its scores; sorted-space analogue of
  // the legacy run_snapshot (authors/venues never reach this path).
  auto run_snapshot = [&](size_t i, ViewRun* run,
                          const std::vector<double>* initial,
                          int sub_max_threads,
                          PowerIterationScratch* sub_scratch,
                          ThreadPool* norm_pool) -> Status {
    RankContext sub_ctx;
    if (materialize) {
      sub_ctx.graph = &run->snap.graph;
    } else {
      sub_ctx.view = &run->view;
      sub_ctx.twpr_cache = &twpr_cache;
    }
    sub_ctx.now_year = boundaries[i];
    sub_ctx.max_threads = sub_max_threads;
    sub_ctx.scratch = sub_scratch;
    if (initial != nullptr) sub_ctx.initial_scores = initial;

    SCHOLAR_ASSIGN_OR_RETURN(run->sub, base_->Rank(sub_ctx));

    if (options_.scope == NormalizationScope::kSnapshot) {
      run->normalized = NormalizeScores(run->sub.scores, options_.normalizer);
      return Status::OK();
    }
    run->normalized.assign(run->sub.scores.size(), 0.0);
    const bool by_year = options_.scope == NormalizationScope::kYearCohort;
    const Year min_year = sg.min_year();
    const size_t num_groups =
        by_year ? static_cast<size_t>(sg.max_year() - min_year) + 1 : k;
    std::vector<std::vector<NodeId>> groups(num_groups);
    for (NodeId s = 0; s < run->num_nodes; ++s) {
      const size_t key = by_year
                             ? static_cast<size_t>(sg.year(s) - min_year)
                             : first_snapshot[s];
      groups[key].push_back(s);
    }
    ParallelFor(norm_pool, num_groups, 1, [&](size_t gb, size_t ge) {
      std::vector<double> group_scores;
      for (size_t gi = gb; gi < ge; ++gi) {
        const std::vector<NodeId>& group = groups[gi];
        if (group.empty()) continue;
        group_scores.clear();
        for (NodeId s : group) group_scores.push_back(run->sub.scores[s]);
        std::vector<double> group_norm =
            NormalizeScores(group_scores, options_.normalizer);
        for (size_t t = 0; t < group.size(); ++t) {
          run->normalized[group[t]] = group_norm[t];
        }
      }
    });
    return Status::OK();
  };

  // Folds one finished snapshot into the running totals. Called in
  // snapshot-index order in both execution modes (fixed fp order).
  auto accumulate = [&](size_t i, ViewRun* run) {
    result.iterations += run->sub.iterations;
    result.converged = result.converged && run->sub.converged;
    result.final_residual =
        std::max(result.final_residual, run->sub.final_residual);
    if (details != nullptr) {
      const size_t edges = materialize ? run->snap.graph.num_edges()
                                       : run->view.CountEdges();
      details->push_back(
          {boundaries[i], run->num_nodes, edges, run->sub.iterations});
    }
    const double weight =
        options_.combiner == EnsembleCombiner::kMean
            ? 1.0
            : std::pow(options_.gamma, static_cast<double>(k - 1 - i));
    const std::vector<double>& normalized = run->normalized;
    ParallelFor(pool, run->num_nodes, kNodeGrain,
                [&](size_t begin, size_t end) {
      for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
        if (options_.window > 0 &&
            i >= first_snapshot[s] + static_cast<size_t>(options_.window)) {
          continue;  // beyond this article's contemporary window
        }
        accumulated[s] += weight * normalized[s];
        weight_sum[s] += weight;
      }
    });
    *run = ViewRun{};
  };

  const bool parallel_snapshots =
      !options_.warm_start && workers > 1 && k > 1;
  if (parallel_snapshots) {
    std::vector<ViewRun> runs(k);
    std::vector<Status> statuses(k);
    ParallelForChunks(pool, k, 1, [&](size_t c, size_t, size_t) {
      make_run(c, &runs[c]);
      if (runs[c].num_nodes == 0) return;
      statuses[c] = run_snapshot(c, &runs[c], /*initial=*/nullptr,
                                 /*sub_max_threads=*/1,
                                 /*sub_scratch=*/nullptr,
                                 /*norm_pool=*/nullptr);
    });
    for (size_t i = 0; i < k; ++i) {
      SCHOLAR_RETURN_NOT_OK(statuses[i]);
      if (runs[i].num_nodes == 0) continue;
      accumulate(i, &runs[i]);
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      ViewRun run;
      make_run(i, &run);
      const size_t sn = run.num_nodes;
      if (sn == 0) continue;

      std::vector<double> initial;
      const std::vector<double>* initial_ptr = nullptr;
      if (options_.warm_start && !prev_scores.empty()) {
        // Nodes new to this snapshot start at the mean previous score; the
        // mean is a chunk-ordered reduction, so it is exact across thread
        // counts (same arithmetic as the legacy path on identity graphs).
        initial.resize(sn);
        const size_t chunks = ChunkCount(sn, kNodeGrain);
        std::vector<double> part_total(chunks, 0.0);
        std::vector<size_t> part_known(chunks, 0);
        ParallelForChunks(pool, sn, kNodeGrain,
                          [&](size_t chunk, size_t begin, size_t end) {
          double total = 0.0;
          size_t known = 0;
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            const double prev = prev_scores[s];
            if (prev > 0.0) {
              total += prev;
              ++known;
            }
          }
          part_total[chunk] = total;
          part_known[chunk] = known;
        });
        double total = 0.0;
        size_t known = 0;
        for (size_t c = 0; c < chunks; ++c) {
          total += part_total[c];
          known += part_known[c];
        }
        const double fallback = known > 0
                                    ? total / static_cast<double>(known)
                                    : 1.0 / static_cast<double>(sn);
        ParallelFor(pool, sn, kNodeGrain, [&](size_t begin, size_t end) {
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            const double prev = prev_scores[s];
            initial[s] = prev > 0.0 ? prev : fallback;
          }
        });
        initial_ptr = &initial;
      }

      SCHOLAR_RETURN_NOT_OK(run_snapshot(i, &run, initial_ptr,
                                         ctx.max_threads, &scratch, pool));
      if (options_.warm_start) {
        prev_scores.assign(n, 0.0);
        ParallelFor(pool, sn, kNodeGrain, [&](size_t begin, size_t end) {
          for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
            prev_scores[s] = run.sub.scores[s];
          }
        });
      }
      accumulate(i, &run);
    }
  }

  // Scatter the sorted-space totals back to parent node ids (a bijection,
  // so the parallel writes are race-free).
  result.scores.resize(n);
  ParallelFor(pool, n, kNodeGrain, [&](size_t begin, size_t end) {
    for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
      result.scores[tcsr.ToParent(s)] =
          weight_sum[s] > 0.0 ? accumulated[s] / weight_sum[s] : 0.0;
    }
  });
  return result;
}

PaperAuthors RestrictAuthorsToSnapshot(const PaperAuthors& parent,
                                       const std::vector<NodeId>& to_parent) {
  std::vector<std::vector<AuthorId>> lists(to_parent.size());
  for (size_t i = 0; i < to_parent.size(); ++i) {
    auto span = parent.AuthorsOf(to_parent[i]);
    lists[i].assign(span.begin(), span.end());
  }
  return PaperAuthors::FromLists(lists);
}

}  // namespace scholar
