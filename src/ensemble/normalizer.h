#ifndef SCHOLARRANK_ENSEMBLE_NORMALIZER_H_
#define SCHOLARRANK_ENSEMBLE_NORMALIZER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace scholar {

/// How raw per-snapshot scores are made comparable across snapshots of very
/// different sizes before the ensemble combines them.
enum class NormalizerKind {
  /// Divide by the maximum score: best article -> 1.
  kMax,
  /// Divide by the sum (scores become a distribution). Sensitive to
  /// snapshot size; kept mainly for the ablation study.
  kSum,
  /// Replace each score by its midrank percentile in (0, 1]; best -> 1,
  /// ties share the average percentile of their positions. Scale-free and
  /// robust to the heavy-tailed score distributions PageRank produces (the
  /// huge exact-tie group of uncited articles maps to one shared value
  /// instead of an arbitrary spread). The paper-faithful default.
  kRankPercentile,
  /// Standard z-score: (x - mean) / stddev. Can be negative.
  kZScore,
};

/// Parses "max" / "sum" / "percentile" / "zscore".
Result<NormalizerKind> NormalizerKindFromString(const std::string& name);
std::string NormalizerKindToString(NormalizerKind kind);

/// Applies `kind` to `scores`. Degenerate inputs (all-equal, all-zero,
/// empty) are handled gracefully: kMax/kSum leave zeros, kZScore yields
/// zeros, kRankPercentile still produces the deterministic percentile grid.
std::vector<double> NormalizeScores(const std::vector<double>& scores,
                                    NormalizerKind kind);

}  // namespace scholar

#endif  // SCHOLARRANK_ENSEMBLE_NORMALIZER_H_
