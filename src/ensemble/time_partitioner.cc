#include "ensemble/time_partitioner.h"

#include <algorithm>
#include <map>
#include <string>

namespace scholar {

Result<std::vector<Year>> ComputeSliceBoundaries(const CitationGraph& graph,
                                                 int num_slices,
                                                 PartitionStrategy strategy) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  if (num_slices < 1) {
    return Status::InvalidArgument("num_slices must be >= 1, got " +
                                   std::to_string(num_slices));
  }
  const Year lo = graph.min_year();
  const Year hi = graph.max_year();

  std::vector<Year> boundaries;
  if (strategy == PartitionStrategy::kEqualSpan) {
    const double span = static_cast<double>(hi - lo + 1);
    for (int i = 1; i <= num_slices; ++i) {
      Year b = lo - 1 +
               static_cast<Year>(span * static_cast<double>(i) / num_slices);
      // Clamp into [lo, hi]: a boundary before the first publication year
      // would produce a useless empty snapshot.
      boundaries.push_back(std::clamp(b, lo, hi));
    }
  } else {
    // Cumulative article counts per distinct year.
    std::map<Year, size_t> per_year;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) ++per_year[graph.year(u)];
    const double total = static_cast<double>(graph.num_nodes());
    double cumulative = 0.0;
    int next_target = 1;
    for (const auto& [year, count] : per_year) {
      cumulative += static_cast<double>(count);
      while (next_target <= num_slices &&
             cumulative + 1e-9 >= total * next_target / num_slices) {
        boundaries.push_back(year);
        ++next_target;
      }
    }
    if (boundaries.empty() || boundaries.back() != hi) {
      boundaries.push_back(hi);
    }
  }

  // Deduplicate (coarse year grids can produce repeats) while keeping order.
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  boundaries.back() = hi;
  return boundaries;
}

}  // namespace scholar
