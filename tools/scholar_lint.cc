// scholar_lint: project-specific static checks the compiler cannot express.
//
// A self-contained token-level C++ checker (no libclang dependency) run
// over src/ and tools/ as a ctest (label: analysis). It enforces the
// project contracts that back the paper's headline claims — bit-identical
// parallel scores and race-free serving — at the source level:
//
//   mutex-guard    a class declaring a mutex member must annotate at
//                  least one member with GUARDED_BY; an unannotated mutex
//                  is invisible to -Wthread-safety.
//   float-compare  no == / != on floating-point values in src/rank/ and
//                  src/ensemble/ (the bit-identity contract makes
//                  accidental epsilon-free compares a real bug class).
//   unseeded-rng   no rand()/srand()/std::mt19937/std::random_device
//                  outside util/rng; all randomness flows through
//                  explicitly seeded scholar::Rng for reproducibility.
//   raw-stdout     no std::cout / printf-family output in src/; library
//                  code logs through util/logging so severity filtering
//                  and redirection keep working.
//   include-order  a .cc file's own header is its first #include, which
//                  proves the header is self-contained.
//   materialize-snapshot
//                  no ExtractSnapshot() calls outside the time-slicer
//                  itself; ranking code must consume zero-copy
//                  TemporalCsr/SnapshotView prefixes. Materializing costs
//                  O(V+E) per snapshot and is reserved for oracle checks
//                  and the legacy fallback, which say so with a
//                  marker: NOLINT(materialize-snapshot).
//   include-layering
//                  the module DAG util -> graph -> {data, rank} ->
//                  {ensemble, eval} -> core -> stream -> serve -> cli
//                  admits no back-edges or same-layer edges; an #include
//                  may only name a strictly lower layer. Keeps the
//                  untrusted-input surface (parsers, serve) from leaking
//                  upward and the build graph acyclic.
//   unchecked-read no raw memcpy() / mutable reinterpret_cast in the
//                  files that decode untrusted bytes; every conversion
//                  goes through the bounds-checked util/byte_reader.h
//                  (whose own two low-level sites are the
//                  sanctioned NOLINT(unchecked-read) exceptions).
//   raw-intrinsics no _mm_*/_mm256_*/_mm512_* calls, __m128/__m256/__m512
//                  vector types, or *intrin.h includes outside
//                  src/rank/kernel/ — SIMD lives behind the iteration
//                  engine's dispatch seam, next to the scalar oracle that
//                  proves it bit-identical.
//   stale-nolint   a NOLINT(rule) naming one of the rules above that
//                  suppresses nothing on its line is itself a violation:
//                  dead suppressions hide future regressions at that line
//                  and rot the audit trail. Suppressions naming other
//                  tools' rules (e.g. scholar_analyze's) are not audited
//                  here — the analyzer runs the same audit itself over
//                  its parallel-pack rules (shared-mutation,
//                  dangling-capture, atomic-confinement,
//                  guard-consistency), so every suppression in the repo
//                  is policed by exactly one tool.
//
// Diagnostics are `file:line: rule: message`, exit status is nonzero when
// any violation survives. A `// NOLINT` comment suppresses every rule on
// its line; `// NOLINT(rule-a,rule-b)` suppresses just those rules. The
// marker must lead its comment — a doc sentence that merely *mentions*
// NOLINT(...) mid-prose is not a suppression.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Include {
  std::string path;  // without the <> or "" delimiters
  bool quoted;       // "..." vs <...>
  int line;
};

/// Per-line lint suppressions parsed out of comments. An empty rule set
/// means "suppress everything on this line".
using Suppressions = std::map<int, std::set<std::string>>;

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  Suppressions suppressions;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Records NOLINT / NOLINT(rule-a,rule-b) markers found in one comment.
/// The marker must lead the comment: only delimiter and decoration
/// characters may precede it, so prose that mentions NOLINT(...) is not
/// accidentally treated as (or audited as) a suppression.
void ScanCommentForNolint(const std::string& comment, int line,
                          Suppressions* out) {
  size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  for (size_t i = 0; i < pos; ++i) {
    char c = comment[i];
    if (c != '/' && c != '*' && c != '!' && c != '<' && c != ' ' &&
        c != '\t') {
      return;  // mid-comment mention, not a marker
    }
  }
  size_t after = pos + 6;  // strlen("NOLINT")
  std::set<std::string> rules;
  if (after < comment.size() && comment[after] == '(') {
    size_t close = comment.find(')', after);
    if (close != std::string::npos) {
      std::string list = comment.substr(after + 1, close - after - 1);
      std::string rule;
      std::istringstream ss(list);
      while (std::getline(ss, rule, ',')) {
        // Trim surrounding whitespace.
        size_t b = rule.find_first_not_of(" \t");
        size_t e = rule.find_last_not_of(" \t");
        if (b != std::string::npos) rules.insert(rule.substr(b, e - b + 1));
      }
    }
  }
  auto it = out->find(line);
  if (it == out->end()) {
    (*out)[line] = rules;
  } else if (!it->second.empty()) {
    if (rules.empty()) {
      it->second.clear();  // bare NOLINT wins: suppress all
    } else {
      it->second.insert(rules.begin(), rules.end());
    }
  }
}

/// Tokenizes one C++ source file. Comments and preprocessor directives are
/// consumed here (comments feed the NOLINT table, #include lines feed the
/// include list) so the rule passes below see only real code tokens.
LexedFile Lex(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](size_t k) -> char { return i + k < n ? text[i + k] : '\0'; };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      ScanCommentForNolint(text.substr(i, end - i), line, &out.suppressions);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = text.substr(i, end - i);
      ScanCommentForNolint(body, line, &out.suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + 2;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive: consume to end of line (honoring \-splices);
    // record #include targets.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      size_t d = j;
      while (d < n && IsIdentChar(text[d])) ++d;
      const std::string directive = text.substr(j, d - j);
      if (directive == "include") {
        size_t p = d;
        while (p < n && (text[p] == ' ' || text[p] == '\t')) ++p;
        if (p < n && (text[p] == '"' || text[p] == '<')) {
          const char closer = text[p] == '"' ? '"' : '>';
          size_t close = text.find(closer, p + 1);
          if (close != std::string::npos) {
            out.includes.push_back(
                {text.substr(p + 1, close - p - 1), text[p] == '"', line});
          }
        }
      }
      // Skip the rest of the directive, including spliced lines. A
      // trailing `// ...` comment is still scanned for NOLINT so a
      // suppression works on an #include line (include-layering needs
      // that) — only the comment part, so the directive text itself can
      // never read as a marker.
      const int directive_line = line;
      size_t comment_at = std::string::npos;
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '/' && peek(1) == '/' &&
            comment_at == std::string::npos) {
          comment_at = i;
        }
        ++i;
      }
      if (comment_at != std::string::npos) {
        ScanCommentForNolint(text.substr(comment_at, i - comment_at),
                             directive_line, &out.suppressions);
      }
      continue;
    }
    at_line_start = false;
    // String literal (incl. raw strings).
    if (c == '"' ||
        (c == 'R' && peek(1) == '"' &&
         (out.tokens.empty() || out.tokens.back().text != "\"" ))) {
      if (c == 'R' && peek(1) == '"') {
        // Raw string: R"delim( ... )delim"
        size_t open = text.find('(', i + 2);
        if (open == std::string::npos) {  // malformed; treat as ident 'R'
          out.tokens.push_back({TokKind::kIdent, "R", line});
          ++i;
          continue;
        }
        const std::string delim = text.substr(i + 2, open - (i + 2));
        const std::string closer = ")" + delim + "\"";
        size_t end = text.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        const std::string body = text.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.tokens.push_back({TokKind::kString, "<raw-string>", line});
        i = end == n ? n : end + closer.size();
        continue;
      }
      size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back({TokKind::kString, "<string>", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back({TokKind::kChar, "<char>", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (pp-number: digits, idents chars, '.', exponent signs, and
    // C++14 digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t j = i;
      while (j < n) {
        char d = text[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; fuse the two-char operators the rules care about.
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "::", "->",
                                     "&&", "||", "++", "--", "+=", "-=",
                                     "*=", "/=", "<<", ">>"};
    std::string p(1, c);
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        p = op;
        break;
      }
    }
    out.tokens.push_back({TokKind::kPunct, p, line});
    i += p.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

class Reporter {
 public:
  explicit Reporter(const LexedFile& file) : file_(file) {}

  void Report(int line, const std::string& rule, const std::string& message) {
    auto it = file_.suppressions.find(line);
    if (it != file_.suppressions.end() &&
        (it->second.empty() || it->second.count(rule) > 0)) {
      used_[line].insert(rule);  // the suppression earned its keep
      return;  // NOLINT'd
    }
    diagnostics_.push_back({file_.path, line, rule, message});
  }

  /// True when a diagnostic of `rule` was suppressed at `line`. Valid only
  /// after every rule pass ran — which is why stale-nolint runs last.
  bool WasSuppressed(int line, const std::string& rule) const {
    auto it = used_.find(line);
    return it != used_.end() && it->second.count(rule) > 0;
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  const LexedFile& file_;
  std::vector<Diagnostic> diagnostics_;
  std::map<int, std::set<std::string>> used_;  // line -> rules suppressed
};

/// True when `path` contains directory component sequence `needle`
/// ("src/rank/"), anchored at the start or after a '/'.
bool PathContains(const std::string& path, const std::string& needle) {
  size_t pos = path.find(needle);
  while (pos != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    pos = path.find(needle, pos + 1);
  }
  return false;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Stem(const std::string& path) {
  std::string base = Basename(path);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// ---------------------------------------------------------------------------
// Rule: mutex-guard
// ---------------------------------------------------------------------------

/// A class or struct that declares a mutex member (std::mutex or
/// scholar::Mutex) must carry at least one GUARDED_BY / PT_GUARDED_BY
/// member annotation — otherwise the mutex protects nothing the
/// thread-safety analysis can check.
void CheckMutexGuard(const LexedFile& f, Reporter* rep) {
  struct ClassCtx {
    int depth;                    // brace depth of the class body
    std::vector<int> mutex_lines; // direct mutex member declarations
    bool has_guard = false;
  };
  const std::vector<Token>& t = f.tokens;
  std::vector<ClassCtx> stack;
  int depth = 0;
  bool next_brace_is_class = false;

  auto ident = [&](size_t i, const char* s) {
    return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
  };
  auto punct = [&](size_t i, const char* s) {
    return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
  };

  for (size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
        if (next_brace_is_class) {
          stack.push_back(ClassCtx{depth, {}, false});
          next_brace_is_class = false;
        }
      } else if (tok.text == "}") {
        if (!stack.empty() && stack.back().depth == depth) {
          const ClassCtx& ctx = stack.back();
          if (!ctx.has_guard) {
            for (int ln : ctx.mutex_lines) {
              rep->Report(ln, "mutex-guard",
                          "class declares a mutex member but annotates no "
                          "member with GUARDED_BY; state this mutex protects "
                          "must be annotated (util/thread_annotations.h)");
            }
          }
          stack.pop_back();
        }
        --depth;
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    // Class-body detection: `class`/`struct` ... `{` with no intervening
    // `;` (forward declaration) or `)` (keyword inside a parameter list).
    // An ALL_CAPS annotation macro's argument list — as in
    // `class CAPABILITY("mutex") Mutex {` — is skipped wholesale so its
    // closing paren does not read as a parameter list.
    if ((tok.text == "class" || tok.text == "struct") &&
        !(i > 0 && ident(i - 1, "enum"))) {
      for (size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
        if (t[j].kind == TokKind::kIdent && punct(j + 1, "(") &&
            t[j].text.size() >= 2 &&
            t[j].text.find_first_not_of(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789") ==
                std::string::npos) {
          int nest = 0;
          size_t k = j + 1;
          for (; k < t.size() && k < j + 64; ++k) {
            if (punct(k, "(")) ++nest;
            else if (punct(k, ")") && --nest == 0) break;
          }
          j = k;
          continue;
        }
        if (punct(j, ";") || punct(j, ")")) break;  // fwd decl / param
        if (punct(j, "{")) {
          next_brace_is_class = true;
          break;
        }
      }
      continue;
    }

    const bool in_class = !stack.empty() && stack.back().depth == depth;
    if (!in_class) continue;

    if (tok.text == "GUARDED_BY" || tok.text == "PT_GUARDED_BY") {
      stack.back().has_guard = true;
      continue;
    }
    // `std :: mutex NAME ;` — a direct member (template args like
    // lock_guard<std::mutex> are excluded by the preceding '<').
    if (tok.text == "std" && punct(i + 1, "::") &&
        (ident(i + 2, "mutex") || ident(i + 2, "recursive_mutex") ||
         ident(i + 2, "shared_mutex")) &&
        !(i > 0 && punct(i - 1, "<")) && i + 4 < t.size() &&
        t[i + 3].kind == TokKind::kIdent && punct(i + 4, ";")) {
      stack.back().mutex_lines.push_back(tok.line);
      continue;
    }
    // `Mutex NAME ;` — the annotated scholar::Mutex.
    if (tok.text == "Mutex" && !(i > 0 && punct(i - 1, "<")) &&
        !(i > 0 && punct(i - 1, "::")) && i + 2 < t.size() &&
        t[i + 1].kind == TokKind::kIdent && punct(i + 2, ";")) {
      stack.back().mutex_lines.push_back(tok.line);
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-compare
// ---------------------------------------------------------------------------

bool IsFloatLiteral(const std::string& s) {
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return false;  // hex (incl. hex floats — rare enough to ignore)
  }
  if (s.find('.') != std::string::npos) return true;
  return s.find('e') != std::string::npos || s.find('E') != std::string::npos;
}

/// In src/rank/ and src/ensemble/, flags == / != where either operand is a
/// floating literal or an identifier the file declares as float/double.
/// Exact comparison of scores is occasionally *intended* (deterministic
/// tie-breaks under the bit-identity contract) — those sites say so
/// with NOLINT(float-compare).
void CheckFloatCompare(const LexedFile& f, Reporter* rep) {
  if (!PathContains(f.path, "src/rank/") &&
      !PathContains(f.path, "src/ensemble/")) {
    return;
  }
  const std::vector<Token>& t = f.tokens;

  // Pass 1: identifiers declared with float/double anywhere in the file
  // (covers `double x`, `const double& x`, `std::vector<double>& xs`).
  std::set<std::string> float_idents;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "double" && t[i].text != "float")) {
      continue;
    }
    for (size_t j = i + 1; j < t.size() && j < i + 6; ++j) {
      if (t[j].kind == TokKind::kIdent) {
        if (t[j].text == "const") continue;
        float_idents.insert(t[j].text);
        break;
      }
      if (t[j].kind == TokKind::kPunct &&
          (t[j].text == ">" || t[j].text == ">>" || t[j].text == "&" ||
           t[j].text == "*")) {
        continue;
      }
      break;
    }
  }

  auto operand_is_float = [&](const Token& tok) {
    if (tok.kind == TokKind::kNumber) return IsFloatLiteral(tok.text);
    if (tok.kind == TokKind::kIdent) return float_idents.count(tok.text) > 0;
    return false;
  };

  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct ||
        (t[i].text != "==" && t[i].text != "!=")) {
      continue;
    }
    // A nullptr on either side makes this a pointer comparison, however
    // float-flavored the pointee's declaration looked (`vector<double>*`).
    if ((i > 0 && t[i - 1].text == "nullptr") ||
        (i + 1 < t.size() && t[i + 1].text == "nullptr")) {
      continue;
    }
    // Left operand: walk back over one balanced ]/) group to the base
    // identifier (handles `scores[a] ==` and `f(x) ==`).
    bool flt = false;
    if (i > 0) {
      size_t j = i - 1;
      if (t[j].kind == TokKind::kPunct &&
          (t[j].text == "]" || t[j].text == ")")) {
        const std::string open = t[j].text == "]" ? "[" : "(";
        const std::string close = t[j].text;
        int nest = 0;
        while (j > 0) {
          if (t[j].kind == TokKind::kPunct && t[j].text == close) ++nest;
          if (t[j].kind == TokKind::kPunct && t[j].text == open) {
            if (--nest == 0) break;
          }
          --j;
        }
        if (j > 0) --j;  // token before the opening bracket
      }
      flt = operand_is_float(t[j]);
    }
    // Right operand: first ident/number, skipping unary sign, parens and
    // `std ::` qualification.
    for (size_t k = i + 1; !flt && k < t.size() && k < i + 6; ++k) {
      if (t[k].kind == TokKind::kPunct &&
          (t[k].text == "(" || t[k].text == "-" || t[k].text == "+" ||
           t[k].text == "::")) {
        continue;
      }
      if (t[k].kind == TokKind::kIdent && t[k].text == "std") continue;
      if (t[k].kind == TokKind::kIdent || t[k].kind == TokKind::kNumber) {
        flt = operand_is_float(t[k]);
      }
      break;
    }
    if (flt) {
      rep->Report(t[i].line, "float-compare",
                  "floating-point " + t[i].text +
                      " comparison in the bit-identity-critical ranking "
                      "core; use an explicit tolerance, or "
                      "NOLINT(float-compare) when exact equality is the "
                      "contract");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unseeded-rng
// ---------------------------------------------------------------------------

void CheckRng(const LexedFile& f, Reporter* rep) {
  if (PathContains(f.path, "util/rng.h") ||
      PathContains(f.path, "util/rng.cc")) {
    return;  // the one sanctioned randomness implementation
  }
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    const bool call = i + 1 < t.size() && t[i + 1].kind == TokKind::kPunct &&
                      t[i + 1].text == "(";
    if ((s == "rand" || s == "srand") && call) {
      rep->Report(t[i].line, "unseeded-rng",
                  s + "() breaks bit-for-bit reproducibility; draw from an "
                      "explicitly seeded scholar::Rng (util/rng.h)");
    } else if (s == "mt19937" || s == "mt19937_64" || s == "random_device") {
      rep->Report(t[i].line, "unseeded-rng",
                  "std::" + s +
                      " outside util/rng; all randomness flows through "
                      "explicitly seeded scholar::Rng (util/rng.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-stdout
// ---------------------------------------------------------------------------

void CheckRawStdout(const LexedFile& f, Reporter* rep) {
  if (!PathContains(f.path, "src/")) return;  // tools may print
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "cout" || s == "printf" || s == "fprintf" || s == "puts" ||
        s == "fputs" || s == "putchar") {
      rep->Report(t[i].line, "raw-stdout",
                  "library code must not write to stdio directly (" + s +
                      "); log through SCHOLAR_LOG (util/logging.h) so "
                      "severity filtering keeps working");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-order
// ---------------------------------------------------------------------------

void CheckIncludeOrder(const LexedFile& f, Reporter* rep) {
  const std::string base = Basename(f.path);
  if (base.size() < 4 || base.substr(base.size() - 3) != ".cc") return;
  const std::string own_header = Stem(f.path) + ".h";
  for (size_t i = 0; i < f.includes.size(); ++i) {
    const Include& inc = f.includes[i];
    if (inc.quoted && Basename(inc.path) == own_header) {
      if (i != 0) {
        rep->Report(inc.line, "include-order",
                    "own header \"" + inc.path +
                        "\" must be the first #include (proves the header "
                        "is self-contained)");
      }
      return;  // only the first own-header include is checked
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: materialize-snapshot
// ---------------------------------------------------------------------------

/// Flags ExtractSnapshot() call sites outside src/graph/time_slicer.{h,cc}.
/// Each snapshot materialization copies O(V+E); the ensemble's zero-copy
/// TemporalCsr views exist so ranking code never pays that. Oracle
/// comparisons (tests, benches) and the legacy fallback are legitimate —
/// they carry NOLINT(materialize-snapshot).
void CheckMaterializeSnapshot(const LexedFile& f, Reporter* rep) {
  if (PathContains(f.path, "src/graph/time_slicer.h") ||
      PathContains(f.path, "src/graph/time_slicer.cc")) {
    return;  // the implementation itself
  }
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "ExtractSnapshot") {
      continue;
    }
    const bool call = i + 1 < t.size() && t[i + 1].kind == TokKind::kPunct &&
                      t[i + 1].text == "(";
    if (!call) continue;  // declaration mention, qualified name, comment-free doc
    rep->Report(t[i].line, "materialize-snapshot",
                "ExtractSnapshot() copies O(V+E) per snapshot; rank through "
                "zero-copy TemporalCsr::MakeView() instead, or mark oracle/"
                "legacy sites with NOLINT(materialize-snapshot)");
  }
}

// ---------------------------------------------------------------------------
// Rule: include-layering
// ---------------------------------------------------------------------------

/// The module DAG, bottom (0) to top. An include is legal only when it
/// points strictly *down* the layering; same-module includes are free.
/// rank and data share a layer (both sit on graph, neither may see the
/// other), as do ensemble and eval. stream sits between core and serve:
/// the ingestion pipeline may drive any ranking kernel (graph/rank/
/// ensemble/core), but publication goes through an injected callback —
/// stream must never name serve, while serve and cli may consume stream.
int ModuleLayer(const std::string& module) {
  static const std::map<std::string, int> kLayers = {
      {"util", 0}, {"graph", 1},  {"data", 2},   {"rank", 2},
      {"ensemble", 3}, {"eval", 3}, {"core", 4}, {"stream", 5},
      {"serve", 6}, {"cli", 7}};
  auto it = kLayers.find(module);
  return it == kLayers.end() ? -1 : it->second;
}

/// Module a file belongs to: the path component after the last
/// boundary-anchored "src/" ("tools/../src/rank/twpr.cc" -> "rank").
/// Empty when the file is not under src/ (tools, tests, benches are
/// deliberately unconstrained — they may include anything).
std::string FileModule(const std::string& path) {
  size_t best = std::string::npos;
  size_t pos = path.find("src/");
  while (pos != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') best = pos;
    pos = path.find("src/", pos + 1);
  }
  if (best == std::string::npos) return "";
  const size_t start = best + 4;  // strlen("src/")
  const size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";  // file directly under src/
  return path.substr(start, slash - start);
}

/// Enforces the module DAG util -> graph -> {data, rank} -> {ensemble,
/// eval} -> core -> stream -> serve -> cli at the #include level: a quoted
/// project include may only name a module on a strictly lower layer (or
/// the includer's own module). Back-edges and same-layer edges are how
/// cycles start; a deliberate exception says so
/// with NOLINT(include-layering) on the #include line.
void CheckIncludeLayering(const LexedFile& f, Reporter* rep) {
  const std::string from = FileModule(f.path);
  const int from_layer = ModuleLayer(from);
  if (from_layer < 0) return;  // not library code under src/<module>/
  for (const Include& inc : f.includes) {
    if (!inc.quoted) continue;  // system headers are outside the DAG
    const size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // local/relative include
    const std::string to = inc.path.substr(0, slash);
    if (to == from) continue;  // intra-module includes are free
    const int to_layer = ModuleLayer(to);
    if (to_layer < 0) continue;  // not a project module
    if (to_layer >= from_layer) {
      rep->Report(inc.line, "include-layering",
                  "module '" + from + "' (layer " +
                      std::to_string(from_layer) + ") must not include '" +
                      inc.path + "' from module '" + to + "' (layer " +
                      std::to_string(to_layer) +
                      "); the module DAG is util -> graph -> {data, rank} "
                      "-> {ensemble, eval} -> core -> stream -> serve -> "
                      "cli");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-read
// ---------------------------------------------------------------------------

/// True for the files that decode untrusted bytes. Matches by
/// boundary-anchored path fragment so the fixture tree (which mirrors
/// src/ paths) is scoped identically.
bool IsParserFile(const std::string& path) {
  static const char* kParserPaths[] = {
      "graph/graph_io",      "data/dataset",         "data/ground_truth",
      "serve/snapshot",      "serve/request_framer", "util/byte_reader",
      "stream/edge_batch"};
  for (const char* p : kParserPaths) {
    if (PathContains(path, p)) return true;
  }
  return false;
}

/// In parser files, every byte-to-value conversion goes through the
/// bounds-checked ByteReader: raw memcpy() and mutable reinterpret_cast
/// are how out-of-bounds reads from attacker-controlled buffers happen.
/// `reinterpret_cast<const ...>` stays legal — that is the write path
/// (serializing trusted in-memory state), not a read from input. The two
/// low-level sites inside ByteReader itself carry NOLINT(unchecked-read).
void CheckUncheckedRead(const LexedFile& f, Reporter* rep) {
  if (!IsParserFile(f.path)) return;
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    const bool followed_by = [&](const char* punct) {
      return i + 1 < t.size() && t[i + 1].kind == TokKind::kPunct &&
             t[i + 1].text == punct;
    }(s == "memcpy" ? "(" : "<");
    if (s == "memcpy" && followed_by) {
      rep->Report(t[i].line, "unchecked-read",
                  "raw memcpy() in a parser file; decode through the "
                  "bounds-checked ByteReader (util/byte_reader.h) or mark "
                  "the sanctioned low-level site NOLINT(unchecked-read)");
    } else if (s == "reinterpret_cast" && followed_by) {
      const bool to_const = i + 2 < t.size() &&
                            t[i + 2].kind == TokKind::kIdent &&
                            t[i + 2].text == "const";
      if (to_const) continue;  // write path: serializing trusted state
      rep->Report(t[i].line, "unchecked-read",
                  "mutable reinterpret_cast in a parser file; decode "
                  "through the bounds-checked ByteReader "
                  "(util/byte_reader.h) or mark the sanctioned low-level "
                  "site NOLINT(unchecked-read)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-intrinsics
// ---------------------------------------------------------------------------

/// True when the include path names an x86 SIMD intrinsics header
/// (immintrin.h, x86intrin.h, emmintrin.h, ...).
bool IsIntrinsicsHeader(const std::string& path) {
  const std::string base = Basename(path);
  const std::string suffix = "intrin.h";
  return base.size() >= suffix.size() &&
         base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// SIMD intrinsics are confined to src/rank/kernel/: that directory owns
/// the runtime ISA dispatch and the scalar oracle that proves each vector
/// path bit-identical, so an intrinsic anywhere else is a portability and
/// bit-identity hazard the kernel seam exists to prevent. Flags
/// _mm_/_mm256_/_mm512_ calls, __m128/__m256/__m512 vector types, and
/// *intrin.h includes in the rest of src/. A deliberate exception says so
/// with NOLINT(raw-intrinsics).
void CheckRawIntrinsics(const LexedFile& f, Reporter* rep) {
  if (!PathContains(f.path, "src/")) return;  // tools/tests/benches free
  if (PathContains(f.path, "src/rank/kernel/")) return;  // the one home
  for (const Include& inc : f.includes) {
    if (IsIntrinsicsHeader(inc.path)) {
      rep->Report(inc.line, "raw-intrinsics",
                  "#include <" + inc.path +
                      "> outside src/rank/kernel/; SIMD code belongs behind "
                      "the iteration-engine seam (rank/kernel/simd.h), which "
                      "owns runtime dispatch and the scalar bit-identity "
                      "oracle");
    }
  }
  const std::vector<Token>& t = f.tokens;
  for (const Token& tok : t) {
    if (tok.kind != TokKind::kIdent) continue;
    const std::string& s = tok.text;
    const bool call_prefix = s.rfind("_mm_", 0) == 0 ||
                             s.rfind("_mm256_", 0) == 0 ||
                             s.rfind("_mm512_", 0) == 0;
    const bool vector_type = s.rfind("__m128", 0) == 0 ||
                             s.rfind("__m256", 0) == 0 ||
                             s.rfind("__m512", 0) == 0;
    if (call_prefix || vector_type) {
      rep->Report(tok.line, "raw-intrinsics",
                  "raw SIMD intrinsic '" + s +
                      "' outside src/rank/kernel/; route vector work through "
                      "the iteration engine (rank/kernel/), or mark a "
                      "deliberate exception NOLINT(raw-intrinsics)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stale-nolint
// ---------------------------------------------------------------------------

/// The scholar_lint rule names; only these are audited for staleness.
/// Other tools share the NOLINT(rule): syntax (scholar_analyze's
/// unchecked-status / hot-loop-alloc / lock-order / determinism, clang
/// dialects like runtime/explicit) and must not be second-guessed here.
const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "mutex-guard",          "float-compare",    "unseeded-rng",
      "raw-stdout",           "include-order",    "materialize-snapshot",
      "include-layering",     "unchecked-read",   "raw-intrinsics"};
  return kRules;
}

/// A NOLINT(rule) that suppressed nothing is dead weight: it silently
/// disables the rule for whatever lands on that line next, and it rots
/// the audit trail (readers assume the exception is still load-bearing).
/// Bare `// NOLINT` is not audited — it names no rule to hold it to.
/// Must run after every other rule pass so WasSuppressed is complete.
void CheckStaleNolint(const LexedFile& f, Reporter* rep) {
  for (const auto& entry : f.suppressions) {
    const int line = entry.first;
    const std::set<std::string>& rules = entry.second;
    for (const std::string& rule : rules) {
      if (KnownRules().count(rule) == 0) continue;  // another tool's rule
      if (rep->WasSuppressed(line, rule)) continue;
      rep->Report(line, "stale-nolint",
                  "NOLINT(" + rule +
                      ") suppresses nothing on this line; remove the stale "
                      "marker (dead suppressions hide future regressions)");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

int LintFile(const std::string& path, std::vector<Diagnostic>* all) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  LexedFile lexed = Lex(path, buf.str());
  Reporter rep(lexed);
  CheckMutexGuard(lexed, &rep);
  CheckFloatCompare(lexed, &rep);
  CheckRng(lexed, &rep);
  CheckRawStdout(lexed, &rep);
  CheckIncludeOrder(lexed, &rep);
  CheckMaterializeSnapshot(lexed, &rep);
  CheckIncludeLayering(lexed, &rep);
  CheckUncheckedRead(lexed, &rep);
  CheckRawIntrinsics(lexed, &rep);
  CheckStaleNolint(lexed, &rep);  // keep last: audits the passes above
  all->insert(all->end(), rep.diagnostics().begin(), rep.diagnostics().end());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: scholar_lint file...\n"
                << "rules: mutex-guard float-compare unseeded-rng "
                   "raw-stdout include-order materialize-snapshot "
                   "include-layering unchecked-read raw-intrinsics "
                   "stale-nolint\n"
                << "suppress with // NOLINT or // NOLINT(rule-a,rule-b) "
                   "leading the comment\n";
      return 0;
    }
    files.push_back(std::move(arg));
  }
  if (files.empty()) {
    std::cerr << "usage: scholar_lint file...\n";
    return 2;
  }
  std::vector<Diagnostic> diagnostics;
  int status = 0;
  for (const std::string& f : files) {
    status = std::max(status, LintFile(f, &diagnostics));
  }
  for (const Diagnostic& d : diagnostics) {
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
              << d.message << "\n";
  }
  if (!diagnostics.empty()) {
    std::cout << diagnostics.size() << " violation"
              << (diagnostics.size() == 1 ? "" : "s") << " in "
              << files.size() << " file" << (files.size() == 1 ? "" : "s")
              << "\n";
    return 1;
  }
  return status;
}
