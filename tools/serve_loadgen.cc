/// Load generator for `scholar serve`: replays a weighted synthetic query
/// mix over N TCP connections and reports throughput and latency.
///
///   serve_loadgen port=7601 [host=127.0.0.1] [connections=4] [pipeline=32]
///                 [requests=200000] [k=10] [seed=1] [zipf=0]
///                 [rate=0] [duration=0]
///                 [mix=score:40,top_k:25,percentile:15,rank:10,neighbors:10]
///
/// `requests` is the total across all connections. `zipf=<s>` skews the
/// queried article ids Zipf(s) toward the low ids (0 = uniform) — real
/// scholarly traffic concentrates on a head of famous papers, which is
/// exactly what makes per-replica response caches earn their keep.
///
/// Two driving modes:
///   closed loop (default): each connection keeps `pipeline` requests in
///     flight; latency is send-to-response per batch, so it includes
///     in-batch queueing. Throughput is whatever the server sustains.
///   open loop (rate=<qps>): requests are scheduled at Poisson arrivals of
///     the given aggregate rate, split evenly across connections, and sent
///     on schedule regardless of response progress (a paced sender thread
///     and a reader thread per connection). Latency is measured from the
///     *scheduled* send time, so server lag shows up as queueing delay
///     instead of silently slowing the offered load — the honest way to
///     measure p99 at a fixed rate. `duration=<seconds>` bounds the run
///     (0 = until `requests` are sent).
///
/// `BUSY` responses (server load shedding) are counted separately from
/// errors; dropped requests (sent but never answered before the connection
/// died) are reported and make the run fail. Prints a human summary and a
/// CSV line for scripting.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/config.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using scholar::Config;
using scholar::Rng;

struct MixEntry {
  std::string kind;
  double weight = 0;
};

struct WorkerResult {
  std::vector<int64_t> latencies_ns;
  uint64_t errors = 0;
  uint64_t shed = 0;     // typed BUSY responses (server backpressure)
  uint64_t dropped = 0;  // sent but never answered (connection died)
  bool connect_failed = false;
};

/// Blocking line-oriented client socket.
class LineClient {
 public:
  bool Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return false;
    }
    int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    return true;
  }

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (terminator stripped).
  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = pending_.find('\n');
      if (nl != std::string::npos) {
        *line = pending_.substr(0, nl);
        pending_.erase(0, nl + 1);
        return true;
      }
      char buffer[64 * 1024];
      ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      pending_.append(buffer, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

std::string MakeRequest(const std::string& kind, uint64_t num_nodes,
                        size_t k, double zipf, Rng* rng) {
  // NextZipf(n, 0) is uniform; s > 0 skews toward the low ids, standing in
  // for the head-heavy popularity of real article traffic.
  const uint64_t id = rng->NextZipf(num_nodes, zipf);
  if (kind == "top_k") {
    // Pages near the head, like a leaderboard UI: offsets 0..9 pages.
    return "top_k " + std::to_string(k) + " " +
           std::to_string(k * rng->NextBounded(10));
  }
  if (kind == "neighbors") {
    return "neighbors " + std::to_string(id) +
           (rng->NextBounded(2) == 0 ? " citers " : " refs ") +
           std::to_string(k);
  }
  return kind + " " + std::to_string(id);  // score | rank | percentile
}

void CountResponse(const std::string& line, WorkerResult* result) {
  if (line.rfind("OK", 0) == 0) return;
  if (line == "BUSY") {
    ++result->shed;
  } else {
    ++result->errors;
  }
}

void RunWorker(const std::string& host, uint16_t port, uint64_t num_nodes,
               size_t num_requests, size_t pipeline, size_t k, double zipf,
               const std::vector<MixEntry>& mix, uint64_t seed,
               WorkerResult* result) {
  LineClient client;
  if (!client.Connect(host, port)) {
    result->connect_failed = true;
    return;
  }
  Rng rng(seed);
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const MixEntry& entry : mix) weights.push_back(entry.weight);

  result->latencies_ns.reserve(num_requests);
  std::string batch;
  std::string line;
  size_t remaining = num_requests;
  while (remaining > 0) {
    const size_t burst = std::min(pipeline, remaining);
    batch.clear();
    for (size_t i = 0; i < burst; ++i) {
      const size_t pick = rng.NextDiscrete(weights);
      const std::string& kind =
          mix[pick < mix.size() ? pick : 0].kind;
      batch += MakeRequest(kind, num_nodes, k, zipf, &rng);
      batch += '\n';
    }
    const auto sent_at = std::chrono::steady_clock::now();
    if (!client.SendAll(batch)) {
      result->dropped += remaining;
      return;
    }
    for (size_t i = 0; i < burst; ++i) {
      if (!client.ReadLine(&line)) {
        result->dropped += remaining - i;
        return;
      }
      result->latencies_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - sent_at)
              .count());
      CountResponse(line, result);
    }
    remaining -= burst;
  }
}

/// Open-loop driver for one connection: a paced sender schedules Poisson
/// arrivals at `rate` QPS and writes each request on time while the reader
/// (this thread) matches responses in order. Latency is measured from the
/// scheduled send instant, so when the server falls behind, the backlog
/// shows up as tail latency — the offered load never self-throttles.
void RunOpenLoopWorker(const std::string& host, uint16_t port,
                       uint64_t num_nodes, size_t num_requests, size_t k,
                       double zipf, double rate, double duration_s,
                       const std::vector<MixEntry>& mix, uint64_t seed,
                       WorkerResult* result) {
  LineClient client;
  if (!client.Connect(host, port)) {
    result->connect_failed = true;
    return;
  }

  // The sender pushes each request's scheduled timestamp; the reader pops
  // them in order (responses come back in request order on one connection).
  std::mutex mu;
  std::deque<std::chrono::steady_clock::time_point> scheduled;
  std::atomic<bool> send_done{false};
  std::atomic<uint64_t> send_failures{0};

  std::thread sender([&] {  // NOLINT(dangling-capture): sender.join() below runs before these locals leave scope, so the references cannot dangle
    Rng rng(seed);
    std::vector<double> weights;
    weights.reserve(mix.size());
    for (const MixEntry& entry : mix) weights.push_back(entry.weight);
    const auto start = std::chrono::steady_clock::now();
    auto next_send = start;
    for (size_t i = 0; i < num_requests; ++i) {
      next_send += std::chrono::nanoseconds(
          static_cast<int64_t>(rng.NextExponential(rate) * 1e9));
      if (duration_s > 0 &&
          next_send - start > std::chrono::duration<double>(duration_s)) {
        break;
      }
      const size_t pick = rng.NextDiscrete(weights);
      const std::string& kind = mix[pick < mix.size() ? pick : 0].kind;
      std::string request = MakeRequest(kind, num_nodes, k, zipf, &rng);
      request += '\n';
      std::this_thread::sleep_until(next_send);
      {
        std::lock_guard<std::mutex> lock(mu);
        scheduled.push_back(next_send);
      }
      if (!client.SendAll(request)) {
        send_failures.fetch_add(1);
        break;
      }
    }
    send_done.store(true, std::memory_order_release);  // NOLINT(atomic-confinement): release pairs with the reader's acquire load of send_done, publishing the last scheduled push
  });

  std::string line;
  for (;;) {
    bool have_outstanding;
    {
      std::lock_guard<std::mutex> lock(mu);
      have_outstanding = !scheduled.empty();
    }
    if (!have_outstanding) {
      if (send_done.load(std::memory_order_acquire)) break;  // NOLINT(atomic-confinement): acquire pairs with the sender's release store, ordering the final queue drain after it
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    if (!client.ReadLine(&line)) break;  // connection died mid-run
    std::chrono::steady_clock::time_point sent_at;
    {
      std::lock_guard<std::mutex> lock(mu);
      sent_at = scheduled.front();
      scheduled.pop_front();
    }
    result->latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - sent_at)
            .count());
    CountResponse(line, result);
  }
  sender.join();
  std::lock_guard<std::mutex> lock(mu);
  result->dropped += scheduled.size() - std::min<size_t>(
      scheduled.size(), send_failures.load());
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main(int argc, const char** argv) {
  scholar::Result<Config> config = Config::FromArgs(argc - 1, argv + 1);
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 2;
  }
  const std::string host = config->GetStringOr("host", "127.0.0.1");
  const int64_t port = config->GetIntOr("port", 7601);
  const size_t connections =
      static_cast<size_t>(config->GetIntOr("connections", 4));
  const size_t pipeline = static_cast<size_t>(config->GetIntOr("pipeline", 32));
  const size_t total_requests =
      static_cast<size_t>(config->GetIntOr("requests", 200000));
  const size_t k = static_cast<size_t>(config->GetIntOr("k", 10));
  const uint64_t seed = static_cast<uint64_t>(config->GetIntOr("seed", 1));
  const double zipf = config->GetDoubleOr("zipf", 0.0);
  const double rate = config->GetDoubleOr("rate", 0.0);
  const double duration_s = config->GetDoubleOr("duration", 0.0);
  const std::string mix_spec = config->GetStringOr(
      "mix", "score:40,top_k:25,percentile:15,rank:10,neighbors:10");
  if (port <= 0 || port > 65535 || connections == 0 || pipeline == 0) {
    std::fprintf(stderr, "error: bad port/connections/pipeline\n");
    return 2;
  }
  if (zipf < 0 || rate < 0 || duration_s < 0) {
    std::fprintf(stderr, "error: zipf/rate/duration must be >= 0\n");
    return 2;
  }

  std::vector<MixEntry> mix;
  for (std::string_view part : scholar::SplitSkipEmpty(mix_spec, ',')) {
    const auto fields = scholar::Split(part, ':');
    scholar::Result<double> weight =
        fields.size() == 2 ? scholar::ParseDouble(fields[1])
                           : scholar::Result<double>(1.0);
    if (fields.empty() || !weight.ok() || *weight < 0) {
      std::fprintf(stderr, "error: bad mix entry '%s'\n",
                   std::string(part).c_str());
      return 2;
    }
    mix.push_back({std::string(fields[0]), *weight});
  }
  if (mix.empty()) {
    std::fprintf(stderr, "error: empty mix\n");
    return 2;
  }

  // One probe request tells us the corpus size (for id generation) and
  // fails fast when the server is down.
  uint64_t num_nodes = 0;
  {
    LineClient probe;
    if (!probe.Connect(host, static_cast<uint16_t>(port))) {
      std::fprintf(stderr, "error: cannot connect to %s:%lld\n", host.c_str(),
                   static_cast<long long>(port));
      return 1;
    }
    std::string line;
    if (!probe.SendAll("info\n") || !probe.ReadLine(&line) ||
        line.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "error: info probe failed (got '%s')\n",
                   line.c_str());
      return 1;
    }
    for (std::string_view token : scholar::SplitSkipEmpty(line, ' ')) {
      if (token.rfind("nodes=", 0) == 0) {
        scholar::Result<int64_t> n = scholar::ParseInt64(token.substr(6));
        if (n.ok() && *n > 0) num_nodes = static_cast<uint64_t>(*n);
      }
    }
    if (num_nodes == 0) {
      std::fprintf(stderr, "error: server reports an empty snapshot\n");
      return 1;
    }
  }

  const bool open_loop = rate > 0;
  std::printf(
      "loadgen: %s:%lld connections=%zu %s requests=%zu zipf=%.2f mix=%s\n",
      host.c_str(), static_cast<long long>(port), connections,
      open_loop
          ? ("open-loop rate=" + std::to_string(rate) + "/s").c_str()
          : ("pipeline=" + std::to_string(pipeline)).c_str(),
      total_requests, zipf, mix_spec.c_str());

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  const size_t per_connection = total_requests / connections;
  scholar::WallTimer timer;
  for (size_t c = 0; c < connections; ++c) {
    // The first worker also absorbs the division remainder.
    const size_t quota =
        per_connection + (c == 0 ? total_requests % connections : 0);
    if (open_loop) {
      workers.emplace_back(RunOpenLoopWorker, host,
                           static_cast<uint16_t>(port), num_nodes, quota, k,
                           zipf, rate / static_cast<double>(connections),
                           duration_s, mix, seed + 1000 * c + 1, &results[c]);
    } else {
      workers.emplace_back(RunWorker, host, static_cast<uint16_t>(port),
                           num_nodes, quota, pipeline, k, zipf, mix,
                           seed + 1000 * c + 1, &results[c]);
    }
  }
  for (std::thread& w : workers) w.join();
  const double elapsed = timer.ElapsedSeconds();

  std::vector<int64_t> latencies;
  uint64_t errors = 0, shed = 0, dropped = 0;
  for (const WorkerResult& r : results) {
    if (r.connect_failed) {
      std::fprintf(stderr, "error: a worker failed to connect\n");
      return 1;
    }
    errors += r.errors;
    shed += r.shed;
    dropped += r.dropped;
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      elapsed > 0 ? static_cast<double>(latencies.size()) / elapsed : 0;
  const double p50_ms = static_cast<double>(Percentile(latencies, 0.50)) / 1e6;
  const double p99_ms = static_cast<double>(Percentile(latencies, 0.99)) / 1e6;
  const double max_ms =
      latencies.empty()
          ? 0
          : static_cast<double>(latencies.back()) / 1e6;

  std::printf("total: %zu responses in %.3f s -> %.0f QPS\n",
              latencies.size(), elapsed, qps);
  std::printf("latency: p50=%.3f ms p99=%.3f ms max=%.3f ms\n", p50_ms,
              p99_ms, max_ms);
  std::printf("errors: %llu shed: %llu dropped: %llu\n",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(dropped));
  std::printf(
      "\ncsv: mode,connections,pipeline,rate,zipf,requests,seconds,qps,"
      "p50_ms,p99_ms,errors,shed,dropped\n");
  std::printf("csv: %s,%zu,%zu,%.0f,%.2f,%zu,%.3f,%.0f,%.3f,%.3f,%llu,%llu,"
              "%llu\n",
              open_loop ? "open" : "closed", connections, pipeline, rate,
              zipf, latencies.size(), elapsed, qps, p50_ms, p99_ms,
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(dropped));
  return errors == 0 && dropped == 0 ? 0 : 1;
}
