// Per-file result cache. A cache entry stores the file's index
// contribution and (when still valid) its findings, keyed by the FNV-1a
// hash of the file's bytes. On a warm run only edited files are re-lexed;
// the rest contribute to the global index straight from the cache. The
// findings of an unchanged file are additionally keyed by the global
// index signature, because unchecked-status and determinism resolve
// names cross-file: editing one header can change another file's
// findings even though its bytes did not move.
//
// The format is line-oriented and versioned; any parse surprise (or a
// version bump of the analyzer) simply discards the cache — it is a pure
// accelerator, never a source of truth.

#include "analyze/output.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace analyze {

namespace {

constexpr const char* kMagic = "scholar-analyze-cache 2";

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream ss(s);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Splits `s` on '|' into exactly `n` leading fields; the remainder (which
/// may itself contain '|') lands in the last slot.
bool SplitFields(const std::string& s, size_t n, std::vector<std::string>* out) {
  out->clear();
  size_t pos = 0;
  for (size_t k = 0; k + 1 < n; ++k) {
    size_t bar = s.find('|', pos);
    if (bar == std::string::npos) return false;
    out->push_back(s.substr(pos, bar - pos));
    pos = bar + 1;
  }
  out->push_back(s.substr(pos));
  return true;
}

uint64_t ParseHex(const std::string& s, bool* ok) {
  if (s.empty() || s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::stoull(s, nullptr, 16);
}

}  // namespace

void Cache::Load(const std::string& path) {
  entries_.clear();
  std::ifstream is(path);
  if (!is) return;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return;

  CacheEntry cur;
  std::string cur_path;
  bool in_entry = false;
  std::vector<std::string> f;
  bool ok = true;

  auto abort_load = [this]() { entries_.clear(); };

  while (std::getline(is, line)) {
    if (line.size() < 2 || line[1] != ' ') {
      if (line == "E") {
        if (!in_entry) return abort_load();
        entries_[cur_path] = std::move(cur);
        cur = CacheEntry();
        in_entry = false;
        continue;
      }
      return abort_load();
    }
    const char tag = line[0];
    const std::string rest = line.substr(2);
    switch (tag) {
      case 'F': {
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) return abort_load();
        cur.file_hash = ParseHex(rest.substr(0, sp), &ok);
        if (!ok) return abort_load();
        cur_path = rest.substr(sp + 1);
        in_entry = true;
        break;
      }
      case 'S': cur.index.status_fns.insert(rest); break;
      case 'R': cur.index.result_fns.insert(rest); break;
      case 'U': cur.index.unordered_local.insert(rest); break;
      case 'T': cur.index.atomic_names.insert(rest); break;
      case 'N': {
        if (!SplitFields(rest, 3, &f)) return abort_load();
        int nline = std::atoi(f[0].c_str());
        FileIndex::AuditedNolint& audit = cur.index.audited_nolints[nline];
        audit.line_hash = ParseHex(f[1], &ok);
        if (!ok) return abort_load();
        for (const std::string& r : SplitCsv(f[2])) audit.rules.insert(r);
        break;
      }
      case 'D': {
        if (!SplitFields(rest, 7, &f)) return abort_load();
        FnSummary fn;
        fn.qualified = f[0];
        fn.simple = f[1];
        fn.file = f[2];
        fn.line = std::atoi(f[3].c_str());
        fn.sink_escapes = f[4] == "1";
        for (const std::string& c : SplitCsv(f[5])) fn.forward_calls.insert(c);
        fn.entry_held = SplitCsv(f[6]);
        cur.index.summaries.push_back(std::move(fn));
        break;
      }
      case 'A': {
        if (cur.index.summaries.empty()) return abort_load();
        if (!SplitFields(rest, 5, &f)) return abort_load();
        LockAcq a;
        a.mutex = f[0];
        a.line = std::atoi(f[1].c_str());
        a.line_hash = ParseHex(f[2], &ok);
        a.suppressed = f[3] == "1";
        a.held = SplitCsv(f[4]);
        if (!ok) return abort_load();
        cur.index.summaries.back().acqs.push_back(std::move(a));
        break;
      }
      case 'C': {
        if (cur.index.summaries.empty()) return abort_load();
        if (!SplitFields(rest, 6, &f)) return abort_load();
        LockCall c;
        c.callee = f[0];
        c.line = std::atoi(f[1].c_str());
        c.line_hash = ParseHex(f[2], &ok);
        c.suppressed = f[3] == "1";
        c.in_parallel = f[4] == "1";
        c.held = SplitCsv(f[5]);
        if (!ok) return abort_load();
        cur.index.summaries.back().calls.push_back(std::move(c));
        break;
      }
      case 'P': {
        if (cur.index.summaries.empty()) return abort_load();
        if (!SplitFields(rest, 6, &f)) return abort_load();
        FieldAccess fa;
        fa.field = f[0];
        fa.line = std::atoi(f[1].c_str());
        fa.line_hash = ParseHex(f[2], &ok);
        fa.guarded = f[3] == "1";
        fa.in_parallel = f[4] == "1";
        fa.suppressed = f[5] == "1";
        if (!ok) return abort_load();
        cur.index.summaries.back().fields.push_back(std::move(fa));
        break;
      }
      case 'G':
        cur.findings_sig = ParseHex(rest, &ok);
        if (!ok) return abort_load();
        cur.has_findings = true;
        break;
      case 'X': {
        if (!SplitFields(rest, 5, &f)) return abort_load();
        Finding fd;
        fd.rule = f[0];
        fd.line = std::atoi(f[1].c_str());
        fd.line_hash = ParseHex(f[2], &ok);
        fd.nolint_suppressed = f[3] == "1";
        fd.message = f[4];
        fd.file = cur_path;
        if (!ok) return abort_load();
        cur.findings.push_back(std::move(fd));
        break;
      }
      default:
        return abort_load();
    }
  }
}

bool Cache::Save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << kMagic << "\n";
  char buf[24];
  for (const auto& kv : entries_) {
    const CacheEntry& e = kv.second;
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(e.file_hash));
    os << "F " << buf << ' ' << kv.first << "\n";
    os << SerializeFileIndex(e.index);
    if (e.has_findings) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(e.findings_sig));
      os << "G " << buf << "\n";
      for (const Finding& fd : e.findings) {
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(fd.line_hash));
        os << "X " << fd.rule << '|' << fd.line << '|' << buf << '|'
           << (fd.nolint_suppressed ? 1 : 0) << '|' << fd.message << "\n";
      }
    }
    os << "E\n";
  }
  return static_cast<bool>(os);
}

const CacheEntry* Cache::Lookup(const std::string& norm_path,
                                uint64_t file_hash) const {
  auto it = entries_.find(norm_path);
  if (it == entries_.end() || it->second.file_hash != file_hash) return nullptr;
  return &it->second;
}

void Cache::Put(const std::string& norm_path, CacheEntry entry) {
  entries_[norm_path] = std::move(entry);
}

}  // namespace analyze
