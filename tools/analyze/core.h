// Shared data model of scholar_analyze, the scope-aware second-generation
// static analyzer (see tools/scholar_analyze.cc for the rule catalog).
//
// Design notes:
//  - Token-level, preprocessor-light: files are lexed once into a token
//    stream (comments feed the NOLINT/marker tables, #include lines feed
//    the include list) and every rule walks tokens with explicit
//    brace/function/scope tracking. No libclang dependency, so the
//    analyzer builds and runs even when the library itself is broken.
//  - Suppression contract: unlike scholar_lint's bare `// NOLINT`, the
//    analyzer only honors `// NOLINT(rule-a,rule-b): reason` — the rule
//    list must name the firing rule and a non-empty reason must follow.
//    Findings are audit points; the reason string is the audit record.
//  - Every finding carries a content fingerprint (FNV-1a of its trimmed
//    source line) so the baseline survives unrelated line-number churn.

#ifndef SCHOLAR_ANALYZE_CORE_H_
#define SCHOLAR_ANALYZE_CORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace analyze {

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Include {
  std::string path;  // without the <> or "" delimiters
  bool quoted;       // "..." vs <...>
  int line;
};

/// One `// NOLINT(rules): reason` marker. The analyzer requires both an
/// explicit rule list and a reason; `rules` is never empty here.
struct Nolint {
  std::set<std::string> rules;
  bool has_reason = false;
};

struct LexedFile {
  std::string path;        // as opened
  std::string norm_path;   // repo-relative (src/..., tools/..., tests/...)
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::map<int, Nolint> nolints;       // line -> marker
  std::set<int> init_markers;          // lines carrying `analyze:init-scope`
  std::vector<std::string> lines;      // raw source lines, 1-based at [i-1]
};

struct Finding {
  std::string rule;
  std::string file;    // normalized path
  int line = 0;
  uint64_t line_hash = 0;  // FNV-1a of the trimmed source line text
  std::string message;
  bool baseline_suppressed = false;
  // True when a reason-carrying NOLINT at the finding's line swallowed it.
  // Suppressed findings never reach stdout/SARIF/baseline, but they are
  // kept (and cached) so the stale-nolint audit can tell a suppression
  // that still suppresses something from one that went stale.
  bool nolint_suppressed = false;
};

/// FNV-1a 64-bit. Stable across runs/platforms; used for the per-file
/// content cache keys and the baseline's line fingerprints.
inline uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
inline uint64_t Fnv1a(const std::string& s, uint64_t seed = 1469598103934665603ull) {
  return Fnv1a(s.data(), s.size(), seed);
}

/// True when `path` contains directory component sequence `needle`
/// ("src/rank/"), anchored at the start or after a '/'.
inline bool PathContains(const std::string& path, const std::string& needle) {
  size_t pos = path.find(needle);
  while (pos != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    pos = path.find(needle, pos + 1);
  }
  return false;
}

inline std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Repo-relative spelling of `path`: the suffix starting at the last
/// boundary-anchored "src/", "tools/" or "tests/" component. Keeps
/// baseline entries and SARIF URIs stable whether the analyzer is invoked
/// with absolute (ctest) or relative (command line) paths.
inline std::string NormalizePath(const std::string& path) {
  size_t best = std::string::npos;
  for (const char* root : {"src/", "tools/", "tests/"}) {
    size_t pos = path.find(root);
    while (pos != std::string::npos) {
      if (pos == 0 || path[pos - 1] == '/') best = best == std::string::npos ? pos : std::max(best, pos);
      pos = path.find(root, pos + 1);
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

/// Hash of one source line with surrounding whitespace stripped — the
/// baseline fingerprint, insensitive to indentation and line renumbering.
inline uint64_t LineFingerprint(const LexedFile& f, int line) {
  if (line < 1 || line > static_cast<int>(f.lines.size())) return 0;
  const std::string& s = f.lines[line - 1];
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return Fnv1a(std::string());
  size_t e = s.find_last_not_of(" \t\r");
  return Fnv1a(s.substr(b, e - b + 1));
}

/// Lexes one C++ source file (see lexer.cc).
LexedFile Lex(const std::string& path, const std::string& text);

/// Collects findings for one file, honoring the reason-carrying NOLINT
/// contract described above.
class Reporter {
 public:
  explicit Reporter(const LexedFile& file, std::vector<Finding>* out)
      : file_(file), out_(out) {}

  void Report(int line, const std::string& rule, const std::string& message) {
    bool suppressed = false;
    auto it = file_.nolints.find(line);
    if (it != file_.nolints.end() && it->second.rules.count(rule) > 0 &&
        it->second.has_reason) {
      suppressed = true;  // the sanctioned escape hatch — recorded, not shown
    }
    out_->push_back({rule, file_.norm_path, line, LineFingerprint(file_, line),
                     message, false, suppressed});
  }

 private:
  const LexedFile& file_;
  std::vector<Finding>* out_;
};

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_CORE_H_
