// hot-loop-alloc: the per-iteration sweep loops of the ranking kernels
// must not allocate. An allocation that is cheap at n=10^3 is a
// throughput cliff at the paper's corpus scale (millions of nodes, tens
// of sweeps), and allocator locks serialize the parallel gather path.
//
// Scope: src/rank/kernel/**, src/rank/*.cc, src/stream/frontier_rank.cc.
// Exemptions: loops (or whole functions) under an `// analyze:init-scope`
// marker — codebook construction, CSR building and similar init-phase
// work allocates by design; and return/throw statements, which are cold
// error paths (building an error message there is fine).

#include "analyze/rules.h"

namespace analyze {

namespace {

bool InHotScope(const std::string& path) {
  if (PathContains(path, "src/rank/kernel/")) return true;
  if (path == "src/stream/frontier_rank.cc") return true;
  const std::string prefix = "src/rank/";
  if (path.compare(0, prefix.size(), prefix) == 0) {
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos && rest.size() > 3 &&
        rest.compare(rest.size() - 3, 3, ".cc") == 0) {
      return true;
    }
  }
  return false;
}

bool IsGrowthMethod(const std::string& s) {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
      "resize",    "reserve",      "assign",     "append",         "insert"};
  return kMethods.count(s) > 0;
}

bool IsAllocFn(const std::string& s) {
  static const std::set<std::string> kFns = {"malloc", "calloc", "realloc",
                                             "strdup", "aligned_alloc",
                                             "make_unique", "make_shared"};
  return kFns.count(s) > 0;
}

bool HasMarker(const LexedFile& f, int line) {
  return f.init_markers.count(line) > 0 || f.init_markers.count(line - 1) > 0;
}

}  // namespace

void CheckHotLoopAlloc(const LexedFile& f, const FileModel& model,
                       std::vector<Finding>* out) {
  if (!InHotScope(f.norm_path)) return;
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  for (const FunctionInfo& fn : model.functions) {
    if (HasMarker(f, fn.line)) continue;  // whole function is init-phase

    std::vector<size_t> loop_ends;  // token index one past each active loop
    size_t i = fn.body_begin;
    while (i < fn.body_end && i < t.size()) {
      while (!loop_ends.empty() && i >= loop_ends.back()) loop_ends.pop_back();
      const Token& tok = t[i];
      if (tok.kind != TokKind::kIdent) {
        ++i;
        continue;
      }
      // Loop openings.
      if ((tok.text == "for" || tok.text == "while") &&
          IsPunct(t, i + 1, "(")) {
        size_t close = MatchForward(t, i + 1);
        size_t body = close + 1;
        size_t end;
        if (IsPunct(t, body, "{")) {
          end = MatchForward(t, body) + 1;
        } else {
          // Single-statement body: through the next top-level ';'.
          int paren = 0;
          end = body;
          while (end < fn.body_end && end < t.size()) {
            if (IsPunct(t, end, "(")) ++paren;
            else if (IsPunct(t, end, ")")) --paren;
            else if (IsPunct(t, end, ";") && paren == 0) break;
            ++end;
          }
          ++end;
        }
        if (HasMarker(f, tok.line)) {
          i = end;  // exempt loop: skip its whole subtree
          continue;
        }
        loop_ends.push_back(end);
        i = body;
        continue;
      }
      if (tok.text == "do" && IsPunct(t, i + 1, "{")) {
        size_t end = MatchForward(t, i + 1) + 1;
        if (HasMarker(f, tok.line)) {
          i = end;
          continue;
        }
        loop_ends.push_back(end);
        i += 2;
        continue;
      }
      if (loop_ends.empty()) {
        ++i;
        continue;
      }
      // Cold error paths: skip return/throw statements wholesale.
      if (tok.text == "return" || tok.text == "throw") {
        int paren = 0;
        while (i < fn.body_end && i < t.size()) {
          if (IsPunct(t, i, "(")) ++paren;
          else if (IsPunct(t, i, ")")) --paren;
          else if (IsPunct(t, i, ";") && paren <= 0) break;
          ++i;
        }
        ++i;
        continue;
      }
      // Allocation patterns inside an active, non-exempt loop.
      const std::string hint =
          "; hoist it out of the sweep loop, mark the scope "
          "// analyze:init-scope if this is init-phase work, or suppress "
          "with NOLINT(hot-loop-alloc): reason";
      if (tok.text == "new" && !IsPunct(t, i + 1, "(")) {
        reporter.Report(tok.line, "hot-loop-alloc",
                        "'new' inside a hot-path loop" + hint);
      } else if (IsAllocFn(tok.text) &&
                 (IsPunct(t, i + 1, "(") || IsPunct(t, i + 1, "<"))) {
        reporter.Report(tok.line, "hot-loop-alloc",
                        "'" + tok.text + "' inside a hot-path loop" + hint);
      } else if (IsGrowthMethod(tok.text) && i > 0 &&
                 (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->")) &&
                 IsPunct(t, i + 1, "(")) {
        reporter.Report(tok.line, "hot-loop-alloc",
                        "container '" + tok.text +
                            "' inside a hot-path loop may reallocate" + hint);
      } else if (tok.text == "to_string" && IsPunct(t, i + 1, "(")) {
        reporter.Report(tok.line, "hot-loop-alloc",
                        "'to_string' builds a heap string inside a hot-path "
                        "loop" + hint);
      } else if ((tok.text == "string" || tok.text == "ostringstream" ||
                  tok.text == "stringstream") &&
                 i > 0 && IsPunct(t, i - 1, "::") &&
                 (IsPunct(t, i + 1, "(") || IsPunct(t, i + 1, "{"))) {
        reporter.Report(tok.line, "hot-loop-alloc",
                        "temporary '" + tok.text +
                            "' constructed inside a hot-path loop" + hint);
      }
      ++i;
    }
  }
}

}  // namespace analyze
