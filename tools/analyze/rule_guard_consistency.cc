// guard-consistency: a field guarded somewhere, bare somewhere parallel.
//
// Clang's thread-safety analysis only fires where GUARDED_BY annotations
// exist; this rule needs none. The per-function summaries record every
// member-field access with the lock context at the site (index.cc). If
// some function accesses `Cls::field_` under a MutexLock but another
// function touches it bare — and that other function is reachable from a
// parallel context — the locking discipline is inconsistent: either the
// guarded sites are cargo cult or the bare site is a race. Both deserve a
// look, which is exactly what a finding is.
//
// "Reachable from a parallel context" is a fixpoint over the merged call
// graph: seeds are callees invoked from inside parallel lambda bodies
// (LockCall::in_parallel) plus accesses lexically inside such bodies;
// reachability then propagates through simple-name call edges. Name-level
// resolution is deliberately coarse (same trade-off as lock-order): a
// false edge costs a triaged finding, a missed edge costs nothing that
// TSan wouldn't also miss.
//
// Exemptions: mutex/condvar fields themselves (every mutex is "accessed
// bare" at its own MutexLock sites), std::atomic members, and
// constructors/destructors (no concurrent observer exists yet/anymore).
//
// Also in this file: the stale-nolint audit over the parallel pack's
// suppressions — it needs the same pre-filter finding set this rule
// feeds, so they live together.

#include "analyze/rules.h"

#include <algorithm>
#include <tuple>

namespace analyze {

namespace {

std::string ClassOf(const std::string& qualified) {
  size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? std::string() : qualified.substr(0, pos);
}

std::string FieldNameOf(const std::string& qualified_field) {
  size_t pos = qualified_field.rfind("::");
  return pos == std::string::npos ? qualified_field
                                  : qualified_field.substr(pos + 2);
}

}  // namespace

std::vector<Finding> CheckGuardConsistency(const GlobalIndex& gi) {
  // Fields that are themselves synchronization objects.
  std::set<std::string> mutex_fields;       // "Cls::mu_" forms
  std::set<std::string> mutex_bare_names;   // "mu_" forms
  for (const FnSummary& fn : gi.summaries) {
    auto note = [&](const std::string& m) {
      if (m.empty()) return;
      mutex_fields.insert(m);
      mutex_bare_names.insert(FieldNameOf(m));
    };
    for (const std::string& m : fn.entry_held) note(m);
    for (const LockAcq& a : fn.acqs) note(a.mutex);
  }

  // Parallel-reachability fixpoint over simple names.
  std::set<std::string> parallel_fns;
  for (const FnSummary& fn : gi.summaries) {
    for (const LockCall& c : fn.calls) {
      if (c.in_parallel) parallel_fns.insert(c.callee);
    }
  }
  for (int pass = 0; pass < 20; ++pass) {
    bool changed = false;
    for (const FnSummary& fn : gi.summaries) {
      if (parallel_fns.count(fn.simple) == 0) continue;
      for (const LockCall& c : fn.calls) {
        if (c.in_parallel) continue;  // already seeded
        if (parallel_fns.insert(c.callee).second) changed = true;
      }
    }
    if (!changed) break;
  }

  // Field -> first guarded witness (file, line, function).
  struct Witness {
    std::string file;
    int line = 0;
    std::string fn;
  };
  std::map<std::string, Witness> guarded;
  for (const FnSummary& fn : gi.summaries) {
    for (const FieldAccess& fa : fn.fields) {
      if (!fa.guarded) continue;
      auto it = guarded.find(fa.field);
      if (it == guarded.end()) {
        guarded[fa.field] = {fn.file, fa.line, fn.qualified};
      }
    }
  }

  std::vector<Finding> out;
  std::set<std::tuple<std::string, int, std::string>> seen;
  for (const FnSummary& fn : gi.summaries) {
    const std::string cls = ClassOf(fn.qualified);
    const bool is_ctor_dtor = !cls.empty() && fn.simple == cls;
    if (is_ctor_dtor) continue;
    const bool fn_parallel = parallel_fns.count(fn.simple) > 0;
    for (const FieldAccess& fa : fn.fields) {
      if (fa.guarded) continue;
      if (!fa.in_parallel && !fn_parallel) continue;
      auto w = guarded.find(fa.field);
      if (w == guarded.end()) continue;  // never guarded anywhere
      if (w->second.file == fn.file && w->second.line == fa.line) continue;
      if (mutex_fields.count(fa.field) > 0 ||
          mutex_bare_names.count(FieldNameOf(fa.field)) > 0) {
        continue;
      }
      if (gi.atomic_members.count(FieldNameOf(fa.field)) > 0) continue;
      if (!seen.insert({fn.file, fa.line, fa.field}).second) continue;
      Finding f;
      f.rule = "guard-consistency";
      f.file = fn.file;
      f.line = fa.line;
      f.line_hash = fa.line_hash;
      f.message = "field '" + fa.field + "' is accessed under a mutex in " +
                  w->second.fn + " (" + w->second.file + ":" +
                  std::to_string(w->second.line) +
                  ") but bare here, in code reachable from a parallel "
                  "context; hold the guard, make the field atomic, or "
                  "record why the schedule makes this safe";
      f.nolint_suppressed = fa.suppressed;
      out.push_back(f);
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.message) <
           std::tie(b.file, b.line, b.message);
  });
  return out;
}

std::vector<Finding> CheckStaleNolints(
    const std::vector<std::pair<std::string, const FileIndex*>>& indexes,
    const std::vector<Finding>& findings) {
  // Everything any rule produced this run, suppressed or not.
  std::set<std::tuple<std::string, int, std::string>> produced;
  for (const Finding& f : findings) {
    produced.insert({f.file, f.line, f.rule});
  }
  std::vector<Finding> out;
  for (const auto& [file, fi] : indexes) {
    for (const auto& [line, audit] : fi->audited_nolints) {
      for (const std::string& rule : audit.rules) {
        if (produced.count({file, line, rule}) > 0) continue;
        Finding f;
        f.rule = "stale-nolint";
        f.file = file;
        f.line = line;
        f.line_hash = audit.line_hash;
        f.message = "NOLINT(" + rule +
                    ") here no longer suppresses any '" + rule +
                    "' finding; the audited risk is gone — remove the "
                    "marker (or re-justify it against a live finding)";
        out.push_back(f);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.message) <
           std::tie(b.file, b.line, b.message);
  });
  return out;
}

}  // namespace analyze
