#include "analyze/model.h"

#include <set>

namespace analyze {

namespace {

const char* kOpenOf(const std::string& close) {
  if (close == ")") return "(";
  if (close == "}") return "{";
  if (close == "]") return "[";
  return nullptr;
}
const char* kCloseOf(const std::string& open) {
  if (open == "(") return ")";
  if (open == "{") return "}";
  if (open == "[") return "]";
  return nullptr;
}

/// Thread-safety annotation macros that may sit between a parameter list
/// and the function body; each takes an optional argument list.
bool IsAnnotationMacro(const std::string& s) {
  static const std::set<std::string> kMacros = {
      "ACQUIRE",        "ACQUIRE_SHARED",  "RELEASE",   "RELEASE_SHARED",
      "TRY_ACQUIRE",    "REQUIRES",        "REQUIRES_SHARED",
      "EXCLUDES",       "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
      "NO_THREAD_SAFETY_ANALYSIS", "GUARDED_BY", "noexcept", "decltype",
      "throw"};
  return kMacros.count(s) > 0;
}

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",   "while", "switch",  "catch", "return",
      "sizeof", "alignof", "new", "delete",  "do",    "else",
      "try",    "static_assert", "alignas",  "case"};
  return kKeywords.count(s) > 0;
}

}  // namespace

size_t MatchForward(const std::vector<Token>& t, size_t open_idx) {
  const std::string& open = t[open_idx].text;
  const char* close = kCloseOf(open);
  if (close == nullptr) return t.size();
  int nest = 0;
  for (size_t i = open_idx; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == open) ++nest;
    else if (t[i].text == close && --nest == 0) return i;
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t close_idx) {
  const std::string& close = t[close_idx].text;
  const char* open = kOpenOf(close);
  if (open == nullptr) return SIZE_MAX;
  int nest = 0;
  for (size_t i = close_idx + 1; i-- > 0;) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == close) ++nest;
    else if (t[i].text == open && --nest == 0) return i;
  }
  return SIZE_MAX;
}

namespace {

/// Walks backward from the body's `{` to decide whether it opens a
/// function definition, and if so extracts name + class qualifier.
/// Handles parameter lists, cv/ref/noexcept/override specifiers,
/// thread-safety annotation macros, trailing return types, and
/// constructor initializer lists (paren and brace entries).
bool ClassifyBrace(const std::vector<Token>& t, size_t brace,
                   std::string* name, std::string* qual_class) {
  size_t j = brace;
  int guard = 0;
  while (j-- > 0) {
    if (++guard > 4096) return false;  // pathological; give up
    const Token& tok = t[j];
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "const" || tok.text == "override" ||
          tok.text == "final" || tok.text == "mutable" ||
          tok.text == "noexcept" || tok.text == "try") {
        continue;
      }
      // Trailing return type: `-> Type {`.
      if (j > 0 && IsPunct(t, j - 1, "->")) {
        --j;  // consume the '->' as well
        continue;
      }
      return false;  // `do {`, `else {`, type before brace-init, ...
    }
    if (tok.kind != TokKind::kPunct) return false;
    if (tok.text == "&" || tok.text == "&&" || tok.text == ">") {
      continue;  // ref-qualifier / trailing-return template args (loose)
    }
    if (tok.text == ")" || tok.text == "}") {
      size_t open = MatchBackward(t, j);
      if (open == SIZE_MAX || open == 0) return false;
      size_t before = open - 1;
      if (t[before].kind == TokKind::kIdent) {
        const std::string& cand = t[before].text;
        if (IsAnnotationMacro(cand)) {
          j = before;  // annotation macro: keep walking left
          continue;
        }
        if (before > 0 &&
            (IsPunct(t, before - 1, ":") || IsPunct(t, before - 1, ","))) {
          // Constructor init-list entry `a_(x)` / `b_{y}`: skip the entry
          // and its separator, keep walking toward the parameter list.
          j = before - 1;
          continue;
        }
        if (IsControlKeyword(cand)) return false;
        // This is the parameter list and `cand` the function name.
        *name = cand;
        *qual_class = "";
        if (before > 0 && IsPunct(t, before - 1, "::")) {
          size_t q = before - 2;
          if (q < t.size() && IsPunct(t, q, ">")) {
            size_t lt = MatchBackward(t, q);
            if (lt != SIZE_MAX && lt > 0) q = lt - 1;
          }
          if (q < t.size() && t[q].kind == TokKind::kIdent) {
            *qual_class = t[q].text;
          }
        }
        return true;
      }
      if (t[before].kind == TokKind::kPunct && before > 0 &&
          IsIdent(t, before - 1, "operator")) {
        *name = "operator" + t[before].text;
        *qual_class = "";
        if (before > 1 && IsPunct(t, before - 2, "::") && before > 2 &&
            t[before - 3].kind == TokKind::kIdent) {
          *qual_class = t[before - 3].text;
        }
        return true;
      }
      return false;  // lambda, array subscript, macro soup
    }
    if (tok.text == ":") {
      // `: base_clause {` on a constructor with an empty init list is
      // already covered by the entry walk; a bare `:` here is a label or
      // class base clause — not a function.
      return false;
    }
    return false;  // '=', ';', '{', ','... — initializer or aggregate
  }
  return false;
}

}  // namespace

bool IsLambdaIntro(const std::vector<Token>& t, size_t i) {
  if (!IsPunct(t, i, "[")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  // Subscripts follow a value (ident/]/)/literal); attribute lists follow
  // another '[' and never carry captures we would misread.
  return !(prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
           prev.kind == TokKind::kString ||
           (prev.kind == TokKind::kPunct &&
            (prev.text == ")" || prev.text == "]")));
}

std::vector<std::string> ParamNames(const std::vector<Token>& t,
                                    const FunctionInfo& fn) {
  std::vector<std::string> names;
  // The parameter list is the '('..')' group right after the name token
  // (ClassifyBrace walked back through it to find the name).
  size_t open = fn.name_tok + 1;
  if (open < t.size() && IsPunct(t, open, "<")) {
    // Rare explicit template args on the name; skip to the paren.
    while (open < fn.body_begin && !IsPunct(t, open, "(")) ++open;
  }
  if (!IsPunct(t, open, "(")) return names;
  size_t close = MatchForward(t, open);
  if (close >= t.size()) return names;
  int depth = 0;
  std::string last_ident;
  bool in_default = false;
  for (size_t j = open + 1; j < close; ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "(" || tok.text == "[" || tok.text == "{" ||
          tok.text == "<") {
        ++depth;
      } else if (tok.text == ")" || tok.text == "]" || tok.text == "}" ||
                 tok.text == ">") {
        --depth;
      } else if (tok.text == "=" && depth == 0) {
        in_default = true;  // default argument: the name is already seen
      } else if (tok.text == "," && depth == 0) {
        if (!last_ident.empty()) names.push_back(last_ident);
        last_ident.clear();
        in_default = false;
      }
      continue;
    }
    if (tok.kind == TokKind::kIdent && depth == 0 && !in_default &&
        tok.text != "const" && tok.text != "override" &&
        tok.text != "struct" && tok.text != "class") {
      last_ident = tok.text;
    }
  }
  if (!last_ident.empty()) names.push_back(last_ident);
  return names;
}

namespace {

/// One active "argument range of a parallel-primitive call": any lambda
/// introduced inside [open, close) is handed to that primitive.
struct ParallelCallRange {
  size_t close;
  RegionKind kind;
};

/// True at `i` for the idents that hand their lambda arguments to another
/// thread. Name-level on purpose: `pool->Submit(...)`, `pool_.Submit(...)`
/// and a bare `Submit(...)` inside ThreadPool itself all count.
RegionKind ParallelCalleeKind(const std::vector<Token>& t, size_t i) {
  if (t[i].kind != TokKind::kIdent) return RegionKind::kNone;
  const std::string& s = t[i].text;
  if (s == "ParallelFor" || s == "ParallelForChunks") {
    return RegionKind::kParallelFor;
  }
  if (s == "Submit" || s == "Schedule") return RegionKind::kSubmit;
  if (s == "thread" && i > 0 && IsPunct(t, i - 1, "::")) {
    // `std::thread(...)` or `std::thread name(...)` — constructor body.
    return RegionKind::kThread;
  }
  if (s == "async") return RegionKind::kThread;
  return RegionKind::kNone;
}

}  // namespace

std::vector<LambdaInfo> FindLambdas(const LexedFile& f,
                                    const FunctionInfo& fn) {
  const std::vector<Token>& t = f.tokens;
  std::vector<LambdaInfo> out;
  std::vector<ParallelCallRange> calls;   // active primitive-call arg lists
  std::vector<size_t> open_lambdas;       // indexes into `out`, by body

  for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
    while (!calls.empty() && i >= calls.back().close) calls.pop_back();
    while (!open_lambdas.empty() && i >= out[open_lambdas.back()].body_end) {
      open_lambdas.pop_back();
    }
    RegionKind callee = ParallelCalleeKind(t, i);
    if (callee != RegionKind::kNone) {
      size_t open = i + 1;
      if (callee == RegionKind::kThread && open < t.size() &&
          t[open].kind == TokKind::kIdent) {
        ++open;  // `std::thread name(...)`
      }
      if (IsPunct(t, open, "(")) {
        size_t close = MatchForward(t, open);
        if (close < t.size()) calls.push_back({close, callee});
      }
      continue;
    }
    if (!IsLambdaIntro(t, i)) continue;
    size_t close = MatchForward(t, i);
    if (close >= t.size()) continue;
    LambdaInfo lam;
    lam.intro = i;
    lam.line = t[i].line;
    // Capture list entries, split on top-level commas.
    size_t entry = i + 1;
    int depth = 0;
    auto flush_entry = [&lam, &t](size_t begin, size_t end) {
      if (begin >= end) return;
      bool ref = false;
      std::string name;
      for (size_t k = begin; k < end; ++k) {
        if (IsPunct(t, k, "&") && name.empty()) ref = true;
        if (IsPunct(t, k, "=")) break;  // init-capture: name is fixed
        if (t[k].kind == TokKind::kIdent && name.empty()) name = t[k].text;
      }
      if (name.empty()) {
        if (ref) lam.default_ref = true;
        return;
      }
      if (name == "this") {
        lam.captures_this = true;
      } else if (ref) {
        lam.by_ref.insert(name);
      } else {
        lam.by_val.insert(name);
      }
    };
    for (size_t k = i + 1; k <= close && k < t.size(); ++k) {
      if (t[k].kind == TokKind::kPunct) {
        if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{" ||
            t[k].text == "<") {
          ++depth;
        } else if (t[k].text == ")" || t[k].text == "}" || t[k].text == ">") {
          --depth;
        }
        if ((t[k].text == "," && depth == 0) || k == close) {
          if (k == i + 1 && k == close) break;  // empty []
          if (entry == i + 1 && k == close && entry < k &&
              IsPunct(t, entry, "=") && k - entry == 1) {
            lam.default_copy = true;
          } else {
            // A lone '&' / '=' entry is a capture default.
            if (k - entry == 1 && IsPunct(t, entry, "&")) {
              lam.default_ref = true;
            } else if (k - entry == 1 && IsPunct(t, entry, "=")) {
              lam.default_copy = true;
            } else {
              flush_entry(entry, k);
            }
          }
          entry = k + 1;
        }
      }
    }
    // Parameter list, then specifiers, then the body.
    size_t j = close + 1;
    if (IsPunct(t, j, "(")) {
      size_t pclose = MatchForward(t, j);
      if (pclose < t.size()) {
        int pdepth = 0;
        std::string last_ident;
        for (size_t k = j + 1; k < pclose; ++k) {
          if (t[k].kind == TokKind::kPunct) {
            if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{" ||
                t[k].text == "<") {
              ++pdepth;
            } else if (t[k].text == ")" || t[k].text == "]" ||
                       t[k].text == "}" || t[k].text == ">") {
              --pdepth;
            } else if (t[k].text == "," && pdepth == 0) {
              if (!last_ident.empty()) lam.params.push_back(last_ident);
              last_ident.clear();
            }
            continue;
          }
          if (t[k].kind == TokKind::kIdent && pdepth == 0 &&
              t[k].text != "const") {
            last_ident = t[k].text;
          }
        }
        if (!last_ident.empty()) lam.params.push_back(last_ident);
        j = pclose + 1;
      }
    }
    size_t limit = j + 24;
    while (j < t.size() && j < limit && !IsPunct(t, j, "{") &&
           !IsPunct(t, j, ";") && !IsPunct(t, j, ")") &&
           !IsPunct(t, j, ",")) {
      ++j;
    }
    if (j >= t.size() || !IsPunct(t, j, "{")) continue;
    lam.body_begin = j;
    lam.body_end = MatchForward(t, j);
    if (lam.body_end >= t.size()) continue;
    if (!calls.empty()) lam.region = calls.back().kind;
    if (!open_lambdas.empty()) lam.enclosing = open_lambdas.back();
    lam.parallel = lam.region != RegionKind::kNone ||
                   (lam.enclosing != static_cast<size_t>(-1) &&
                    out[lam.enclosing].parallel);
    out.push_back(lam);
    open_lambdas.push_back(out.size() - 1);
    i = lam.body_begin;  // continue scanning inside the body
  }
  return out;
}

FileModel BuildModel(const LexedFile& f) {
  FileModel model;
  const std::vector<Token>& t = f.tokens;

  struct ClassCtx {
    std::string name;
    int depth;  // brace depth of the class body
  };
  std::vector<ClassCtx> class_stack;
  int depth = 0;
  // Pending scope openings decided by lookahead when the keyword is seen.
  // Values: line-less markers consumed at the next '{' of that lookahead.
  enum class Pending { kNone, kClass, kTransparent };
  struct PendingOpen {
    Pending kind;
    std::string class_name;
  };
  std::vector<PendingOpen> pending;  // consumed in order at each '{'

  size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "namespace" ||
          (tok.text == "extern" && i + 1 < t.size() &&
           t[i + 1].kind == TokKind::kString)) {
        // `namespace [name] {` / `extern "C" {`: transparent scope.
        for (size_t j = i + 1; j < t.size() && j < i + 8; ++j) {
          if (IsPunct(t, j, ";") || IsPunct(t, j, "=")) break;
          if (IsPunct(t, j, "{")) {
            pending.push_back({Pending::kTransparent, ""});
            break;
          }
        }
        ++i;
        continue;
      }
      if ((tok.text == "class" || tok.text == "struct" ||
           tok.text == "union" || tok.text == "enum") &&
          !(i > 0 && IsIdent(t, i - 1, "enum"))) {
        // Find the body '{' (forward declarations and parameter uses have
        // a ';' or ')' first). The class name is the last plain ident at
        // paren-depth 0 before '{', ':' (base clause) or 'final'.
        std::string cls;
        int paren = 0;
        bool is_class = false;
        for (size_t j = i + 1; j < t.size() && j < i + 96; ++j) {
          if (t[j].kind == TokKind::kPunct) {
            if (t[j].text == "(") ++paren;
            else if (t[j].text == ")") { if (--paren < 0) break; }
            else if (paren == 0 && (t[j].text == ";" )) break;
            else if (paren == 0 && t[j].text == ":") {
              // base clause begins; name is fixed
              for (size_t k = j + 1; k < t.size() && k < j + 64; ++k) {
                if (IsPunct(t, k, "{")) { is_class = true; break; }
                if (IsPunct(t, k, ";")) break;
              }
              break;
            } else if (paren == 0 && t[j].text == "{") {
              is_class = true;
              break;
            }
          } else if (t[j].kind == TokKind::kIdent && paren == 0 &&
                     t[j].text != "final" && t[j].text != "alignas") {
            cls = t[j].text;
          }
        }
        if (is_class) {
          pending.push_back(
              {tok.text == "enum" ? Pending::kTransparent : Pending::kClass,
               cls});
        }
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokKind::kPunct) {
      ++i;
      continue;
    }
    if (tok.text == "{") {
      if (!pending.empty()) {
        PendingOpen p = pending.front();
        pending.erase(pending.begin());
        ++depth;
        if (p.kind == Pending::kClass) {
          class_stack.push_back({p.class_name, depth});
        }
        ++i;
        continue;
      }
      // Unclaimed '{' at namespace/class scope: function body candidate
      // (or an aggregate initializer, which ClassifyBrace rejects).
      std::string name, qual;
      if (ClassifyBrace(t, i, &name, &qual)) {
        FunctionInfo fn;
        fn.name = name;
        fn.class_name =
            !qual.empty() ? qual
                          : (!class_stack.empty() ? class_stack.back().name
                                                  : std::string());
        fn.qualified =
            fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
        fn.body_begin = i;
        fn.body_end = MatchForward(t, i);
        if (fn.body_end < t.size()) ++fn.body_end;
        // Locate the name token (walk back; best effort for diagnostics).
        fn.name_tok = i;
        for (size_t j = i; j-- > 0 && j + 256 > i;) {
          if (t[j].kind == TokKind::kIdent && t[j].text == name) {
            fn.name_tok = j;
            break;
          }
        }
        fn.line = t[fn.name_tok].line;
        model.functions.push_back(fn);
        i = fn.body_end;  // bodies are opaque to the model walk
        continue;
      }
      // Aggregate initializer or something unrecognized: skip the group so
      // its contents do not confuse class tracking.
      size_t end = MatchForward(t, i);
      i = end < t.size() ? end + 1 : t.size();
      continue;
    }
    if (tok.text == "}") {
      if (!class_stack.empty() && class_stack.back().depth == depth) {
        class_stack.pop_back();
      }
      --depth;
      ++i;
      continue;
    }
    ++i;
  }
  return model;
}

}  // namespace analyze
