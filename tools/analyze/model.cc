#include "analyze/model.h"

#include <set>

namespace analyze {

namespace {

const char* kOpenOf(const std::string& close) {
  if (close == ")") return "(";
  if (close == "}") return "{";
  if (close == "]") return "[";
  return nullptr;
}
const char* kCloseOf(const std::string& open) {
  if (open == "(") return ")";
  if (open == "{") return "}";
  if (open == "[") return "]";
  return nullptr;
}

/// Thread-safety annotation macros that may sit between a parameter list
/// and the function body; each takes an optional argument list.
bool IsAnnotationMacro(const std::string& s) {
  static const std::set<std::string> kMacros = {
      "ACQUIRE",        "ACQUIRE_SHARED",  "RELEASE",   "RELEASE_SHARED",
      "TRY_ACQUIRE",    "REQUIRES",        "REQUIRES_SHARED",
      "EXCLUDES",       "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
      "NO_THREAD_SAFETY_ANALYSIS", "GUARDED_BY", "noexcept", "decltype",
      "throw"};
  return kMacros.count(s) > 0;
}

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",   "while", "switch",  "catch", "return",
      "sizeof", "alignof", "new", "delete",  "do",    "else",
      "try",    "static_assert", "alignas",  "case"};
  return kKeywords.count(s) > 0;
}

}  // namespace

size_t MatchForward(const std::vector<Token>& t, size_t open_idx) {
  const std::string& open = t[open_idx].text;
  const char* close = kCloseOf(open);
  if (close == nullptr) return t.size();
  int nest = 0;
  for (size_t i = open_idx; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == open) ++nest;
    else if (t[i].text == close && --nest == 0) return i;
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t close_idx) {
  const std::string& close = t[close_idx].text;
  const char* open = kOpenOf(close);
  if (open == nullptr) return SIZE_MAX;
  int nest = 0;
  for (size_t i = close_idx + 1; i-- > 0;) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == close) ++nest;
    else if (t[i].text == open && --nest == 0) return i;
  }
  return SIZE_MAX;
}

namespace {

/// Walks backward from the body's `{` to decide whether it opens a
/// function definition, and if so extracts name + class qualifier.
/// Handles parameter lists, cv/ref/noexcept/override specifiers,
/// thread-safety annotation macros, trailing return types, and
/// constructor initializer lists (paren and brace entries).
bool ClassifyBrace(const std::vector<Token>& t, size_t brace,
                   std::string* name, std::string* qual_class) {
  size_t j = brace;
  int guard = 0;
  while (j-- > 0) {
    if (++guard > 4096) return false;  // pathological; give up
    const Token& tok = t[j];
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "const" || tok.text == "override" ||
          tok.text == "final" || tok.text == "mutable" ||
          tok.text == "noexcept" || tok.text == "try") {
        continue;
      }
      // Trailing return type: `-> Type {`.
      if (j > 0 && IsPunct(t, j - 1, "->")) {
        --j;  // consume the '->' as well
        continue;
      }
      return false;  // `do {`, `else {`, type before brace-init, ...
    }
    if (tok.kind != TokKind::kPunct) return false;
    if (tok.text == "&" || tok.text == "&&" || tok.text == ">") {
      continue;  // ref-qualifier / trailing-return template args (loose)
    }
    if (tok.text == ")" || tok.text == "}") {
      size_t open = MatchBackward(t, j);
      if (open == SIZE_MAX || open == 0) return false;
      size_t before = open - 1;
      if (t[before].kind == TokKind::kIdent) {
        const std::string& cand = t[before].text;
        if (IsAnnotationMacro(cand)) {
          j = before;  // annotation macro: keep walking left
          continue;
        }
        if (before > 0 &&
            (IsPunct(t, before - 1, ":") || IsPunct(t, before - 1, ","))) {
          // Constructor init-list entry `a_(x)` / `b_{y}`: skip the entry
          // and its separator, keep walking toward the parameter list.
          j = before - 1;
          continue;
        }
        if (IsControlKeyword(cand)) return false;
        // This is the parameter list and `cand` the function name.
        *name = cand;
        *qual_class = "";
        if (before > 0 && IsPunct(t, before - 1, "::")) {
          size_t q = before - 2;
          if (q < t.size() && IsPunct(t, q, ">")) {
            size_t lt = MatchBackward(t, q);
            if (lt != SIZE_MAX && lt > 0) q = lt - 1;
          }
          if (q < t.size() && t[q].kind == TokKind::kIdent) {
            *qual_class = t[q].text;
          }
        }
        return true;
      }
      if (t[before].kind == TokKind::kPunct && before > 0 &&
          IsIdent(t, before - 1, "operator")) {
        *name = "operator" + t[before].text;
        *qual_class = "";
        if (before > 1 && IsPunct(t, before - 2, "::") && before > 2 &&
            t[before - 3].kind == TokKind::kIdent) {
          *qual_class = t[before - 3].text;
        }
        return true;
      }
      return false;  // lambda, array subscript, macro soup
    }
    if (tok.text == ":") {
      // `: base_clause {` on a constructor with an empty init list is
      // already covered by the entry walk; a bare `:` here is a label or
      // class base clause — not a function.
      return false;
    }
    return false;  // '=', ';', '{', ','... — initializer or aggregate
  }
  return false;
}

}  // namespace

FileModel BuildModel(const LexedFile& f) {
  FileModel model;
  const std::vector<Token>& t = f.tokens;

  struct ClassCtx {
    std::string name;
    int depth;  // brace depth of the class body
  };
  std::vector<ClassCtx> class_stack;
  int depth = 0;
  // Pending scope openings decided by lookahead when the keyword is seen.
  // Values: line-less markers consumed at the next '{' of that lookahead.
  enum class Pending { kNone, kClass, kTransparent };
  struct PendingOpen {
    Pending kind;
    std::string class_name;
  };
  std::vector<PendingOpen> pending;  // consumed in order at each '{'

  size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "namespace" ||
          (tok.text == "extern" && i + 1 < t.size() &&
           t[i + 1].kind == TokKind::kString)) {
        // `namespace [name] {` / `extern "C" {`: transparent scope.
        for (size_t j = i + 1; j < t.size() && j < i + 8; ++j) {
          if (IsPunct(t, j, ";") || IsPunct(t, j, "=")) break;
          if (IsPunct(t, j, "{")) {
            pending.push_back({Pending::kTransparent, ""});
            break;
          }
        }
        ++i;
        continue;
      }
      if ((tok.text == "class" || tok.text == "struct" ||
           tok.text == "union" || tok.text == "enum") &&
          !(i > 0 && IsIdent(t, i - 1, "enum"))) {
        // Find the body '{' (forward declarations and parameter uses have
        // a ';' or ')' first). The class name is the last plain ident at
        // paren-depth 0 before '{', ':' (base clause) or 'final'.
        std::string cls;
        int paren = 0;
        bool is_class = false;
        for (size_t j = i + 1; j < t.size() && j < i + 96; ++j) {
          if (t[j].kind == TokKind::kPunct) {
            if (t[j].text == "(") ++paren;
            else if (t[j].text == ")") { if (--paren < 0) break; }
            else if (paren == 0 && (t[j].text == ";" )) break;
            else if (paren == 0 && t[j].text == ":") {
              // base clause begins; name is fixed
              for (size_t k = j + 1; k < t.size() && k < j + 64; ++k) {
                if (IsPunct(t, k, "{")) { is_class = true; break; }
                if (IsPunct(t, k, ";")) break;
              }
              break;
            } else if (paren == 0 && t[j].text == "{") {
              is_class = true;
              break;
            }
          } else if (t[j].kind == TokKind::kIdent && paren == 0 &&
                     t[j].text != "final" && t[j].text != "alignas") {
            cls = t[j].text;
          }
        }
        if (is_class) {
          pending.push_back(
              {tok.text == "enum" ? Pending::kTransparent : Pending::kClass,
               cls});
        }
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokKind::kPunct) {
      ++i;
      continue;
    }
    if (tok.text == "{") {
      if (!pending.empty()) {
        PendingOpen p = pending.front();
        pending.erase(pending.begin());
        ++depth;
        if (p.kind == Pending::kClass) {
          class_stack.push_back({p.class_name, depth});
        }
        ++i;
        continue;
      }
      // Unclaimed '{' at namespace/class scope: function body candidate
      // (or an aggregate initializer, which ClassifyBrace rejects).
      std::string name, qual;
      if (ClassifyBrace(t, i, &name, &qual)) {
        FunctionInfo fn;
        fn.name = name;
        fn.class_name =
            !qual.empty() ? qual
                          : (!class_stack.empty() ? class_stack.back().name
                                                  : std::string());
        fn.qualified =
            fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
        fn.body_begin = i;
        fn.body_end = MatchForward(t, i);
        if (fn.body_end < t.size()) ++fn.body_end;
        // Locate the name token (walk back; best effort for diagnostics).
        fn.name_tok = i;
        for (size_t j = i; j-- > 0 && j + 256 > i;) {
          if (t[j].kind == TokKind::kIdent && t[j].text == name) {
            fn.name_tok = j;
            break;
          }
        }
        fn.line = t[fn.name_tok].line;
        model.functions.push_back(fn);
        i = fn.body_end;  // bodies are opaque to the model walk
        continue;
      }
      // Aggregate initializer or something unrecognized: skip the group so
      // its contents do not confuse class tracking.
      size_t end = MatchForward(t, i);
      i = end < t.size() ? end + 1 : t.size();
      continue;
    }
    if (tok.text == "}") {
      if (!class_stack.empty() && class_stack.back().depth == depth) {
        class_stack.pop_back();
      }
      --depth;
      ++i;
      continue;
    }
    ++i;
  }
  return model;
}

}  // namespace analyze
