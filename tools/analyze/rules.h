// The scholar_analyze dataflow rules. Per-file rules take the lexed
// file + scope model (+ the global index where cross-file name resolution
// is needed); lock-order and guard-consistency are whole-program and run
// once over the merged index. The parallel-region pack (shared-mutation,
// dangling-capture, atomic-confinement, guard-consistency) reasons about
// the repo's own parallel primitives — ParallelFor bodies, ThreadPool
// Submit/Schedule lambdas, std::thread constructors — via
// model.h's FindLambdas classification.

#ifndef SCHOLAR_ANALYZE_RULES_H_
#define SCHOLAR_ANALYZE_RULES_H_

#include <string>
#include <utility>
#include <vector>

#include "analyze/core.h"
#include "analyze/index.h"
#include "analyze/model.h"

namespace analyze {

/// unchecked-status: a call to a Status / Result<T>-returning function
/// whose value is neither assigned, returned, nor inspected. Discarding
/// via `(void)` or `static_cast<void>` is also flagged — the analyzer is
/// the audit trail, so silent casts are not an escape hatch (use
/// `// NOLINT(unchecked-status): reason`).
void CheckUncheckedStatus(const LexedFile& f, const FileModel& model,
                          const GlobalIndex& gi, std::vector<Finding>* out);

/// hot-loop-alloc: allocation (new/malloc/make_unique), container growth
/// (push_back/resize/reserve/...), and string construction inside loops of
/// the ranking hot path (src/rank/kernel/, src/rank/*.cc,
/// src/stream/frontier_rank.cc). Loops and functions under an
/// `// analyze:init-scope` marker are exempt; so are return/throw
/// statements (cold error paths).
void CheckHotLoopAlloc(const LexedFile& f, const FileModel& model,
                       std::vector<Finding>* out);

/// determinism: (a) iteration over unordered containers in score-affecting
/// subsystems (src/rank/, src/ensemble/, src/stream/, src/serve/) —
/// iteration order varies across libstdc++ versions and hash seeds, so it
/// must never flow into scores, snapshots, or wire output; (b) wall-clock
/// and libc PRNG calls anywhere outside src/util/rng.
void CheckDeterminism(const LexedFile& f, const FileModel& model,
                      const GlobalIndex& gi, std::vector<Finding>* out);

/// lock-order: builds the cross-file mutex acquisition graph (direct
/// MutexLock sites plus transitive may-acquire sets through calls) and
/// reports every cycle with a witness path, plus direct self-deadlocks.
std::vector<Finding> CheckLockOrder(const GlobalIndex& gi);

/// shared-mutation: a write (assignment, compound assignment, ++/--)
/// through a by-reference capture inside a parallel lambda body, with no
/// Mutex held at the site, no std::atomic declaration for the name, and
/// no per-chunk subscript on the write — the sharing shapes the
/// deterministic ParallelFor contract forbids.
void CheckSharedMutation(const LexedFile& f, const FileModel& model,
                         const GlobalIndex& gi, std::vector<Finding>* out);

/// dangling-capture: a lambda that captures locals (or `this`-adjacent
/// stack state) by reference and escapes its defining scope — handed to
/// ThreadPool::Submit/Schedule or std::thread directly, stored into a
/// member, returned, or passed to a function whose may-outlive summary
/// (GlobalIndex::fn_arg_escapers) says the callable outlives the call.
void CheckDanglingCapture(const LexedFile& f, const FileModel& model,
                          const GlobalIndex& gi, std::vector<Finding>* out);

/// atomic-confinement: explicit std::memory_order_{relaxed,acquire,
/// release,acq_rel,consume} arguments outside the audited modules
/// (src/serve/latency_histogram*, src/util/thread_pool*) must carry a
/// reasoned NOLINT. Everywhere else, default seq_cst is the contract.
void CheckAtomicConfinement(const LexedFile& f, const FileModel& model,
                            std::vector<Finding>* out);

/// guard-consistency: a member field accessed under a MutexLock in at
/// least one function but bare in another function reachable from a
/// parallel context (cross-TU, via the merged field-access summaries and
/// a parallel-reachability fixpoint over the call graph).
std::vector<Finding> CheckGuardConsistency(const GlobalIndex& gi);

/// stale-nolint: audits every reason-carrying NOLINT naming a
/// parallel-pack rule (FileIndex::audited_nolints) against the findings
/// actually produced this run — including suppressed ones. A marker that
/// no longer suppresses anything is itself a violation. `findings` must
/// contain the pre-filter set (nolint_suppressed entries included);
/// `indexes` pairs each normalized path with its FileIndex.
std::vector<Finding> CheckStaleNolints(
    const std::vector<std::pair<std::string, const FileIndex*>>& indexes,
    const std::vector<Finding>& findings);

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_RULES_H_
