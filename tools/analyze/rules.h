// The four scholar_analyze dataflow rules. Per-file rules take the lexed
// file + scope model (+ the global index where cross-file name resolution
// is needed); lock-order is whole-program and runs once over the merged
// index.

#ifndef SCHOLAR_ANALYZE_RULES_H_
#define SCHOLAR_ANALYZE_RULES_H_

#include <vector>

#include "analyze/core.h"
#include "analyze/index.h"
#include "analyze/model.h"

namespace analyze {

/// unchecked-status: a call to a Status / Result<T>-returning function
/// whose value is neither assigned, returned, nor inspected. Discarding
/// via `(void)` or `static_cast<void>` is also flagged — the analyzer is
/// the audit trail, so silent casts are not an escape hatch (use
/// `// NOLINT(unchecked-status): reason`).
void CheckUncheckedStatus(const LexedFile& f, const FileModel& model,
                          const GlobalIndex& gi, std::vector<Finding>* out);

/// hot-loop-alloc: allocation (new/malloc/make_unique), container growth
/// (push_back/resize/reserve/...), and string construction inside loops of
/// the ranking hot path (src/rank/kernel/, src/rank/*.cc,
/// src/stream/frontier_rank.cc). Loops and functions under an
/// `// analyze:init-scope` marker are exempt; so are return/throw
/// statements (cold error paths).
void CheckHotLoopAlloc(const LexedFile& f, const FileModel& model,
                       std::vector<Finding>* out);

/// determinism: (a) iteration over unordered containers in score-affecting
/// subsystems (src/rank/, src/ensemble/, src/stream/, src/serve/) —
/// iteration order varies across libstdc++ versions and hash seeds, so it
/// must never flow into scores, snapshots, or wire output; (b) wall-clock
/// and libc PRNG calls anywhere outside src/util/rng.
void CheckDeterminism(const LexedFile& f, const FileModel& model,
                      const GlobalIndex& gi, std::vector<Finding>* out);

/// lock-order: builds the cross-file mutex acquisition graph (direct
/// MutexLock sites plus transitive may-acquire sets through calls) and
/// reports every cycle with a witness path, plus direct self-deadlocks.
std::vector<Finding> CheckLockOrder(const GlobalIndex& gi);

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_RULES_H_
