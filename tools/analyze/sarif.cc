// SARIF 2.1.0 writer. Hand-rolled JSON emission (no JSON library in the
// toolchain); every dynamic string goes through Escape so the output is
// valid JSON for any finding message.

#include "analyze/output.h"

#include <cstdio>
#include <fstream>

namespace analyze {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleMeta {
  const char* id;
  const char* desc;
};

const RuleMeta kRules[] = {
    {"unchecked-status",
     "Status/Result<T> return values must be assigned, returned, or "
     "inspected; void casts are flagged too."},
    {"hot-loop-alloc",
     "No allocation, container growth, or string construction inside "
     "ranking hot-path loops (init-scope exempt)."},
    {"lock-order",
     "The cross-file mutex acquisition graph must be acyclic; acquiring a "
     "held mutex is a self-deadlock."},
    {"determinism",
     "No unordered-container iteration in order-sensitive subsystems and "
     "no wall-clock/PRNG calls outside src/util/rng."},
    {"shared-mutation",
     "By-ref captures written inside parallel bodies (ParallelFor, "
     "ThreadPool::Submit, std::thread) need a Mutex, a std::atomic, or a "
     "per-chunk subscript."},
    {"dangling-capture",
     "A by-ref-capturing lambda must not escape its defining scope via "
     "Submit/Schedule, std::thread, member storage, containers, return, or "
     "a callee whose may-outlive summary escapes its callable argument."},
    {"atomic-confinement",
     "Explicit weak memory orders (relaxed/acquire/release/acq_rel/"
     "consume) are confined to src/serve/latency_histogram* and "
     "src/util/thread_pool*; elsewhere they need a reasoned NOLINT."},
    {"guard-consistency",
     "A field accessed under a MutexLock in one function must not be "
     "accessed bare in code reachable from a parallel context (cross-TU, "
     "annotation-free)."},
    {"stale-nolint",
     "A reason-carrying NOLINT naming a parallel-pack rule must still "
     "suppress a live finding; stale markers are violations."},
};

}  // namespace

bool WriteSarif(const std::string& path,
                const std::vector<Finding>& findings) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"scholar_analyze\",\n"
     << "          \"informationUri\": \"tools/scholar_analyze.cc\",\n"
     << "          \"version\": \"1.0.0\",\n"
     << "          \"rules\": [\n";
  for (size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    os << "            {\"id\": \"" << kRules[i].id
       << "\", \"shortDescription\": {\"text\": \"" << Escape(kRules[i].desc)
       << "\"}}" << (i + 1 < sizeof(kRules) / sizeof(kRules[0]) ? "," : "")
       << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << Escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << Escape(f.message)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \""
       << Escape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
       << "}}}\n"
       << "          ],\n"
       << "          \"partialFingerprints\": {\"scholarLineHash/v1\": \"";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(f.line_hash));
    os << buf << "\"}";
    if (f.baseline_suppressed) {
      os << ",\n          \"suppressions\": [{\"kind\": \"external\"}]";
    }
    os << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return static_cast<bool>(os);
}

}  // namespace analyze
