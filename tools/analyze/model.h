// Scope model: function boundaries, enclosing-class context, and token
// matching helpers shared by every scholar_analyze rule. This is what the
// token-level scholar_lint cannot see — rules here reason per function
// body, with class context for qualifying members (mutexes, callees).

#ifndef SCHOLAR_ANALYZE_MODEL_H_
#define SCHOLAR_ANALYZE_MODEL_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analyze/core.h"

namespace analyze {

/// One function definition (free function, out-of-line method, or inline
/// in-class method). Token indexes point into LexedFile::tokens.
struct FunctionInfo {
  std::string name;        // simple name: "Shutdown"
  std::string class_name;  // enclosing/qualifying class, "" for free fns
  std::string qualified;   // "ThreadPool::Shutdown" / "RunPowerLoop"
  int line = 0;            // line of the name token
  size_t name_tok = 0;     // index of the name token
  size_t body_begin = 0;   // index of the body '{'
  size_t body_end = 0;     // index one past the matching '}'
};

struct FileModel {
  std::vector<FunctionInfo> functions;
};

/// Extracts every function definition with its class context. Function
/// bodies are opaque at this level (no nested definitions are reported);
/// rules walk [body_begin, body_end) themselves.
FileModel BuildModel(const LexedFile& f);

/// How a lambda came to run (or not) on another thread. The analyzer
/// models the repo's own parallel primitives, not the standard library at
/// large: these are the only ways code in this codebase goes parallel.
enum class RegionKind {
  kNone,         // plain lambda — runs on the defining thread
  kParallelFor,  // argument of ParallelFor / ParallelForChunks (blocking:
                 // the call joins before returning)
  kSubmit,       // argument of ThreadPool::Submit / Schedule — escapes the
                 // defining scope and runs on a pool worker
  kThread,       // std::thread constructor body (EventLoop workers and the
                 // CLI watcher use this shape)
};

/// One lambda expression inside a function body, with its capture list,
/// parameter names, and parallel-execution classification. `parallel` is
/// transitive: a lambda defined inside a parallel body inherits it (it can
/// only ever run on that worker thread).
struct LambdaInfo {
  size_t intro = 0;       // index of the '[' token
  size_t body_begin = 0;  // index of the body '{'
  size_t body_end = 0;    // index of the matching '}'
  int line = 0;           // line of the intro
  RegionKind region = RegionKind::kNone;
  bool parallel = false;  // region != kNone, or enclosing lambda parallel
  bool default_ref = false;   // [&]
  bool default_copy = false;  // [=]
  bool captures_this = false;
  std::set<std::string> by_ref;  // explicit &name captures
  std::set<std::string> by_val;  // explicit name / name=expr captures
  std::vector<std::string> params;
  size_t enclosing = static_cast<size_t>(-1);  // index into the result
};

/// Finds every lambda in `fn`'s body and classifies it against the repo's
/// parallel primitives (see RegionKind). Results are ordered by intro
/// token, so enclosing lambdas precede nested ones.
std::vector<LambdaInfo> FindLambdas(const LexedFile& f,
                                    const FunctionInfo& fn);

/// Names of `fn`'s parameters, in order (best effort: the last identifier
/// of each top-level parameter-list entry before `,`/`)` or `=`).
std::vector<std::string> ParamNames(const std::vector<Token>& t,
                                    const FunctionInfo& fn);

/// Heuristic from the lock-summary walk: a '[' opens a lambda introducer
/// unless the previous token reads as a value (subscript).
bool IsLambdaIntro(const std::vector<Token>& t, size_t i);

/// Index of the token matching the opener at `open_idx` ("(" -> ")",
/// "{" -> "}", "[" -> "]", "<" -> ">"), or tokens.size() when unbalanced.
size_t MatchForward(const std::vector<Token>& t, size_t open_idx);

/// Index of the token matching the closer at `close_idx`, scanning
/// backward, or SIZE_MAX when unbalanced.
size_t MatchBackward(const std::vector<Token>& t, size_t close_idx);

inline bool IsIdent(const std::vector<Token>& t, size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
}
inline bool IsPunct(const std::vector<Token>& t, size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_MODEL_H_
