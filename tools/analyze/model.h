// Scope model: function boundaries, enclosing-class context, and token
// matching helpers shared by every scholar_analyze rule. This is what the
// token-level scholar_lint cannot see — rules here reason per function
// body, with class context for qualifying members (mutexes, callees).

#ifndef SCHOLAR_ANALYZE_MODEL_H_
#define SCHOLAR_ANALYZE_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/core.h"

namespace analyze {

/// One function definition (free function, out-of-line method, or inline
/// in-class method). Token indexes point into LexedFile::tokens.
struct FunctionInfo {
  std::string name;        // simple name: "Shutdown"
  std::string class_name;  // enclosing/qualifying class, "" for free fns
  std::string qualified;   // "ThreadPool::Shutdown" / "RunPowerLoop"
  int line = 0;            // line of the name token
  size_t name_tok = 0;     // index of the name token
  size_t body_begin = 0;   // index of the body '{'
  size_t body_end = 0;     // index one past the matching '}'
};

struct FileModel {
  std::vector<FunctionInfo> functions;
};

/// Extracts every function definition with its class context. Function
/// bodies are opaque at this level (no nested definitions are reported);
/// rules walk [body_begin, body_end) themselves.
FileModel BuildModel(const LexedFile& f);

/// Index of the token matching the opener at `open_idx` ("(" -> ")",
/// "{" -> "}", "[" -> "]", "<" -> ">"), or tokens.size() when unbalanced.
size_t MatchForward(const std::vector<Token>& t, size_t open_idx);

/// Index of the token matching the closer at `close_idx`, scanning
/// backward, or SIZE_MAX when unbalanced.
size_t MatchBackward(const std::vector<Token>& t, size_t close_idx);

inline bool IsIdent(const std::vector<Token>& t, size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
}
inline bool IsPunct(const std::vector<Token>& t, size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_MODEL_H_
