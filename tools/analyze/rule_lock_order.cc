// lock-order: whole-program mutex acquisition graph.
//
// From each function's lock summary (index.cc) the rule derives ordering
// edges `held -> acquired`:
//  - direct: a MutexLock on `m` while `h` is held adds h -> m;
//  - transitive: a call made while `h` is held adds h -> m for every `m`
//    the callee may acquire, where may-acquire is the fixpoint of direct
//    acquisitions propagated through the (name-resolved) call graph.
// A cycle in this graph is a potential ABBA deadlock; the finding carries
// the full witness path. Acquiring a mutex already in the held set is
// reported directly as a self-deadlock (Mutex is non-reentrant).
//
// Name resolution is by simple callee name, so virtual dispatch and
// function pointers resolve to every same-named summary — deliberately
// over-approximate: lock graphs should be judged against any plausible
// callee. A site audited as safe is excluded with
// `// NOLINT(lock-order): reason` on the acquisition or call line, which
// removes that site's edges from the graph.

#include "analyze/rules.h"

#include <algorithm>
#include <functional>

namespace analyze {

namespace {

struct Witness {
  std::string file;
  int line = 0;
  uint64_t line_hash = 0;
  std::string desc;  // "Fn (file:line) acquires m while holding h"
};

using EdgeMap = std::map<std::pair<std::string, std::string>, Witness>;

}  // namespace

std::vector<Finding> CheckLockOrder(const GlobalIndex& gi) {
  std::vector<Finding> out;

  // May-acquire fixpoint over the call graph.
  std::vector<std::set<std::string>> may_acquire(gi.summaries.size());
  for (size_t i = 0; i < gi.summaries.size(); ++i) {
    for (const LockAcq& a : gi.summaries[i].acqs) may_acquire[i].insert(a.mutex);
  }
  for (int pass = 0; pass < 20; ++pass) {
    bool changed = false;
    for (size_t i = 0; i < gi.summaries.size(); ++i) {
      for (const LockCall& c : gi.summaries[i].calls) {
        auto it = gi.by_simple.find(c.callee);
        if (it == gi.by_simple.end()) continue;
        for (size_t callee : it->second) {
          for (const std::string& m : may_acquire[callee]) {
            if (may_acquire[i].insert(m).second) changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  EdgeMap edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           Witness w) {
    auto key = std::make_pair(from, to);
    if (edges.find(key) == edges.end()) edges.emplace(key, std::move(w));
  };

  for (size_t i = 0; i < gi.summaries.size(); ++i) {
    const FnSummary& fn = gi.summaries[i];
    for (const LockAcq& a : fn.acqs) {
      if (a.suppressed) continue;
      for (const std::string& h : a.held) {
        std::string site = fn.qualified + " (" + fn.file + ":" +
                           std::to_string(a.line) + ")";
        if (h == a.mutex) {
          out.push_back({"lock-order", fn.file, a.line, a.line_hash,
                         "self-deadlock: " + site + " acquires '" + a.mutex +
                             "' which is already held (Mutex is "
                             "non-reentrant)",
                         false});
          continue;
        }
        add_edge(h, a.mutex,
                 {fn.file, a.line, a.line_hash,
                  site + " acquires '" + a.mutex + "' holding '" + h + "'"});
      }
    }
    for (const LockCall& c : fn.calls) {
      if (c.suppressed || c.held.empty()) continue;
      auto it = gi.by_simple.find(c.callee);
      if (it == gi.by_simple.end()) continue;
      std::set<std::string> callee_acquires;
      for (size_t callee : it->second) {
        callee_acquires.insert(may_acquire[callee].begin(),
                               may_acquire[callee].end());
      }
      for (const std::string& m : callee_acquires) {
        for (const std::string& h : c.held) {
          // h == m through a call is usually a different object of the
          // same class (name-level aliasing); only the direct case above
          // is a confident self-deadlock.
          if (h == m) continue;
          add_edge(h, m,
                   {fn.file, c.line, c.line_hash,
                    fn.qualified + " (" + fn.file + ":" +
                        std::to_string(c.line) + ") calls '" + c.callee +
                        "' which may acquire '" + m + "' holding '" + h +
                        "'"});
        }
      }
    }
  }

  // Adjacency + cycle enumeration. Each elementary cycle is discovered
  // from its lexicographically smallest node only, so duplicates (and
  // rotations) are never reported twice.
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::string> nodes;
  for (const auto& e : edges) {
    adj[e.first.first].push_back(e.first.second);
    nodes.insert(e.first.first);
    nodes.insert(e.first.second);
  }
  for (auto& a : adj) std::sort(a.second.begin(), a.second.end());

  std::set<std::string> reported_keys;
  std::vector<std::string> path;

  std::function<void(const std::string&, const std::string&)> dfs =
      [&](const std::string& start, const std::string& cur) {
        if (path.size() > 16) return;  // depth guard; graphs here are tiny
        auto it = adj.find(cur);
        if (it == adj.end()) return;
        for (const std::string& next : it->second) {
          if (next == start) {
            std::string key;
            for (const std::string& n : path) key += n + "->";
            if (!reported_keys.insert(key).second) continue;
            // Build the witness message around the cycle.
            std::string msg = "lock-order cycle: ";
            const Witness* first_site = nullptr;
            for (size_t k = 0; k < path.size(); ++k) {
              const std::string& from = path[k];
              const std::string& to = path[(k + 1) % path.size()];
              const Witness& w = edges.at({from, to});
              if (first_site == nullptr) first_site = &w;
              msg += "'" + from + "' -> '" + to + "' [" + w.desc + "]";
              if (k + 1 < path.size()) msg += ", ";
            }
            out.push_back({"lock-order", first_site->file, first_site->line,
                           first_site->line_hash, msg, false});
            continue;
          }
          if (next < start) continue;  // cycle owned by a smaller start
          if (std::find(path.begin(), path.end(), next) != path.end()) {
            continue;
          }
          path.push_back(next);
          dfs(start, next);
          path.pop_back();
        }
      };

  for (const std::string& n : nodes) {
    path.assign(1, n);
    dfs(n, n);
  }
  path.clear();

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

}  // namespace analyze
