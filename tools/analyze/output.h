// Output sinks of scholar_analyze: SARIF 2.1.0 export, the line-hash
// baseline, and the per-file content-hash result cache.

#ifndef SCHOLAR_ANALYZE_OUTPUT_H_
#define SCHOLAR_ANALYZE_OUTPUT_H_

#include <map>
#include <string>
#include <vector>

#include "analyze/core.h"
#include "analyze/index.h"

namespace analyze {

/// Writes a SARIF 2.1.0 log with one run and one result per finding.
/// Baseline-suppressed findings are emitted with
/// `suppressions: [{kind: "external"}]` so SARIF viewers show them as
/// reviewed. Returns false on I/O failure.
bool WriteSarif(const std::string& path, const std::vector<Finding>& findings);

/// Baseline file: one `rule <path> <hex-line-hash>` entry per accepted
/// finding. Matching is by (rule, file, line fingerprint) — immune to
/// line-number churn, broken by any edit to the flagged line itself.
class Baseline {
 public:
  /// Loads entries; a missing file is an empty baseline (ok=true).
  /// Malformed lines make Load return false.
  bool Load(const std::string& path);

  /// Marks findings present in the baseline (consuming multiset entries)
  /// and returns the number suppressed.
  size_t Apply(std::vector<Finding>* findings) const;

  static bool Write(const std::string& path,
                    const std::vector<Finding>& findings);

 private:
  std::map<std::string, int> entries_;  // serialized key -> multiplicity
};

/// Per-file result cache, keyed by content hash. Two levels:
///  - the file's index contribution (Status fns, unordered idents, lock
///    summaries) is valid whenever the file's own bytes are unchanged;
///  - the file's findings are valid only when additionally the *global*
///    index signature matches, since rules resolve names cross-file.
struct CacheEntry {
  uint64_t file_hash = 0;
  FileIndex index;
  uint64_t findings_sig = 0;  // global signature the findings were made under
  bool has_findings = false;
  std::vector<Finding> findings;  // per-file rule findings only
};

class Cache {
 public:
  /// Loads the cache; unreadable or version-mismatched files load empty.
  void Load(const std::string& path);
  bool Save(const std::string& path) const;

  const CacheEntry* Lookup(const std::string& norm_path,
                           uint64_t file_hash) const;
  void Put(const std::string& norm_path, CacheEntry entry);

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_OUTPUT_H_
