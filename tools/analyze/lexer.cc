// Tokenizer for scholar_analyze. Derived from scholar_lint's lexer with
// three analyzer-specific behaviors:
//
//  - NOLINT markers are honored only at the *start* of a comment and only
//    in the reason-carrying form `NOLINT(rule-a,rule-b): reason`. A doc
//    sentence that merely mentions NOLINT(...) mid-comment is not a
//    suppression (scholar_lint had that latent foot-gun; the analyzer
//    never did).
//  - `analyze:init-scope` comment markers are recorded per line; the
//    hot-loop-alloc rule uses them to exempt init-phase loops/functions.
//  - Raw source lines are retained so findings can fingerprint their line
//    content for the baseline file.

#include "analyze/core.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses one comment body (delimiters included) for the analyzer's
/// markers. `line` is the comment's first line.
void ScanComment(const std::string& comment, int line, LexedFile* out) {
  if (comment.find("analyze:init-scope") != std::string::npos) {
    out->init_markers.insert(line);
  }
  // A suppression must lead the comment: skip the delimiter and decoration
  // characters, then expect NOLINT immediately.
  size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  for (size_t i = 0; i < pos; ++i) {
    char c = comment[i];
    if (c != '/' && c != '*' && c != '!' && c != '<' && c != ' ' && c != '\t') {
      return;  // prose before NOLINT: a mention, not a marker
    }
  }
  size_t after = pos + 6;  // strlen("NOLINT")
  if (after >= comment.size() || comment[after] != '(') return;  // bare NOLINT is scholar_lint's dialect
  size_t close = comment.find(')', after);
  if (close == std::string::npos) return;
  Nolint marker;
  std::string list = comment.substr(after + 1, close - after - 1);
  std::string rule;
  std::istringstream ss(list);
  while (std::getline(ss, rule, ',')) {
    size_t b = rule.find_first_not_of(" \t");
    size_t e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) marker.rules.insert(rule.substr(b, e - b + 1));
  }
  if (marker.rules.empty()) return;
  // The reason: `): <non-empty text>` after the rule list.
  size_t r = close + 1;
  if (r < comment.size() && comment[r] == ':') {
    ++r;
    while (r < comment.size() &&
           (comment[r] == ' ' || comment[r] == '\t')) {
      ++r;
    }
    // Anything alphanumeric after the colon counts as a reason; trailing
    // comment-closers alone do not.
    while (r < comment.size()) {
      char c = comment[r];
      if (std::isalnum(static_cast<unsigned char>(c))) {
        marker.has_reason = true;
        break;
      }
      ++r;
    }
  }
  auto it = out->nolints.find(line);
  if (it == out->nolints.end()) {
    out->nolints[line] = std::move(marker);
  } else {
    it->second.rules.insert(marker.rules.begin(), marker.rules.end());
    it->second.has_reason = it->second.has_reason && marker.has_reason;
  }
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  out.norm_path = NormalizePath(path);
  {
    std::istringstream ls(text);
    std::string line;
    while (std::getline(ls, line)) out.lines.push_back(line);
  }
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](size_t k) -> char { return i + k < n ? text[i + k] : '\0'; };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      ScanComment(text.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = text.substr(i, end - i);
      ScanComment(body, line, &out);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end == n ? n : end + 2;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive: consume to end of line (honoring \-splices);
    // record #include targets. Trailing comments on the directive line are
    // still scanned so a NOLINT works there.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      size_t d = j;
      while (d < n && IsIdentChar(text[d])) ++d;
      const std::string directive = text.substr(j, d - j);
      if (directive == "include") {
        size_t p = d;
        while (p < n && (text[p] == ' ' || text[p] == '\t')) ++p;
        if (p < n && (text[p] == '"' || text[p] == '<')) {
          const char closer = text[p] == '"' ? '"' : '>';
          size_t close = text.find(closer, p + 1);
          if (close != std::string::npos) {
            out.includes.push_back(
                {text.substr(p + 1, close - p - 1), text[p] == '"', line});
          }
        }
      }
      const int directive_line = line;
      size_t comment_at = std::string::npos;
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '/' && peek(1) == '/' && comment_at == std::string::npos) {
          comment_at = i;
        }
        ++i;
      }
      if (comment_at != std::string::npos) {
        ScanComment(text.substr(comment_at, i - comment_at), directive_line,
                    &out);
      }
      continue;
    }
    at_line_start = false;
    // String literal (incl. raw strings).
    if (c == '"' || (c == 'R' && peek(1) == '"')) {
      if (c == 'R' && peek(1) == '"') {
        size_t open = text.find('(', i + 2);
        if (open == std::string::npos) {
          out.tokens.push_back({TokKind::kIdent, "R", line});
          ++i;
          continue;
        }
        const std::string delim = text.substr(i + 2, open - (i + 2));
        const std::string closer = ")" + delim + "\"";
        size_t end = text.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        const std::string body = text.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.tokens.push_back({TokKind::kString, "<raw-string>", line});
        i = end == n ? n : end + closer.size();
        continue;
      }
      size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back({TokKind::kString, "<string>", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back({TokKind::kChar, "<char>", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (pp-number incl. digit separators and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t j = i;
      while (j < n) {
        char d = text[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; fuse the two-char operators the rules care about.
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "::", "->",
                                     "&&", "||", "++", "--", "+=", "-=",
                                     "*=", "/=", "<<", ">>"};
    std::string p(1, c);
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        p = op;
        break;
      }
    }
    out.tokens.push_back({TokKind::kPunct, p, line});
    i += p.size();
  }
  return out;
}

}  // namespace analyze
