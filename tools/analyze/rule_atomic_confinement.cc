// atomic-confinement: explicit weak memory orders stay in the audited
// modules.
//
// `std::memory_order_relaxed` and friends are correct only relative to a
// documented happens-before argument; scattered across the codebase they
// rot into cargo-culted "fast atomics". Two modules have that argument
// written down and reviewed — the serving tier's latency histogram
// (monotone counters, read-mostly snapshots) and the ThreadPool /
// parallel-iteration internals pinned by their drain protocols. Those
// paths are allowlisted wholesale... except that parallel_for lives
// outside the allowlist on purpose: its fences are subtle enough that
// each site carries its own reasoned NOLINT instead (see
// src/util/parallel_for.cc — the audit trail is per-site there).
//
// Everywhere else, the default seq_cst is the contract; a weak order
// needs `// NOLINT(atomic-confinement): <happens-before argument>`.

#include "analyze/rules.h"

namespace analyze {

namespace {

bool IsWeakOrderName(const std::string& s) {
  return s == "memory_order_relaxed" || s == "memory_order_acquire" ||
         s == "memory_order_release" || s == "memory_order_acq_rel" ||
         s == "memory_order_consume" || s == "relaxed" || s == "acquire" ||
         s == "release" || s == "acq_rel" || s == "consume";
}

/// Modules whose weak-order use is audited as a unit.
bool IsAllowlisted(const std::string& path) {
  for (const char* prefix :
       {"src/serve/latency_histogram", "src/util/thread_pool"}) {
    if (path.compare(0, std::string(prefix).size(), prefix) == 0) return true;
  }
  return false;
}

}  // namespace

void CheckAtomicConfinement(const LexedFile& f, const FileModel& model,
                            std::vector<Finding>* out) {
  (void)model;
  if (IsAllowlisted(f.norm_path)) return;
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    std::string order;
    if (s.compare(0, 13, "memory_order_") == 0 && IsWeakOrderName(s)) {
      order = s;
    } else if (s == "memory_order" && IsPunct(t, i + 1, "::") &&
               i + 2 < t.size() && t[i + 2].kind == TokKind::kIdent &&
               IsWeakOrderName(t[i + 2].text)) {
      order = "memory_order::" + t[i + 2].text;  // C++20 scoped spelling
    } else {
      continue;
    }
    reporter.Report(
        t[i].line, "atomic-confinement",
        "'" + order +
            "' outside the audited modules "
            "(src/serve/latency_histogram*, src/util/thread_pool*); weak "
            "memory orders need a happens-before argument — use default "
            "seq_cst, or keep the order and record the argument in a "
            "NOLINT(atomic-confinement) reason");
  }
}

}  // namespace analyze
