// Baseline gating: `tools/analyze_baseline.txt` lists accepted findings
// as `rule path hex-line-hash`. The hash is of the trimmed source line, so
// an entry keeps matching when unrelated edits shift line numbers, and
// stops matching (re-raising the finding) the moment the flagged line
// itself changes. The checked-in baseline is empty — every finding was
// fixed or NOLINT'd with a reason at merge — but the mechanism lets a
// future large refactor land incrementally without losing the gate.

#include "analyze/output.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace analyze {

namespace {

std::string Key(const std::string& rule, const std::string& file,
                uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return rule + " " + file + " " + buf;
}

}  // namespace

bool Baseline::Load(const std::string& path) {
  entries_.clear();
  std::ifstream is(path);
  if (!is) return true;  // no baseline file == empty baseline
  std::string line;
  while (std::getline(is, line)) {
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    if (line[b] == '#') continue;
    std::istringstream ls(line);
    std::string rule, file, hash;
    if (!(ls >> rule >> file >> hash) || hash.size() != 16 ||
        hash.find_first_not_of("0123456789abcdef") != std::string::npos) {
      return false;
    }
    ++entries_[rule + " " + file + " " + hash];
  }
  return true;
}

size_t Baseline::Apply(std::vector<Finding>* findings) const {
  std::map<std::string, int> remaining = entries_;
  size_t suppressed = 0;
  for (Finding& f : *findings) {
    auto it = remaining.find(Key(f.rule, f.file, f.line_hash));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      f.baseline_suppressed = true;
      ++suppressed;
    }
  }
  return suppressed;
}

bool Baseline::Write(const std::string& path,
                     const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  for (const Finding& f : findings) {
    if (!f.baseline_suppressed) keys.push_back(Key(f.rule, f.file, f.line_hash));
  }
  std::sort(keys.begin(), keys.end());
  std::ofstream os(path);
  if (!os) return false;
  os << "# scholar_analyze baseline: rule path line-content-hash\n"
     << "# Regenerate with: scholar_analyze --write-baseline=" << path
     << " <files>\n";
  for (const std::string& k : keys) os << k << "\n";
  return static_cast<bool>(os);
}

}  // namespace analyze
