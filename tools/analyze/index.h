// Cross-file index for scholar_analyze.
//
// Pass 1 of the analyzer: every file contributes (a) the names of
// functions returning Status / Result<T>, (b) identifiers declared with an
// unordered container type, and (c) a per-function lock summary — which
// mutexes are acquired (MutexLock), which are required at entry
// (REQUIRES), and which functions are called while which mutexes are
// held. Pass 2 rules consume the merged GlobalIndex: unchecked-status
// resolves call targets against (a), determinism resolves member
// containers against (b), and lock-order builds the whole-program mutex
// acquisition graph from (c).
//
// FileIndex is serialized into the content-hash cache, so unchanged files
// contribute to the global index without being re-lexed.

#ifndef SCHOLAR_ANALYZE_INDEX_H_
#define SCHOLAR_ANALYZE_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/core.h"
#include "analyze/model.h"

namespace analyze {

/// One MutexLock acquisition site inside a function.
struct LockAcq {
  std::string mutex;              // normalized name ("ThreadPool::mu_")
  int line = 0;
  uint64_t line_hash = 0;         // baseline fingerprint of the site
  bool suppressed = false;        // NOLINT(lock-order): reason on the line
  std::vector<std::string> held;  // mutexes held when acquiring
};

/// One call site inside a function, with the lock context at the call.
struct LockCall {
  std::string callee;             // simple name ("Shutdown")
  int line = 0;
  uint64_t line_hash = 0;
  bool suppressed = false;
  std::vector<std::string> held;
};

/// Lock behavior of one function.
struct FnSummary {
  std::string qualified;  // "ThreadPool::Shutdown"
  std::string simple;     // "Shutdown"
  std::string file;       // normalized path
  int line = 0;
  std::vector<std::string> entry_held;  // REQUIRES(...) mutexes
  std::vector<LockAcq> acqs;
  std::vector<LockCall> calls;
};

/// Per-file contribution to the global index.
struct FileIndex {
  std::set<std::string> status_fns;       // functions returning Status
  std::set<std::string> result_fns;       // functions returning Result<T>
  std::set<std::string> unordered_local;  // all unordered-declared idents
  std::vector<FnSummary> summaries;
};

/// Merged view over every file.
struct GlobalIndex {
  std::set<std::string> status_fns;
  std::set<std::string> result_fns;
  /// Member-style ('_'-suffixed) unordered identifiers from any file —
  /// members are declared in headers but iterated in .cc files.
  std::set<std::string> unordered_members;
  std::vector<FnSummary> summaries;  // all files
  std::map<std::string, std::vector<size_t>> by_simple;  // name -> indexes

  void Merge(const FileIndex& fi);
  void Finalize();  // builds by_simple
};

/// Builds one file's contribution (pass 1).
FileIndex BuildFileIndex(const LexedFile& f, const FileModel& model);

/// Stable serialization of a FileIndex, used both by the cache and to
/// compute the global signature that keys cached findings.
std::string SerializeFileIndex(const FileIndex& fi);

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_INDEX_H_
