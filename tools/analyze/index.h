// Cross-file index for scholar_analyze.
//
// Pass 1 of the analyzer: every file contributes (a) the names of
// functions returning Status / Result<T>, (b) identifiers declared with an
// unordered container type, and (c) a per-function lock summary — which
// mutexes are acquired (MutexLock), which are required at entry
// (REQUIRES), and which functions are called while which mutexes are
// held. Pass 2 rules consume the merged GlobalIndex: unchecked-status
// resolves call targets against (a), determinism resolves member
// containers against (b), and lock-order builds the whole-program mutex
// acquisition graph from (c).
//
// FileIndex is serialized into the content-hash cache, so unchanged files
// contribute to the global index without being re-lexed.

#ifndef SCHOLAR_ANALYZE_INDEX_H_
#define SCHOLAR_ANALYZE_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/core.h"
#include "analyze/model.h"

namespace analyze {

/// One MutexLock acquisition site inside a function.
struct LockAcq {
  std::string mutex;              // normalized name ("ThreadPool::mu_")
  int line = 0;
  uint64_t line_hash = 0;         // baseline fingerprint of the site
  bool suppressed = false;        // NOLINT(lock-order): reason on the line
  std::vector<std::string> held;  // mutexes held when acquiring
};

/// One call site inside a function, with the lock context at the call.
struct LockCall {
  std::string callee;             // simple name ("Shutdown")
  int line = 0;
  uint64_t line_hash = 0;
  bool suppressed = false;
  bool in_parallel = false;       // call site is inside a parallel lambda
  std::vector<std::string> held;
};

/// One member-field ('_'-suffixed identifier) access inside a member
/// function, with the lock context at the site. Feeds guard-consistency:
/// a field guarded somewhere but bare in a parallel-reachable function.
struct FieldAccess {
  std::string field;              // class-qualified: "EventLoop::stopping_"
  int line = 0;
  uint64_t line_hash = 0;
  bool guarded = false;           // some mutex held at the access
  bool in_parallel = false;       // access is inside a parallel lambda body
  bool suppressed = false;        // reasoned guard-consistency marker here
};

/// Lock behavior of one function.
struct FnSummary {
  std::string qualified;  // "ThreadPool::Shutdown"
  std::string simple;     // "Shutdown"
  std::string file;       // normalized path
  int line = 0;
  std::vector<std::string> entry_held;  // REQUIRES(...) mutexes
  std::vector<LockAcq> acqs;
  std::vector<LockCall> calls;
  std::vector<FieldAccess> fields;
  /// The function stores a function-typed parameter beyond its own frame
  /// (Submit/Schedule, member assignment, container push, return). Feeds
  /// the may-outlive fixpoint behind dangling-capture.
  bool sink_escapes = false;
  /// Callees this function forwards a function-typed parameter to; escape
  /// propagates backward through these edges.
  std::set<std::string> forward_calls;
};

/// Per-file contribution to the global index.
struct FileIndex {
  std::set<std::string> status_fns;       // functions returning Status
  std::set<std::string> result_fns;       // functions returning Result<T>
  std::set<std::string> unordered_local;  // all unordered-declared idents
  std::set<std::string> atomic_names;     // idents declared std::atomic<...>
  /// Reason-carrying NOLINT markers naming parallel-pack rules, by line.
  /// Kept in the index (and thus the cache) so the stale-nolint audit can
  /// run over files whose findings came from cache without re-lexing.
  struct AuditedNolint {
    std::set<std::string> rules;
    uint64_t line_hash = 0;  // baseline fingerprint of the marker's line
  };
  std::map<int, AuditedNolint> audited_nolints;
  std::vector<FnSummary> summaries;
};

/// Merged view over every file.
struct GlobalIndex {
  std::set<std::string> status_fns;
  std::set<std::string> result_fns;
  /// Member-style ('_'-suffixed) unordered identifiers from any file —
  /// members are declared in headers but iterated in .cc files.
  std::set<std::string> unordered_members;
  /// Member-style std::atomic identifiers — declared in headers, written
  /// in .cc files, so atomic-ness must cross the file boundary too.
  std::set<std::string> atomic_members;
  /// Simple names of functions whose function-typed argument may outlive
  /// the call (directly or through forwarding). Built by Finalize.
  std::set<std::string> fn_arg_escapers;
  std::vector<FnSummary> summaries;  // all files
  std::map<std::string, std::vector<size_t>> by_simple;  // name -> indexes

  void Merge(const FileIndex& fi);
  void Finalize();  // builds by_simple and the may-outlive fixpoint
};

/// The four parallel-pack rules whose suppressions the analyzer audits
/// itself (see FileIndex::audited_nolints and the stale-nolint rule).
bool IsParallelPackRule(const std::string& rule);

/// Builds one file's contribution (pass 1).
FileIndex BuildFileIndex(const LexedFile& f, const FileModel& model);

/// Stable serialization of a FileIndex, used both by the cache and to
/// compute the global signature that keys cached findings.
std::string SerializeFileIndex(const FileIndex& fi);

}  // namespace analyze

#endif  // SCHOLAR_ANALYZE_INDEX_H_
