// unchecked-status: error values must not fall on the floor.
//
// The rule walks each function body as a sequence of statements. A
// statement that is nothing but a call chain whose final callee returns
// Status or Result<T> — with the value neither assigned, returned,
// compared, nor passed onward — is a dropped error. `(void)expr` and
// `static_cast<void>(expr)` wrappers are flagged too: with [[nodiscard]]
// on Status/Result the compiler already rejects plain discards, and the
// cast is how people silence the compiler without leaving an audit trail.

#include "analyze/rules.h"

namespace analyze {

namespace {

/// Identifiers that begin declarations / control flow, not discardable
/// call-chain statements.
bool IsStmtKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "if",       "else",    "for",      "while",   "do",
      "switch",   "case",     "default", "break",    "continue", "goto",
      "throw",    "delete",   "new",     "using",    "typedef", "static",
      "const",    "constexpr", "auto",   "void",     "int",     "bool",
      "char",     "float",    "double",  "long",     "short",   "unsigned",
      "signed",   "size_t",   "int64_t", "uint64_t", "int32_t", "uint32_t",
      "class",    "struct",   "enum",    "union",    "namespace",
      "template", "try",      "catch",   "co_return", "co_await", "co_yield",
      "sizeof",   "public",   "private", "protected", "friend",  "extern",
      "inline",   "volatile", "mutable", "operator", "thread_local"};
  return kKeywords.count(s) > 0;
}

}  // namespace

void CheckUncheckedStatus(const LexedFile& f, const FileModel& model,
                          const GlobalIndex& gi, std::vector<Finding>* out) {
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  auto in_sets = [&gi](const std::string& name) {
    return gi.status_fns.count(name) > 0 || gi.result_fns.count(name) > 0;
  };

  for (const FunctionInfo& fn : model.functions) {
    // Statement starts: after '{', '}', ';', 'else', 'do', and after the
    // ')' that closes an if/for/while/switch condition.
    std::set<size_t> stmt_starts;
    bool expect = true;
    for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (expect) stmt_starts.insert(i);
      const Token& tok = t[i];
      if (tok.kind == TokKind::kPunct) {
        expect = tok.text == "{" || tok.text == "}" || tok.text == ";";
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        if (tok.text == "else" || tok.text == "do") {
          expect = true;
          continue;
        }
        if ((tok.text == "if" || tok.text == "for" || tok.text == "while" ||
             tok.text == "switch") &&
            IsPunct(t, i + 1, "(")) {
          size_t close = MatchForward(t, i + 1);
          if (close < t.size()) stmt_starts.insert(close + 1);
        }
      }
      expect = false;
    }

    for (size_t s : stmt_starts) {
      if (s >= fn.body_end || s >= t.size()) continue;
      bool discard_cast = false;
      size_t i = s;
      // `(void)` C-style cast prefix.
      if (IsPunct(t, i, "(") && IsIdent(t, i + 1, "void") &&
          IsPunct(t, i + 2, ")")) {
        discard_cast = true;
        i += 3;
      } else if (IsIdent(t, i, "static_cast") && IsPunct(t, i + 1, "<") &&
                 IsIdent(t, i + 2, "void") && IsPunct(t, i + 3, ">") &&
                 IsPunct(t, i + 4, "(")) {
        discard_cast = true;
        i += 5;
      }
      // Call chain: [::] ident ((:: | . | ->) ident)* '(' ... ')'
      // possibly continued with .member(...) links.
      if (IsPunct(t, i, "::")) ++i;
      if (i >= t.size() || t[i].kind != TokKind::kIdent ||
          IsStmtKeyword(t[i].text)) {
        continue;
      }
      std::string last = t[i].text;
      size_t pos = i + 1;
      while (pos + 1 < t.size() && t[pos].kind == TokKind::kPunct &&
             (t[pos].text == "::" || t[pos].text == "." ||
              t[pos].text == "->") &&
             t[pos + 1].kind == TokKind::kIdent) {
        last = t[pos + 1].text;
        pos += 2;
      }
      if (!IsPunct(t, pos, "(")) continue;
      // Follow the chain through further member calls: `f().status()...`.
      int final_line = t[pos].line;
      while (true) {
        size_t close = MatchForward(t, pos);
        if (close >= t.size()) break;
        size_t nxt = close + 1;
        if (nxt + 2 < t.size() && t[nxt].kind == TokKind::kPunct &&
            (t[nxt].text == "." || t[nxt].text == "->") &&
            t[nxt + 1].kind == TokKind::kIdent && IsPunct(t, nxt + 2, "(")) {
          last = t[nxt + 1].text;
          final_line = t[nxt + 1].line;
          pos = nxt + 2;
          continue;
        }
        // Terminal link of the chain.
        if (in_sets(last)) {
          const char* kind =
              gi.result_fns.count(last) > 0 ? "Result" : "Status";
          if (discard_cast) {
            reporter.Report(
                final_line, "unchecked-status",
                "'" + last + "' returns " + kind +
                    " but the value is discarded with a void cast; handle "
                    "it or suppress with NOLINT(unchecked-status): reason");
          } else if (IsPunct(t, nxt, ";")) {
            reporter.Report(
                final_line, "unchecked-status",
                "result of '" + last + "' (" + kind +
                    ") is ignored; assign, return, or inspect it");
          }
        }
        break;
      }
    }
  }
}

}  // namespace analyze
