#include "analyze/index.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace analyze {

namespace {

bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kNotCalls = {
      "if",       "for",      "while",    "switch",   "return",  "sizeof",
      "alignof",  "decltype", "noexcept", "catch",    "new",     "delete",
      "throw",    "alignas",  "static_assert",        "co_await", "co_return",
      "assert",   "defined",  "typeid",   "case",     "do",      "else",
      // Thread-safety annotation macros are attributes, not calls.
      "ACQUIRE",  "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
      "TRY_ACQUIRE", "REQUIRES", "REQUIRES_SHARED", "EXCLUDES",
      "ASSERT_CAPABILITY", "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
      "GUARDED_BY"};
  return kNotCalls.count(s) > 0;
}

/// Skips a template argument list: `i` points at '<'; returns the index
/// one past the matching '>'. The lexer fuses '>>', which closes two
/// levels. Gives up (returns i + 1) if the list does not close locally.
size_t SkipTemplateArgs(const std::vector<Token>& t, size_t i) {
  int nest = 0;
  for (size_t j = i; j < t.size() && j < i + 256; ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++nest;
    else if (t[j].text == "<<") nest += 2;
    else if (t[j].text == ">") { if (--nest <= 0) return j + 1; }
    else if (t[j].text == ">>") { nest -= 2; if (nest <= 0) return j + 1; }
    else if (t[j].text == ";" || t[j].text == "{") break;  // not template args
  }
  return i + 1;
}

/// Collects names of functions declared or defined as returning Status or
/// Result<...>: patterns `Status NAME (`, `Status Cls :: NAME (`,
/// `Result < ... > NAME (`, `Result < ... > Cls :: NAME (`.
void CollectStatusFns(const std::vector<Token>& t, FileIndex* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool is_status = t[i].text == "Status";
    const bool is_result = t[i].text == "Result";
    if (!is_status && !is_result) continue;
    size_t j = i + 1;
    if (is_result) {
      if (!IsPunct(t, j, "<")) continue;
      j = SkipTemplateArgs(t, j);
    }
    // Identifier chain `A :: B :: NAME` ending right before '('.
    std::string name;
    while (j < t.size() && t[j].kind == TokKind::kIdent) {
      name = t[j].text;
      if (IsPunct(t, j + 1, "::")) {
        j += 2;
        continue;
      }
      ++j;
      break;
    }
    if (name.empty() || !IsPunct(t, j, "(")) continue;
    // `Status :: OK (` and friends are calls, not declarations.
    if (IsPunct(t, i + 1, "::") && is_status) continue;
    if (is_status) out->status_fns.insert(name);
    else out->result_fns.insert(name);
  }
}

/// Collects identifiers declared with an unordered container type:
/// `std::unordered_map<...> NAME` / `std::unordered_set<...> NAME`.
void CollectUnordered(const std::vector<Token>& t, FileIndex* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
        t[i].text != "unordered_multimap" && t[i].text != "unordered_multiset") {
      continue;
    }
    size_t j = i + 1;
    if (!IsPunct(t, j, "<")) continue;
    j = SkipTemplateArgs(t, j);
    // Skip ref/pointer declarators.
    while (j < t.size() && t[j].kind == TokKind::kPunct &&
           (t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        t[j].text != "const") {
      out->unordered_local.insert(t[j].text);
    }
  }
}

/// Renders a mutex expression (the tokens of a MutexLock / REQUIRES
/// argument) to a stable name. Member-style single identifiers (trailing
/// '_') are qualified with the enclosing class so that `mu_` in
/// ThreadPool::Shutdown and `mu_` in SnapshotManager::Get are distinct
/// lock-order graph nodes.
std::string NormalizeMutex(const std::vector<Token>& t, size_t begin,
                           size_t end, const std::string& class_name) {
  std::vector<const Token*> toks;
  for (size_t j = begin; j < end; ++j) {
    if (IsPunct(t, j, "&") && toks.empty()) continue;  // MutexLock l(&mu_)
    if (IsIdent(t, j, "this")) {
      // `this->mu_` == `mu_`: drop `this` and the following arrow.
      if (IsPunct(t, j + 1, "->")) ++j;
      continue;
    }
    toks.push_back(&t[j]);
  }
  if (toks.empty()) return "";
  if (toks.size() == 1 && toks[0]->kind == TokKind::kIdent) {
    const std::string& id = toks[0]->text;
    if (!class_name.empty() && !id.empty() && id.back() == '_') {
      return class_name + "::" + id;
    }
    return id;
  }
  std::string joined;
  for (const Token* tok : toks) {
    if (!joined.empty() && tok->kind == TokKind::kIdent &&
        std::isalnum(static_cast<unsigned char>(joined.back()))) {
      joined += ' ';
    }
    joined += tok->text;
  }
  return joined;
}

bool NolintedFor(const LexedFile& f, int line, const char* rule) {
  auto it = f.nolints.find(line);
  return it != f.nolints.end() && it->second.rules.count(rule) > 0 &&
         it->second.has_reason;
}

/// Builds the lock summary of one function: REQUIRES entry-held mutexes,
/// MutexLock acquisitions with the held set at each site, and call sites
/// with the held set. Lambda bodies get a cleared held set — they
/// typically run deferred on another thread (thread-pool workers), where
/// the lexically enclosing guard is not held.
FnSummary Summarize(const LexedFile& f, const FunctionInfo& fn) {
  const std::vector<Token>& t = f.tokens;
  FnSummary s;
  s.qualified = fn.qualified;
  s.simple = fn.name;
  s.file = f.norm_path;
  s.line = fn.line;

  // REQUIRES(...) between the name and the body opens the held set.
  for (size_t i = fn.name_tok; i < fn.body_begin; ++i) {
    if (!IsIdent(t, i, "REQUIRES") && !IsIdent(t, i, "REQUIRES_SHARED")) {
      continue;
    }
    if (!IsPunct(t, i + 1, "(")) continue;
    size_t close = MatchForward(t, i + 1);
    size_t arg_begin = i + 2;
    int paren = 0;
    bool negated = false;
    for (size_t j = i + 2; j <= close && j < t.size(); ++j) {
      if (IsPunct(t, j, "(")) ++paren;
      else if (IsPunct(t, j, ")") && j != close) --paren;
      if (IsPunct(t, j, "!")) negated = true;  // negative capability
      if ((IsPunct(t, j, ",") && paren == 0) || j == close) {
        if (!negated) {
          std::string m = NormalizeMutex(t, arg_begin, j, fn.class_name);
          if (!m.empty()) s.entry_held.push_back(m);
        }
        arg_begin = j + 1;
        negated = false;
      }
    }
    i = close;
  }

  struct Held {
    std::string mutex;
    int depth;
  };
  std::vector<Held> held;
  for (const std::string& m : s.entry_held) held.push_back({m, 0});
  struct LambdaFrame {
    size_t end;                // token index of the body's '}'
    std::vector<Held> saved;   // held set to restore
  };
  std::vector<LambdaFrame> lambdas;
  int depth = 0;

  auto held_names = [&held]() {
    std::vector<std::string> names;
    names.reserve(held.size());
    for (const Held& h : held) names.push_back(h.mutex);
    return names;
  };

  size_t i = fn.body_begin;
  while (i < fn.body_end && i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
        ++i;
        continue;
      }
      if (tok.text == "}") {
        while (!held.empty() && held.back().depth == depth) held.pop_back();
        if (!lambdas.empty() && lambdas.back().end == i) {
          held = std::move(lambdas.back().saved);
          lambdas.pop_back();
        }
        --depth;
        ++i;
        continue;
      }
      if (tok.text == "[") {
        // Lambda introducer? Subscripts follow a value (ident/]/)/literal).
        bool subscript = false;
        if (i > 0) {
          const Token& prev = t[i - 1];
          subscript = prev.kind == TokKind::kIdent ||
                      prev.kind == TokKind::kNumber ||
                      prev.kind == TokKind::kString ||
                      (prev.kind == TokKind::kPunct &&
                       (prev.text == ")" || prev.text == "]"));
        }
        if (!subscript) {
          size_t close = MatchForward(t, i);
          size_t j = close + 1;
          if (IsPunct(t, j, "(")) j = MatchForward(t, j) + 1;
          // Specifiers / trailing return before the body.
          size_t limit = j + 24;
          while (j < t.size() && j < limit && !IsPunct(t, j, "{") &&
                 !IsPunct(t, j, ";") && !IsPunct(t, j, ")") &&
                 !IsPunct(t, j, ",")) {
            ++j;
          }
          if (j < t.size() && IsPunct(t, j, "{")) {
            lambdas.push_back({MatchForward(t, j), held});
            held.clear();
            depth++;  // accounts for the body '{' we now step past
            i = j + 1;
            continue;
          }
        }
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      ++i;
      continue;
    }
    if (tok.text == "MutexLock" && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kIdent && IsPunct(t, i + 2, "(")) {
      size_t close = MatchForward(t, i + 2);
      std::string m = NormalizeMutex(t, i + 3, close, fn.class_name);
      if (!m.empty()) {
        LockAcq acq;
        acq.mutex = m;
        acq.line = tok.line;
        acq.line_hash = LineFingerprint(f, tok.line);
        acq.suppressed = NolintedFor(f, tok.line, "lock-order");
        acq.held = held_names();
        s.acqs.push_back(acq);
        held.push_back({m, depth});
      }
      i = close + 1;
      continue;
    }
    if (IsPunct(t, i + 1, "(") && !IsCallKeyword(tok.text)) {
      if (s.calls.size() < 512) {
        LockCall call;
        call.callee = tok.text;
        call.line = tok.line;
        call.line_hash = LineFingerprint(f, tok.line);
        call.suppressed = NolintedFor(f, tok.line, "lock-order");
        call.held = held_names();
        s.calls.push_back(call);
      }
      ++i;
      continue;
    }
    ++i;
  }
  return s;
}

std::string JoinCsv(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += ',';
    out += s;
  }
  return out;
}

/// '|' and newlines are the serialization delimiters; mutex/callee names
/// come from source tokens, so they cannot contain either — but guard
/// anyway so a hostile input cannot corrupt the cache format.
std::string Sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '|' || c == '\n' || c == '\r') c = '?';
  }
  return out;
}

}  // namespace

FileIndex BuildFileIndex(const LexedFile& f, const FileModel& model) {
  FileIndex fi;
  CollectStatusFns(f.tokens, &fi);
  CollectUnordered(f.tokens, &fi);
  for (const FunctionInfo& fn : model.functions) {
    fi.summaries.push_back(Summarize(f, fn));
  }
  return fi;
}

void GlobalIndex::Merge(const FileIndex& fi) {
  status_fns.insert(fi.status_fns.begin(), fi.status_fns.end());
  result_fns.insert(fi.result_fns.begin(), fi.result_fns.end());
  for (const std::string& id : fi.unordered_local) {
    if (!id.empty() && id.back() == '_') unordered_members.insert(id);
  }
  summaries.insert(summaries.end(), fi.summaries.begin(), fi.summaries.end());
}

void GlobalIndex::Finalize() {
  by_simple.clear();
  for (size_t i = 0; i < summaries.size(); ++i) {
    by_simple[summaries[i].simple].push_back(i);
  }
}

std::string SerializeFileIndex(const FileIndex& fi) {
  std::ostringstream os;
  for (const std::string& s : fi.status_fns) os << "S " << Sanitize(s) << '\n';
  for (const std::string& s : fi.result_fns) os << "R " << Sanitize(s) << '\n';
  for (const std::string& s : fi.unordered_local) {
    os << "U " << Sanitize(s) << '\n';
  }
  for (const FnSummary& fn : fi.summaries) {
    os << "D " << Sanitize(fn.qualified) << '|' << Sanitize(fn.simple) << '|'
       << Sanitize(fn.file) << '|' << fn.line << '|';
    std::vector<std::string> req;
    for (const std::string& m : fn.entry_held) req.push_back(Sanitize(m));
    os << JoinCsv(req) << '\n';
    for (const LockAcq& a : fn.acqs) {
      std::vector<std::string> h;
      for (const std::string& m : a.held) h.push_back(Sanitize(m));
      os << "A " << Sanitize(a.mutex) << '|' << a.line << '|' << std::hex
         << a.line_hash << std::dec << '|' << (a.suppressed ? 1 : 0) << '|'
         << JoinCsv(h) << '\n';
    }
    for (const LockCall& c : fn.calls) {
      std::vector<std::string> h;
      for (const std::string& m : c.held) h.push_back(Sanitize(m));
      os << "C " << Sanitize(c.callee) << '|' << c.line << '|' << std::hex
         << c.line_hash << std::dec << '|' << (c.suppressed ? 1 : 0) << '|'
         << JoinCsv(h) << '\n';
    }
  }
  return os.str();
}

}  // namespace analyze
