#include "analyze/index.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace analyze {

namespace {

bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kNotCalls = {
      "if",       "for",      "while",    "switch",   "return",  "sizeof",
      "alignof",  "decltype", "noexcept", "catch",    "new",     "delete",
      "throw",    "alignas",  "static_assert",        "co_await", "co_return",
      "assert",   "defined",  "typeid",   "case",     "do",      "else",
      // Thread-safety annotation macros are attributes, not calls.
      "ACQUIRE",  "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
      "TRY_ACQUIRE", "REQUIRES", "REQUIRES_SHARED", "EXCLUDES",
      "ASSERT_CAPABILITY", "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
      "GUARDED_BY"};
  return kNotCalls.count(s) > 0;
}

/// Skips a template argument list: `i` points at '<'; returns the index
/// one past the matching '>'. The lexer fuses '>>', which closes two
/// levels. Gives up (returns i + 1) if the list does not close locally.
size_t SkipTemplateArgs(const std::vector<Token>& t, size_t i) {
  int nest = 0;
  for (size_t j = i; j < t.size() && j < i + 256; ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++nest;
    else if (t[j].text == "<<") nest += 2;
    else if (t[j].text == ">") { if (--nest <= 0) return j + 1; }
    else if (t[j].text == ">>") { nest -= 2; if (nest <= 0) return j + 1; }
    else if (t[j].text == ";" || t[j].text == "{") break;  // not template args
  }
  return i + 1;
}

/// Collects names of functions declared or defined as returning Status or
/// Result<...>: patterns `Status NAME (`, `Status Cls :: NAME (`,
/// `Result < ... > NAME (`, `Result < ... > Cls :: NAME (`.
void CollectStatusFns(const std::vector<Token>& t, FileIndex* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool is_status = t[i].text == "Status";
    const bool is_result = t[i].text == "Result";
    if (!is_status && !is_result) continue;
    size_t j = i + 1;
    if (is_result) {
      if (!IsPunct(t, j, "<")) continue;
      j = SkipTemplateArgs(t, j);
    }
    // Identifier chain `A :: B :: NAME` ending right before '('.
    std::string name;
    while (j < t.size() && t[j].kind == TokKind::kIdent) {
      name = t[j].text;
      if (IsPunct(t, j + 1, "::")) {
        j += 2;
        continue;
      }
      ++j;
      break;
    }
    if (name.empty() || !IsPunct(t, j, "(")) continue;
    // `Status :: OK (` and friends are calls, not declarations.
    if (IsPunct(t, i + 1, "::") && is_status) continue;
    if (is_status) out->status_fns.insert(name);
    else out->result_fns.insert(name);
  }
}

/// Collects identifiers declared with an unordered container type:
/// `std::unordered_map<...> NAME` / `std::unordered_set<...> NAME`.
void CollectUnordered(const std::vector<Token>& t, FileIndex* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
        t[i].text != "unordered_multimap" && t[i].text != "unordered_multiset") {
      continue;
    }
    size_t j = i + 1;
    if (!IsPunct(t, j, "<")) continue;
    j = SkipTemplateArgs(t, j);
    // Skip ref/pointer declarators.
    while (j < t.size() && t[j].kind == TokKind::kPunct &&
           (t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        t[j].text != "const") {
      out->unordered_local.insert(t[j].text);
    }
  }
}

/// Collects identifiers declared with a std::atomic type:
/// `std::atomic<...> NAME` and the `std::atomic_*` aliases. Atomic
/// members are exempt from shared-mutation and guard-consistency.
void CollectAtomics(const std::vector<Token>& t, FileIndex* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    size_t j = i + 1;
    if (t[i].text == "atomic") {
      if (!IsPunct(t, j, "<")) continue;
      j = SkipTemplateArgs(t, j);
    } else if (t[i].text.rfind("atomic_", 0) != 0 ||
               t[i].text == "atomic_thread_fence" ||
               t[i].text == "atomic_signal_fence") {
      continue;
    }
    while (j < t.size() && t[j].kind == TokKind::kPunct &&
           (t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        t[j].text != "const") {
      out->atomic_names.insert(t[j].text);
    }
  }
}

/// Renders a mutex expression (the tokens of a MutexLock / REQUIRES
/// argument) to a stable name. Member-style single identifiers (trailing
/// '_') are qualified with the enclosing class so that `mu_` in
/// ThreadPool::Shutdown and `mu_` in SnapshotManager::Get are distinct
/// lock-order graph nodes.
std::string NormalizeMutex(const std::vector<Token>& t, size_t begin,
                           size_t end, const std::string& class_name) {
  std::vector<const Token*> toks;
  for (size_t j = begin; j < end; ++j) {
    if (IsPunct(t, j, "&") && toks.empty()) continue;  // MutexLock l(&mu_)
    if (IsIdent(t, j, "this")) {
      // `this->mu_` == `mu_`: drop `this` and the following arrow.
      if (IsPunct(t, j + 1, "->")) ++j;
      continue;
    }
    toks.push_back(&t[j]);
  }
  if (toks.empty()) return "";
  if (toks.size() == 1 && toks[0]->kind == TokKind::kIdent) {
    const std::string& id = toks[0]->text;
    if (!class_name.empty() && !id.empty() && id.back() == '_') {
      return class_name + "::" + id;
    }
    return id;
  }
  std::string joined;
  for (const Token* tok : toks) {
    if (!joined.empty() && tok->kind == TokKind::kIdent &&
        std::isalnum(static_cast<unsigned char>(joined.back()))) {
      joined += ' ';
    }
    joined += tok->text;
  }
  return joined;
}

bool NolintedFor(const LexedFile& f, int line, const char* rule) {
  auto it = f.nolints.find(line);
  return it != f.nolints.end() && it->second.rules.count(rule) > 0 &&
         it->second.has_reason;
}

/// Callee-name wrappers that pass a callable through unchanged; the
/// meaningful sink is the next frame out.
bool IsForwardingWrapper(const std::string& s) {
  return s == "move" || s == "forward" || s == "ref" || s == "cref" ||
         s == "function" || s == "bind";
}

/// Callee names that store their callable argument beyond the call:
/// thread-pool handoff, container push, thread construction.
bool IsEscapeSink(const std::string& s) {
  return s == "Submit" || s == "Schedule" || s == "push_back" ||
         s == "emplace_back" || s == "emplace" || s == "insert" ||
         s == "push" || s == "thread" || s == "async";
}

/// Fills FnSummary::sink_escapes / forward_calls: does a function-typed
/// parameter of `fn` outlive the call frame? Directly (Submit, member
/// assignment, container push, return) or by forwarding to a callee whose
/// own summary escapes (resolved later by GlobalIndex::Finalize).
void AnalyzeSinks(const LexedFile& f, const FunctionInfo& fn,
                  const std::vector<LambdaInfo>& lambdas, FnSummary* s) {
  const std::vector<Token>& t = f.tokens;
  // Function-typed parameters: the last identifier of a parameter entry
  // whose type tokens read as a callable (std::function, Fn/Callback
  // template names).
  std::set<std::string> fn_params;
  {
    size_t open = fn.name_tok + 1;
    if (!IsPunct(t, open, "(")) return;
    size_t close = MatchForward(t, open);
    if (close >= t.size()) return;
    int depth = 0;
    size_t entry = open + 1;
    for (size_t j = open + 1; j <= close; ++j) {
      if (t[j].kind == TokKind::kPunct) {
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{" ||
            t[j].text == "<") {
          ++depth;
        } else if (t[j].text == "]" || t[j].text == "}" || t[j].text == ">" ||
                   (t[j].text == ")" && j != close)) {
          --depth;
        }
      }
      if ((IsPunct(t, j, ",") && depth == 0) || j == close) {
        bool callable = false;
        std::string name;
        for (size_t k = entry; k < j; ++k) {
          if (t[k].kind != TokKind::kIdent) {
            if (IsPunct(t, k, "=")) break;
            continue;
          }
          const std::string& id = t[k].text;
          if (id == "function" || id == "Fn" || id == "Callback" ||
              (id.size() > 2 && id.compare(id.size() - 2, 2, "Fn") == 0)) {
            callable = true;
          }
          if (id != "const") name = t[k].text;
        }
        if (callable && !name.empty()) fn_params.insert(name);
        entry = j + 1;
      }
    }
  }
  if (fn_params.empty()) return;

  // Local lambda variables (`auto work = [...]...`), so `Submit(work)`
  // counts as escaping what `work` ref-captures.
  std::map<std::string, const LambdaInfo*> named;
  for (const LambdaInfo& lam : lambdas) {
    if (lam.intro >= 2 && IsPunct(t, lam.intro - 1, "=") &&
        t[lam.intro - 2].kind == TokKind::kIdent) {
      named[t[lam.intro - 2].text] = &lam;
    }
  }
  auto lam_refs = [](const LambdaInfo& lam, const std::string& p) {
    if (lam.by_ref.count(p) > 0) return true;
    if (!lam.default_ref || lam.by_val.count(p) > 0) return false;
    for (const std::string& lp : lam.params) {
      if (lp == p) return false;
    }
    return true;
  };
  // A lambda handed straight to an escaping region that ref-captures the
  // parameter escapes it.
  for (const LambdaInfo& lam : lambdas) {
    if (lam.region != RegionKind::kSubmit && lam.region != RegionKind::kThread) {
      continue;
    }
    for (const std::string& p : fn_params) {
      if (lam_refs(lam, p)) s->sink_escapes = true;
    }
  }

  struct Frame {
    std::string callee;
    size_t close;
  };
  std::vector<Frame> frames;
  size_t stmt_start = fn.body_begin + 1;
  for (size_t i = fn.body_begin + 1; i < fn.body_end && i < t.size(); ++i) {
    while (!frames.empty() && i >= frames.back().close) frames.pop_back();
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == ";" || tok.text == "{" || tok.text == "}") {
        stmt_start = i + 1;
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (IsPunct(t, i + 1, "(") && !IsCallKeyword(tok.text)) {
      size_t close = MatchForward(t, i + 1);
      bool is_param = fn_params.count(tok.text) > 0;
      if (close < t.size() && !is_param) {
        frames.push_back({tok.text, close});
      }
      if (is_param) continue;  // invocation of the parameter — harmless
    }
    bool mentions_param = fn_params.count(tok.text) > 0;
    const LambdaInfo* via = nullptr;
    if (!mentions_param) {
      auto it = named.find(tok.text);
      if (it != named.end()) {
        for (const std::string& p : fn_params) {
          if (lam_refs(*it->second, p)) via = it->second;
        }
      }
      if (via == nullptr) continue;
    }
    if (IsPunct(t, i + 1, "(")) continue;  // direct invocation
    // Innermost meaningful enclosing call decides the fate.
    const Frame* sink = nullptr;
    for (size_t k = frames.size(); k-- > 0;) {
      if (IsForwardingWrapper(frames[k].callee)) continue;
      sink = &frames[k];
      break;
    }
    if (sink != nullptr) {
      if (sink->callee == "ParallelFor" || sink->callee == "ParallelForChunks") {
        continue;  // blocking primitives: the callable cannot outlive them
      }
      if (IsEscapeSink(sink->callee)) {
        s->sink_escapes = true;
      } else {
        s->forward_calls.insert(sink->callee);
      }
      continue;
    }
    // No enclosing call: statement-level sinks.
    size_t ss = stmt_start;
    if (IsIdent(t, ss, "return")) {
      s->sink_escapes = true;
      continue;
    }
    if (IsIdent(t, ss, "this") && IsPunct(t, ss + 1, "->")) ss += 2;
    if (ss < i && t[ss].kind == TokKind::kIdent && !t[ss].text.empty() &&
        t[ss].text.back() == '_' && IsPunct(t, ss + 1, "=")) {
      s->sink_escapes = true;  // stored into a member
    }
  }
}

/// Builds the lock summary of one function: REQUIRES entry-held mutexes,
/// MutexLock acquisitions with the held set at each site, and call sites
/// with the held set. Lambda bodies get a cleared held set — they
/// typically run deferred on another thread (thread-pool workers), where
/// the lexically enclosing guard is not held.
FnSummary Summarize(const LexedFile& f, const FunctionInfo& fn) {
  const std::vector<Token>& t = f.tokens;
  const std::vector<LambdaInfo> all_lambdas = FindLambdas(f, fn);
  auto in_parallel = [&all_lambdas](size_t tok) {
    for (const LambdaInfo& lam : all_lambdas) {
      if (lam.parallel && tok > lam.body_begin && tok < lam.body_end) {
        return true;
      }
    }
    return false;
  };
  FnSummary s;
  s.qualified = fn.qualified;
  s.simple = fn.name;
  s.file = f.norm_path;
  s.line = fn.line;

  // REQUIRES(...) between the name and the body opens the held set.
  for (size_t i = fn.name_tok; i < fn.body_begin; ++i) {
    if (!IsIdent(t, i, "REQUIRES") && !IsIdent(t, i, "REQUIRES_SHARED")) {
      continue;
    }
    if (!IsPunct(t, i + 1, "(")) continue;
    size_t close = MatchForward(t, i + 1);
    size_t arg_begin = i + 2;
    int paren = 0;
    bool negated = false;
    for (size_t j = i + 2; j <= close && j < t.size(); ++j) {
      if (IsPunct(t, j, "(")) ++paren;
      else if (IsPunct(t, j, ")") && j != close) --paren;
      if (IsPunct(t, j, "!")) negated = true;  // negative capability
      if ((IsPunct(t, j, ",") && paren == 0) || j == close) {
        if (!negated) {
          std::string m = NormalizeMutex(t, arg_begin, j, fn.class_name);
          if (!m.empty()) s.entry_held.push_back(m);
        }
        arg_begin = j + 1;
        negated = false;
      }
    }
    i = close;
  }

  struct Held {
    std::string mutex;
    int depth;
  };
  std::vector<Held> held;
  for (const std::string& m : s.entry_held) held.push_back({m, 0});
  struct LambdaFrame {
    size_t end;                // token index of the body's '}'
    std::vector<Held> saved;   // held set to restore
  };
  std::vector<LambdaFrame> lambdas;
  int depth = 0;

  auto held_names = [&held]() {
    std::vector<std::string> names;
    names.reserve(held.size());
    for (const Held& h : held) names.push_back(h.mutex);
    return names;
  };

  size_t i = fn.body_begin;
  while (i < fn.body_end && i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
        ++i;
        continue;
      }
      if (tok.text == "}") {
        while (!held.empty() && held.back().depth == depth) held.pop_back();
        if (!lambdas.empty() && lambdas.back().end == i) {
          held = std::move(lambdas.back().saved);
          lambdas.pop_back();
        }
        --depth;
        ++i;
        continue;
      }
      if (tok.text == "[") {
        // Lambda introducer? Subscripts follow a value (ident/]/)/literal).
        bool subscript = false;
        if (i > 0) {
          const Token& prev = t[i - 1];
          subscript = prev.kind == TokKind::kIdent ||
                      prev.kind == TokKind::kNumber ||
                      prev.kind == TokKind::kString ||
                      (prev.kind == TokKind::kPunct &&
                       (prev.text == ")" || prev.text == "]"));
        }
        if (!subscript) {
          size_t close = MatchForward(t, i);
          size_t j = close + 1;
          if (IsPunct(t, j, "(")) j = MatchForward(t, j) + 1;
          // Specifiers / trailing return before the body.
          size_t limit = j + 24;
          while (j < t.size() && j < limit && !IsPunct(t, j, "{") &&
                 !IsPunct(t, j, ";") && !IsPunct(t, j, ")") &&
                 !IsPunct(t, j, ",")) {
            ++j;
          }
          if (j < t.size() && IsPunct(t, j, "{")) {
            lambdas.push_back({MatchForward(t, j), held});
            held.clear();
            depth++;  // accounts for the body '{' we now step past
            i = j + 1;
            continue;
          }
        }
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      ++i;
      continue;
    }
    if (tok.text == "MutexLock" && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kIdent && IsPunct(t, i + 2, "(")) {
      size_t close = MatchForward(t, i + 2);
      std::string m = NormalizeMutex(t, i + 3, close, fn.class_name);
      if (!m.empty()) {
        LockAcq acq;
        acq.mutex = m;
        acq.line = tok.line;
        acq.line_hash = LineFingerprint(f, tok.line);
        acq.suppressed = NolintedFor(f, tok.line, "lock-order");
        acq.held = held_names();
        s.acqs.push_back(acq);
        held.push_back({m, depth});
      }
      i = close + 1;
      continue;
    }
    if (IsPunct(t, i + 1, "(") && !IsCallKeyword(tok.text)) {
      if (s.calls.size() < 512) {
        LockCall call;
        call.callee = tok.text;
        call.line = tok.line;
        call.line_hash = LineFingerprint(f, tok.line);
        call.suppressed = NolintedFor(f, tok.line, "lock-order");
        call.in_parallel = in_parallel(i);
        call.held = held_names();
        s.calls.push_back(call);
      }
      ++i;
      continue;
    }
    if (!fn.class_name.empty() && !tok.text.empty() && tok.text.back() == '_') {
      // Member-field access (not a call — that case continued above).
      // `other.field_` / `other->field_` belongs to some other object;
      // `this->field_` and bare `field_` are ours.
      bool foreign = false;
      if (i > 0 && t[i - 1].kind == TokKind::kPunct) {
        const std::string& p = t[i - 1].text;
        if (p == "::") foreign = true;
        if ((p == "." || p == "->") &&
            !(p == "->" && i >= 2 && IsIdent(t, i - 2, "this"))) {
          foreign = true;
        }
      }
      if (!foreign && s.fields.size() < 1024) {
        FieldAccess fa;
        fa.field = fn.class_name + "::" + tok.text;
        fa.line = tok.line;
        fa.line_hash = LineFingerprint(f, tok.line);
        fa.guarded = !held.empty();
        fa.in_parallel = in_parallel(i);
        fa.suppressed = NolintedFor(f, tok.line, "guard-consistency");
        s.fields.push_back(fa);
      }
      ++i;
      continue;
    }
    ++i;
  }
  AnalyzeSinks(f, fn, all_lambdas, &s);
  return s;
}

std::string JoinCsv(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += ',';
    out += s;
  }
  return out;
}

/// '|' and newlines are the serialization delimiters; mutex/callee names
/// come from source tokens, so they cannot contain either — but guard
/// anyway so a hostile input cannot corrupt the cache format.
std::string Sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '|' || c == '\n' || c == '\r') c = '?';
  }
  return out;
}

}  // namespace

bool IsParallelPackRule(const std::string& rule) {
  return rule == "shared-mutation" || rule == "dangling-capture" ||
         rule == "atomic-confinement" || rule == "guard-consistency";
}

FileIndex BuildFileIndex(const LexedFile& f, const FileModel& model) {
  FileIndex fi;
  CollectStatusFns(f.tokens, &fi);
  CollectUnordered(f.tokens, &fi);
  CollectAtomics(f.tokens, &fi);
  for (const auto& [line, marker] : f.nolints) {
    if (!marker.has_reason) continue;
    for (const std::string& rule : marker.rules) {
      if (IsParallelPackRule(rule)) {
        fi.audited_nolints[line].rules.insert(rule);
        fi.audited_nolints[line].line_hash = LineFingerprint(f, line);
      }
    }
  }
  for (const FunctionInfo& fn : model.functions) {
    fi.summaries.push_back(Summarize(f, fn));
  }
  return fi;
}

void GlobalIndex::Merge(const FileIndex& fi) {
  status_fns.insert(fi.status_fns.begin(), fi.status_fns.end());
  result_fns.insert(fi.result_fns.begin(), fi.result_fns.end());
  for (const std::string& id : fi.unordered_local) {
    if (!id.empty() && id.back() == '_') unordered_members.insert(id);
  }
  for (const std::string& id : fi.atomic_names) {
    if (!id.empty() && id.back() == '_') atomic_members.insert(id);
  }
  summaries.insert(summaries.end(), fi.summaries.begin(), fi.summaries.end());
}

void GlobalIndex::Finalize() {
  by_simple.clear();
  for (size_t i = 0; i < summaries.size(); ++i) {
    by_simple[summaries[i].simple].push_back(i);
  }
  // May-outlive fixpoint: a function escapes its callable argument if it
  // sinks it directly, or forwards it to one that does. Monotone over a
  // finite set, so the pass count bounds pathological cycles, not correct
  // inputs.
  fn_arg_escapers.clear();
  for (const FnSummary& fn : summaries) {
    if (fn.sink_escapes) fn_arg_escapers.insert(fn.simple);
  }
  for (int pass = 0; pass < 20; ++pass) {
    bool changed = false;
    for (const FnSummary& fn : summaries) {
      if (fn_arg_escapers.count(fn.simple) > 0) continue;
      for (const std::string& callee : fn.forward_calls) {
        if (fn_arg_escapers.count(callee) > 0) {
          fn_arg_escapers.insert(fn.simple);
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  // The blocking iteration primitives drain every submitted chunk before
  // returning; their callable argument cannot outlive the call even
  // though the token walk sees a Submit.
  fn_arg_escapers.erase("ParallelFor");
  fn_arg_escapers.erase("ParallelForChunks");
}

std::string SerializeFileIndex(const FileIndex& fi) {
  std::ostringstream os;
  for (const std::string& s : fi.status_fns) os << "S " << Sanitize(s) << '\n';
  for (const std::string& s : fi.result_fns) os << "R " << Sanitize(s) << '\n';
  for (const std::string& s : fi.unordered_local) {
    os << "U " << Sanitize(s) << '\n';
  }
  for (const std::string& s : fi.atomic_names) {
    os << "T " << Sanitize(s) << '\n';
  }
  for (const auto& [line, audit] : fi.audited_nolints) {
    std::vector<std::string> r(audit.rules.begin(), audit.rules.end());
    os << "N " << line << '|' << std::hex << audit.line_hash << std::dec
       << '|' << JoinCsv(r) << '\n';
  }
  for (const FnSummary& fn : fi.summaries) {
    std::vector<std::string> fwd;
    for (const std::string& c : fn.forward_calls) fwd.push_back(Sanitize(c));
    os << "D " << Sanitize(fn.qualified) << '|' << Sanitize(fn.simple) << '|'
       << Sanitize(fn.file) << '|' << fn.line << '|'
       << (fn.sink_escapes ? 1 : 0) << '|' << JoinCsv(fwd) << '|';
    std::vector<std::string> req;
    for (const std::string& m : fn.entry_held) req.push_back(Sanitize(m));
    os << JoinCsv(req) << '\n';
    for (const LockAcq& a : fn.acqs) {
      std::vector<std::string> h;
      for (const std::string& m : a.held) h.push_back(Sanitize(m));
      os << "A " << Sanitize(a.mutex) << '|' << a.line << '|' << std::hex
         << a.line_hash << std::dec << '|' << (a.suppressed ? 1 : 0) << '|'
         << JoinCsv(h) << '\n';
    }
    for (const LockCall& c : fn.calls) {
      std::vector<std::string> h;
      for (const std::string& m : c.held) h.push_back(Sanitize(m));
      os << "C " << Sanitize(c.callee) << '|' << c.line << '|' << std::hex
         << c.line_hash << std::dec << '|' << (c.suppressed ? 1 : 0) << '|'
         << (c.in_parallel ? 1 : 0) << '|' << JoinCsv(h) << '\n';
    }
    for (const FieldAccess& fa : fn.fields) {
      os << "P " << Sanitize(fa.field) << '|' << fa.line << '|' << std::hex
         << fa.line_hash << std::dec << '|' << (fa.guarded ? 1 : 0) << '|'
         << (fa.in_parallel ? 1 : 0) << '|' << (fa.suppressed ? 1 : 0)
         << '\n';
    }
  }
  return os.str();
}

}  // namespace analyze
